//! Secondary-index bookkeeping shared by the shard maps.
//!
//! Every posting carries the global insertion sequence it was created with,
//! so per-shard posting lists stay sorted by sequence and a cross-shard
//! merge reproduces the exact insertion order the pre-sharding single map
//! maintained (the merge rules' tie-breaks depend on it).
//!
//! Each index keeps a [`KeyFilter`] beside its AVL map: an exact count of
//! live keys per cheap 64-bit fingerprint. Cross-shard resolution probes
//! every shard for every key, and at eight shards seven of those probes
//! are misses; a filter check is one hash-map hit on an already-mixed
//! key, an order of magnitude cheaper than a tree descent, so fan-out
//! paths ask the filter first and only descend into shards that may hold
//! the key. Fingerprint collisions make `may_contain` spuriously true —
//! costing one wasted probe, never a wrong result.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::net::Ipv4Addr;

use fremont_net::MacAddr;

use crate::avl::AvlMap;
use crate::records::InterfaceId;

/// One index posting: global insertion sequence paired with the record id.
pub(super) type Entry = (u64, InterfaceId);

/// FNV-1a over the key bytes, then a murmur-style finalizer so the low
/// bits (which the hash map buckets by) avalanche even for short,
/// similar keys like adjacent IP addresses.
fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

/// A key type an index can fingerprint. The fingerprint of a borrowed
/// form must equal the fingerprint of the owned key (`&str` vs `String`),
/// so lookups never have to allocate.
pub(super) trait FilterKey: Ord {
    fn filter_hash(&self) -> u64;
}

impl FilterKey for Ipv4Addr {
    fn filter_hash(&self) -> u64 {
        fingerprint(&self.octets())
    }
}

impl FilterKey for MacAddr {
    fn filter_hash(&self) -> u64 {
        fingerprint(&self.octets())
    }
}

impl FilterKey for String {
    fn filter_hash(&self) -> u64 {
        fingerprint(self.as_bytes())
    }
}

impl FilterKey for str {
    fn filter_hash(&self) -> u64 {
        fingerprint(self.as_bytes())
    }
}

/// Pass-through hasher for keys that are already fingerprints; hashing
/// a 64-bit fingerprint with SipHash again would cost more than the
/// tree probe the filter exists to avoid.
#[derive(Default)]
pub(super) struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // The filter maps only carry u64 keys, so this path is never
        // taken by them; fold bytes FNV-style anyway to stay total.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

/// `BuildHasher` for [`IdentityHasher`]; also used by the grouped batch
/// planner's pending-key set, which stores the same fingerprints.
#[derive(Clone, Default)]
pub(super) struct IdentityState;

impl BuildHasher for IdentityState {
    type Hasher = IdentityHasher;

    fn build_hasher(&self) -> IdentityHasher {
        IdentityHasher::default()
    }
}

/// Key-type tags mixed into journal-global fingerprints so an IP and a
/// MAC that happen to share a fingerprint do not alias across the three
/// index families.
pub(super) const TAG_IP: u64 = 0x9E37_79B9_7F4A_7C15;
pub(super) const TAG_MAC: u64 = 0xC2B2_AE3D_27D4_EB4F;
pub(super) const TAG_NAME: u64 = 0x1656_67B1_9E37_79F9;

/// One key-liveness transition in one shard's index: the tagged
/// fingerprint of a key whose posting list just came into existence
/// (`added`) or just emptied. Emitted by [`add`]/[`remove`] so callers
/// can maintain the journal-global [`ShardMaskFilter`] — directly when
/// they hold the meta lock, or buffered and applied after a parallel
/// commit joins.
pub(super) struct FilterDelta {
    pub h: u64,
    pub shard: usize,
    pub added: bool,
}

/// Journal-global key→shard map, by tagged fingerprint: `may_shards`
/// returns a bitmask of the shards that may hold a key, so resolution
/// under the meta lock costs one probe instead of one per shard.
///
/// `masks` alone would be unsound under fingerprint collisions (clearing
/// a departing key's bit could hide a colliding key that is still
/// live), so `counts` refcounts live keys per (fingerprint, shard) slot
/// and a bit is only cleared when its slot empties. Collisions in
/// either map can therefore only leave bits set too long — a spurious
/// probe, never a missed posting. Untracked (more than 64 shards, which
/// a bitmask cannot index) the filter degrades to "probe everything".
pub(super) struct ShardMaskFilter {
    masks: HashMap<u64, u64, IdentityState>,
    counts: HashMap<u64, u32, IdentityState>,
    tracked: bool,
}

impl ShardMaskFilter {
    pub(super) fn new(shards: usize) -> Self {
        ShardMaskFilter {
            masks: HashMap::default(),
            counts: HashMap::default(),
            tracked: shards <= 64,
        }
    }

    fn slot(h: u64, shard: usize) -> u64 {
        h ^ (shard as u64).wrapping_mul(0xA24B_AED4_963E_E407)
    }

    /// Bitmask of shards that may hold a key with this tagged
    /// fingerprint. Zero is definitive absence.
    pub(super) fn may_shards(&self, h: u64) -> u64 {
        if !self.tracked {
            return u64::MAX;
        }
        self.masks.get(&h).copied().unwrap_or(0)
    }

    pub(super) fn apply(&mut self, d: &FilterDelta) {
        if !self.tracked {
            return;
        }
        let slot = Self::slot(d.h, d.shard);
        if d.added {
            *self.counts.entry(slot).or_insert(0) += 1;
            *self.masks.entry(d.h).or_insert(0) |= 1 << d.shard;
        } else {
            match self.counts.get_mut(&slot) {
                Some(1) => {
                    self.counts.remove(&slot);
                    if let Some(m) = self.masks.get_mut(&d.h) {
                        *m &= !(1 << d.shard);
                        if *m == 0 {
                            self.masks.remove(&d.h);
                        }
                    }
                }
                Some(c) => *c -= 1,
                None => debug_assert!(false, "shard-mask filter underflow"),
            }
        }
    }
}

/// Exact membership counts for one index's live keys, by fingerprint.
/// A count is incremented when a key's posting list comes into
/// existence and decremented when it empties, so `may_contain` is
/// `false` only for keys the index definitely does not hold.
#[derive(Default)]
pub(super) struct KeyFilter {
    counts: HashMap<u64, u32, IdentityState>,
}

impl KeyFilter {
    pub(super) fn new() -> Self {
        Self::default()
    }

    /// Whether the index may hold a key with this fingerprint. `false`
    /// is definitive; `true` may (rarely, on collision) be spurious.
    pub(super) fn may_contain(&self, h: u64) -> bool {
        self.counts.contains_key(&h)
    }

    /// Number of live keys across all fingerprints, for invariant checks.
    pub(super) fn live_keys(&self) -> u64 {
        self.counts.values().map(|&c| u64::from(c)).sum()
    }

    fn key_added(&mut self, h: u64) {
        *self.counts.entry(h).or_insert(0) += 1;
    }

    fn key_removed(&mut self, h: u64) {
        match self.counts.get_mut(&h) {
            Some(1) => {
                self.counts.remove(&h);
            }
            Some(c) => *c -= 1,
            None => debug_assert!(false, "filter count underflow"),
        }
    }
}

/// Adds `id` under `key`, stamping a fresh sequence number.
///
/// Re-adding an id that is already present keeps its original sequence, just
/// as the old single-map index kept its original list position.
#[allow(clippy::too_many_arguments)]
pub(super) fn add<K: FilterKey>(
    idx: &mut AvlMap<K, Vec<Entry>>,
    flt: &mut KeyFilter,
    key: K,
    id: InterfaceId,
    seq: &mut u64,
    tag: u64,
    shard: usize,
    deltas: &mut Vec<FilterDelta>,
) {
    match idx.get_mut(&key) {
        Some(v) => {
            if !v.iter().any(|e| e.1 == id) {
                *seq += 1;
                v.push((*seq, id));
            }
        }
        None => {
            *seq += 1;
            let h = key.filter_hash();
            flt.key_added(h);
            deltas.push(FilterDelta {
                h: h ^ tag,
                shard,
                added: true,
            });
            idx.insert(key, vec![(*seq, id)]);
        }
    }
}

/// Removes `id` from the posting list under `key`, dropping the key when the
/// list empties.
pub(super) fn remove<K: FilterKey>(
    idx: &mut AvlMap<K, Vec<Entry>>,
    flt: &mut KeyFilter,
    key: &K,
    id: InterfaceId,
    tag: u64,
    shard: usize,
    deltas: &mut Vec<FilterDelta>,
) {
    let emptied = match idx.get_mut(key) {
        Some(v) => {
            v.retain(|e| e.1 != id);
            v.is_empty()
        }
        None => false,
    };
    if emptied {
        let h = key.filter_hash();
        flt.key_removed(h);
        deltas.push(FilterDelta {
            h: h ^ tag,
            shard,
            added: false,
        });
        idx.remove(key);
    }
}
