//! Secondary-index bookkeeping shared by the shard maps.
//!
//! Every posting carries the global insertion sequence it was created with,
//! so per-shard posting lists stay sorted by sequence and a cross-shard
//! merge reproduces the exact insertion order the pre-sharding single map
//! maintained (the merge rules' tie-breaks depend on it).

use crate::avl::AvlMap;
use crate::records::InterfaceId;

/// One index posting: global insertion sequence paired with the record id.
pub(super) type Entry = (u64, InterfaceId);

/// Adds `id` under `key`, stamping a fresh sequence number.
///
/// Re-adding an id that is already present keeps its original sequence, just
/// as the old single-map index kept its original list position.
pub(super) fn add<K: Ord>(idx: &mut AvlMap<K, Vec<Entry>>, key: K, id: InterfaceId, seq: &mut u64) {
    match idx.get_mut(&key) {
        Some(v) => {
            if !v.iter().any(|e| e.1 == id) {
                *seq += 1;
                v.push((*seq, id));
            }
        }
        None => {
            *seq += 1;
            idx.insert(key, vec![(*seq, id)]);
        }
    }
}

/// Removes `id` from the posting list under `key`, dropping the key when the
/// list empties.
pub(super) fn remove<K: Ord>(idx: &mut AvlMap<K, Vec<Entry>>, key: &K, id: InterfaceId) {
    let emptied = match idx.get_mut(key) {
        Some(v) => {
            v.retain(|e| e.1 != id);
            v.is_empty()
        }
        None => false,
    };
    if emptied {
        idx.remove(key);
    }
}
