//! Summary and statistics types plus per-shard instrumentation counters.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Summary of applying a batch of observations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreSummary {
    /// Records newly created.
    pub created: usize,
    /// Records whose fields changed.
    pub updated: usize,
    /// Records merely re-verified.
    pub verified: usize,
}

impl StoreSummary {
    /// Adds another summary's counters into this one.
    pub fn absorb(&mut self, other: StoreSummary) {
        self.created += other.created;
        self.updated += other.updated;
        self.verified += other.verified;
    }
}

/// Journal-wide statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalStats {
    /// Number of interface records.
    pub interfaces: usize,
    /// Number of gateway records.
    pub gateways: usize,
    /// Number of subnet records.
    pub subnets: usize,
    /// Total observations applied.
    pub observations_applied: u64,
}

/// Lock-acquisition counters for one shard.
///
/// Plain relaxed atomics: increments are deterministic for single-threaded
/// callers (the driver), merely monotone for concurrent ones (the server).
#[derive(Default)]
pub(super) struct ShardCounters {
    /// Read-lock acquisitions on this shard.
    pub read_locks: AtomicU64,
    /// Write-lock acquisitions on this shard.
    pub write_locks: AtomicU64,
}

/// Store-wide activity counters.
#[derive(Default)]
pub(super) struct StoreCounters {
    /// Queries that had to visit every shard and merge the results.
    pub fanout_queries: AtomicU64,
    /// Write batches applied via `apply_batch`.
    pub batches: AtomicU64,
    /// Observations carried by those batches.
    pub batch_observations: AtomicU64,
    /// Largest single batch seen.
    pub largest_batch: AtomicU64,
    /// Per-shard commit groups flushed by the grouped batch path: each
    /// group is one shard write-lock acquisition covering every planned
    /// record operation the batch holds for that shard.
    pub batch_groups: AtomicU64,
}

impl StoreCounters {
    /// Records one applied batch of `n` observations.
    pub fn note_batch(&self, n: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_observations.fetch_add(n, Ordering::Relaxed);
        self.largest_batch.fetch_max(n, Ordering::Relaxed);
    }

    /// Records `g` shard groups committed by one generation flush.
    pub fn note_groups(&self, g: u64) {
        self.batch_groups.fetch_add(g, Ordering::Relaxed);
    }
}

/// Point-in-time view of one shard's activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMetrics {
    /// Shard index.
    pub shard: usize,
    /// Interface records currently owned by the shard.
    pub records: usize,
    /// Read-lock acquisitions since creation.
    pub read_locks: u64,
    /// Write-lock acquisitions since creation.
    pub write_locks: u64,
}

/// Point-in-time view of the sharded store's activity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardingMetrics {
    /// Per-shard counters, indexed by shard.
    pub shards: Vec<ShardMetrics>,
    /// Queries that fanned out across every shard.
    pub fanout_queries: u64,
    /// Write batches applied.
    pub batches: u64,
    /// Observations carried by those batches.
    pub batch_observations: u64,
    /// Largest single batch seen.
    pub largest_batch: u64,
}
