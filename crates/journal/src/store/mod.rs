//! The Journal: merge, index, and query discovered network facts.
//!
//! This is the in-memory representation the paper's Journal Server keeps:
//! records in modification-time order, interface records indexed by AVL
//! trees on Ethernet address, IP address, and DNS name, and subnet records
//! indexed by subnet address. "Because it is the shared place where
//! observations are stored ... the Journal is more than just the sum of
//! its parts": the merge rules below are what turn per-module observations
//! into cross-correlated knowledge.
//!
//! # Sharding
//!
//! Interface records are partitioned into N shards by id hash, each shard
//! behind its own reader-writer lock with its own AVL indexes. All
//! mutations serialize on the `meta` write lock (the gateway and subnet
//! slabs plus the global ordering sequences live there). The per-item
//! write path then visits one shard lock at a time; the grouped batch
//! path (`grouped.rs`) instead takes **every** shard's write lock in
//! ascending index order and holds the guards across planning and
//! commit, so a batch visits each shard lock at most once. Interface
//! queries take only shard locks and so run concurrently with a writer,
//! merging sorted per-shard results back into the global order;
//! lone-lock query sweeps visit shards in *descending* order, opposite
//! the writer's ascending acquisition, so a sweep crosses a multi-lock
//! writer at most once instead of convoying. Lock order is strictly
//! `meta` before any shard, and multiple shard locks are only ever
//! acquired ascending.
//!
//! Consistency: readers that go through `meta` (`stats`, `to_snapshot`,
//! `check_invariants`, gateway/subnet queries) are fully serialized
//! against writers. Shard-only interface queries may observe a write
//! batch's intermediate states (one observation fully applied, the next
//! not yet), never a torn single observation; under grouped commit a
//! barrier-free batch is atomic with respect to interface queries,
//! because every shard's write lock is held for its duration.

mod grouped;
mod indexes;
mod merge;
mod shard;
mod stats;

pub use stats::{JournalStats, ShardMetrics, ShardingMetrics, StoreSummary};

use std::net::Ipv4Addr;
use std::ops::Bound;
use std::sync::atomic::Ordering;

use parking_lot::RwLock;

use fremont_net::{MacAddr, Subnet};

use crate::avl::AvlMap;
use crate::observation::{Fact, Observation, Source};
use crate::query::{InterfaceQuery, SubnetQuery};
use crate::records::{GatewayId, GatewayRecord, InterfaceId, InterfaceRecord, SubnetRecord};
use crate::time::{JTime, Timestamped};

use indexes::FilterKey;
use shard::Shard;
use stats::{ShardCounters, StoreCounters};

/// Default number of interface shards.
pub const DEFAULT_SHARDS: usize = 8;

/// Mutation-ordering state: everything a writer must update atomically with
/// respect to other writers. The `meta` write lock is the single write gate;
/// holding it, a writer touches shards one at a time.
struct Meta {
    gateways: Vec<Option<GatewayRecord>>,
    subnets: AvlMap<Subnet, SubnetRecord>,
    /// Next interface id to allocate (ids are never reused).
    next_iface: u64,
    /// Global insertion sequence stamped on every index posting.
    idx_seq: u64,
    /// Global modification sequence (tie-break within one `JTime`).
    mod_seq: u64,
    observations_applied: u64,
    /// Journal-global key→shard bitmasks for the resolution paths, which
    /// all run under this meta lock: one probe answers "which shards
    /// could hold this key" instead of asking every shard's filter.
    /// Index mutations also all run under the meta lock, so the map
    /// stays exact — parallel grouped commits buffer their liveness
    /// deltas and the coordinator folds them in after the join.
    flt: indexes::ShardMaskFilter,
}

impl Meta {
    fn new(shards: usize) -> Self {
        Meta {
            gateways: Vec::new(),
            subnets: AvlMap::new(),
            next_iface: 0,
            idx_seq: 0,
            mod_seq: 0,
            observations_applied: 0,
            flt: indexes::ShardMaskFilter::new(shards),
        }
    }
}

/// The Journal store: a sharded, concurrently-readable partition of
/// interface records plus the gateway/subnet slabs behind a meta lock.
pub struct Journal {
    meta: RwLock<Meta>,
    shards: Vec<RwLock<Shard>>,
    shard_counters: Vec<ShardCounters>,
    counters: StoreCounters,
}

impl Default for Journal {
    fn default() -> Self {
        Self::new()
    }
}

impl Journal {
    /// Creates an empty journal with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Creates an empty journal partitioned into `shards` shards.
    ///
    /// A single-shard journal is the reference model the equivalence
    /// proptest compares sharded journals against.
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1);
        Journal {
            meta: RwLock::labeled("journal.meta", Meta::new(n)),
            shards: (0..n)
                .map(|i| RwLock::labeled_ranked("journal.shard", i, Shard::new()))
                .collect(),
            shard_counters: (0..n).map(|_| ShardCounters::default()).collect(),
            counters: StoreCounters::default(),
        }
    }

    /// Number of shards the interface records are partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    // ------------------------------------------------------------------
    // Shard access (the only places shard locks are taken)
    // ------------------------------------------------------------------

    fn shard_of(&self, id: InterfaceId) -> usize {
        shard::shard_of(id, self.shards.len())
    }

    fn with_shard<R>(&self, idx: usize, f: impl FnOnce(&Shard) -> R) -> R {
        self.shard_counters[idx]
            .read_locks
            .fetch_add(1, Ordering::Relaxed);
        let guard = self.shards[idx].read();
        f(&guard)
    }

    fn with_shard_mut<R>(&self, idx: usize, f: impl FnOnce(&mut Shard) -> R) -> R {
        self.shard_counters[idx]
            .write_locks
            .fetch_add(1, Ordering::Relaxed);
        let mut guard = self.shards[idx].write();
        f(&mut guard)
    }

    /// Reads one record, panicking (via map indexing) if the id is dead —
    /// callers only pass ids taken from live index postings.
    fn peek<R>(&self, id: InterfaceId, f: impl FnOnce(&InterfaceRecord) -> R) -> R {
        self.with_shard(self.shard_of(id), |sh| f(&sh.records[&id.0]))
    }

    /// Merges the per-shard posting lists one index key resolves to,
    /// restoring global insertion order.
    ///
    /// The sweep visits shards in *descending* index order, deliberately
    /// opposite to the grouped batch path's ascending write-lock
    /// acquisition: a lone-lock sweep against a multi-lock acquirer
    /// crosses it at most once when they run in opposite directions,
    /// where same-direction sweeps convoy — parking and waking once per
    /// shard as each chases the other through the lock sequence. The
    /// k-way merge re-sorts by global sequence, so visit order never
    /// shows in the result.
    fn merged_ids(&self, get: impl Fn(&Shard) -> Vec<indexes::Entry>) -> Vec<InterfaceId> {
        let lists: Vec<Vec<indexes::Entry>> = (0..self.shards.len())
            .rev()
            .map(|s| self.with_shard(s, &get))
            .collect();
        merge::k_way(lists, |e| e.0)
            .into_iter()
            .map(|e| e.1)
            .collect()
    }

    fn ip_ids(&self, ip: Ipv4Addr) -> Vec<InterfaceId> {
        let h = ip.filter_hash();
        self.merged_ids(|sh| {
            if !sh.flt_ip.may_contain(h) {
                return Vec::new();
            }
            sh.idx_ip.get(&ip).cloned().unwrap_or_default()
        })
    }

    fn mac_ids(&self, mac: MacAddr) -> Vec<InterfaceId> {
        let h = mac.filter_hash();
        self.merged_ids(|sh| {
            if !sh.flt_mac.may_contain(h) {
                return Vec::new();
            }
            sh.idx_mac.get(&mac).cloned().unwrap_or_default()
        })
    }

    fn name_ids(&self, name: &str) -> Vec<InterfaceId> {
        let h = name.filter_hash();
        self.merged_ids(|sh| {
            if !sh.flt_name.may_contain(h) {
                return Vec::new();
            }
            sh.idx_name
                .get(&name.to_owned())
                .cloned()
                .unwrap_or_default()
        })
    }

    fn note_fanout(&self) {
        if self.shards.len() > 1 {
            self.counters.fanout_queries.fetch_add(1, Ordering::Relaxed);
        }
    }

    // ------------------------------------------------------------------
    // Store / Update
    // ------------------------------------------------------------------

    /// Applies one observation at time `now` (the Journal Server's
    /// Store/Update operation).
    pub fn apply(&mut self, obs: &Observation, now: JTime) -> StoreSummary {
        self.apply_shared(obs, now)
    }

    /// Applies one observation through a shared reference, serializing on
    /// the meta write lock.
    pub fn apply_shared(&self, obs: &Observation, now: JTime) -> StoreSummary {
        let mut meta = self.meta.write();
        self.apply_locked(&mut meta, obs, now)
    }

    /// Applies a batch of observations.
    pub fn apply_all<'a>(
        &mut self,
        obs: impl IntoIterator<Item = &'a Observation>,
        now: JTime,
    ) -> StoreSummary {
        self.apply_batch(obs.into_iter().map(move |o| (o, now)))
    }

    /// Applies a batch of `(observation, at)` pairs under **one** meta
    /// write-lock acquisition — the batched write path the driver, the
    /// server's StoreBatch RPC, and the WAL group commit all funnel into.
    ///
    /// Delegates to [`Journal::apply_batch_grouped`]: observations are
    /// planned by target shard so each shard lock is taken at most once
    /// per conflict-free run, instead of once per observation per key.
    pub fn apply_batch<'a>(
        &self,
        items: impl IntoIterator<Item = (&'a Observation, JTime)>,
    ) -> StoreSummary {
        self.apply_batch_grouped(items)
    }

    /// The pre-grouping batch path: one meta acquisition, then every
    /// observation applied in order through the per-item machinery.
    ///
    /// Kept as the executable reference model the grouped-batch
    /// equivalence property tests compare [`Journal::apply_batch_grouped`]
    /// against; not used on any production write path.
    pub fn apply_batch_sequential<'a>(
        &self,
        items: impl IntoIterator<Item = (&'a Observation, JTime)>,
    ) -> StoreSummary {
        let mut meta = self.meta.write();
        let mut sum = StoreSummary::default();
        let mut n = 0u64;
        for (obs, at) in items {
            sum.absorb(self.apply_locked(&mut meta, obs, at));
            n += 1;
        }
        self.counters.note_batch(n);
        sum
    }

    fn apply_locked(&self, meta: &mut Meta, obs: &Observation, now: JTime) -> StoreSummary {
        meta.observations_applied += 1;
        match &obs.fact {
            Fact::Interface {
                ip,
                mac,
                name,
                mask,
            } => self.apply_interface(meta, obs.source, *ip, *mac, name.as_deref(), *mask, now),
            Fact::Subnet {
                subnet,
                mask_assumed,
            } => self.apply_subnet(meta, obs.source, *subnet, *mask_assumed, now),
            Fact::SubnetStats {
                subnet,
                host_count,
                lowest,
                highest,
            } => self.apply_subnet_stats(
                meta,
                obs.source,
                *subnet,
                *host_count,
                *lowest,
                *highest,
                now,
            ),
            Fact::Gateway {
                interface_ips,
                interface_names,
                subnets,
            } => self.apply_gateway(
                meta,
                obs.source,
                interface_ips,
                interface_names,
                subnets,
                now,
            ),
            Fact::RipSource {
                ip,
                mac,
                advertised_routes: _,
                promiscuous,
            } => self.apply_rip_source(meta, obs.source, *ip, *mac, *promiscuous, now),
        }
    }

    // ------------------------------------------------------------------
    // Interface merge
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn apply_interface(
        &self,
        meta: &mut Meta,
        source: Source,
        ip: Option<Ipv4Addr>,
        mac: Option<MacAddr>,
        name: Option<&str>,
        mask: Option<fremont_net::SubnetMask>,
        now: JTime,
    ) -> StoreSummary {
        let mut sum = StoreSummary::default();
        let targets = self.resolve_targets(ip, mac, name);
        if targets.is_empty() {
            if ip.is_none() && mac.is_none() && name.is_none() {
                return sum; // Nothing identifying; drop.
            }
            let id = self.create_interface(meta, now);
            self.update_interface(meta, id, source, ip, mac, name, mask, now);
            sum.created += 1;
            return sum;
        }
        for id in targets {
            if self.update_interface(meta, id, source, ip, mac, name, mask, now) {
                sum.updated += 1;
            } else {
                sum.verified += 1;
            }
        }
        sum
    }

    /// Finds the records an interface observation should apply to.
    ///
    /// Identity resolution, in order of address quality (MAC > IP > name):
    ///
    /// 1. With a MAC: the record carrying this MAC *and* the same IP (or no
    ///    IP yet). A MAC already bound to a *different* IP gets a separate
    ///    record — that is how "multiple IP addresses for a single Ethernet
    ///    address" (proxy ARP / gateways) stays visible to analysis.
    /// 2. With only an IP: the record that currently *owns* the address —
    ///    the one most recently verified alive. A ping cannot distinguish
    ///    duplicate-address hosts or old hardware, so crediting every
    ///    record would keep dead claimants looking alive forever; only
    ///    MAC-bearing evidence (ARP) refreshes the other claimants.
    /// 3. With only a name: every record carrying that name.
    fn resolve_targets(
        &self,
        ip: Option<Ipv4Addr>,
        mac: Option<MacAddr>,
        name: Option<&str>,
    ) -> Vec<InterfaceId> {
        if let Some(mac) = mac {
            let with_mac = self.mac_ids(mac);
            if let Some(ip) = ip {
                // Exact (mac, ip) record?
                if let Some(&id) = with_mac
                    .iter()
                    .find(|&&id| self.peek(id, |r| r.ip_addr()) == Some(ip))
                {
                    return vec![id];
                }
                // A record with this MAC and no IP yet?
                if let Some(&id) = with_mac
                    .iter()
                    .find(|&&id| self.peek(id, |r| r.ip_addr()).is_none())
                {
                    return vec![id];
                }
                // A record with this IP and no MAC yet (created by a ping)?
                if let Some(&id) = self
                    .ip_ids(ip)
                    .iter()
                    .find(|&&id| self.peek(id, |r| r.mac_addr()).is_none())
                {
                    return vec![id];
                }
                // Otherwise: new record (same MAC answering another IP, or
                // same IP on different hardware).
                return Vec::new();
            }
            return with_mac;
        }
        if let Some(ip) = ip {
            let ids = self.ip_ids(ip);
            if ids.len() <= 1 {
                return ids;
            }
            // Multiple claimants: credit the presumed current owner only.
            return ids
                .into_iter()
                .max_by_key(|&id| self.peek(id, |r| (r.live_verified, r.verified, r.discovered)))
                .into_iter()
                .collect();
        }
        if let Some(name) = name {
            return self.name_ids(name);
        }
        Vec::new()
    }

    fn create_interface(&self, meta: &mut Meta, now: JTime) -> InterfaceId {
        let id = InterfaceId(meta.next_iface);
        meta.next_iface += 1;
        self.with_shard_mut(self.shard_of(id), |sh| {
            sh.records.insert(id.0, InterfaceRecord::new(id, now));
            sh.touch_modified(&mut meta.mod_seq, id, now);
        });
        id
    }

    /// Applies fields to one record; returns `true` when anything changed.
    #[allow(clippy::too_many_arguments)]
    fn update_interface(
        &self,
        meta: &mut Meta,
        id: InterfaceId,
        source: Source,
        ip: Option<Ipv4Addr>,
        mac: Option<MacAddr>,
        name: Option<&str>,
        mask: Option<fremont_net::SubnetMask>,
        now: JTime,
    ) -> bool {
        let shard = self.shard_of(id);
        let mut deltas = Vec::new();
        let changed = {
            let Meta {
                idx_seq, mod_seq, ..
            } = meta;
            self.with_shard_mut(shard, |sh| {
                Self::update_record(
                    sh,
                    id,
                    source,
                    ip,
                    mac,
                    name,
                    mask,
                    now,
                    idx_seq,
                    mod_seq,
                    shard,
                    &mut deltas,
                )
            })
        };
        for d in &deltas {
            meta.flt.apply(d);
        }
        changed
    }

    /// The shard-local half of an interface update: merges fields into the
    /// record and maintains this shard's indexes, drawing insertion and
    /// modification sequences from the supplied cursors. The sequential
    /// path passes the global `meta` sequences; the grouped batch path
    /// passes per-operation cursors into pre-reserved sequence blocks, so
    /// independent shards can commit concurrently without touching `meta`.
    #[allow(clippy::too_many_arguments)]
    pub(in crate::store) fn update_record(
        sh: &mut Shard,
        id: InterfaceId,
        source: Source,
        ip: Option<Ipv4Addr>,
        mac: Option<MacAddr>,
        name: Option<&str>,
        mask: Option<fremont_net::SubnetMask>,
        now: JTime,
        idx_seq: &mut u64,
        mod_seq: &mut u64,
        shard: usize,
        deltas: &mut Vec<indexes::FilterDelta>,
    ) -> bool {
        {
            let Some(r) = sh.records.get_mut(&id.0) else {
                return false;
            };

            // Index maintenance requires knowing old values first.
            let (old_ip, old_mac, old_name) =
                (r.ip_addr(), r.mac_addr(), r.dns_name().map(str::to_owned));

            let mut changed = false;
            if let Some(ip) = ip {
                match &mut r.ip {
                    Some(t) => changed |= t.observe(ip, now),
                    None => {
                        r.ip = Some(Timestamped::new(ip, now));
                        changed = true;
                    }
                }
            }
            if let Some(mac) = mac {
                match &mut r.mac {
                    Some(t) => changed |= t.observe(mac, now),
                    None => {
                        r.mac = Some(Timestamped::new(mac, now));
                        changed = true;
                    }
                }
            }
            if let Some(name) = name {
                match &mut r.name {
                    Some(t) => changed |= t.observe(name.to_owned(), now),
                    None => {
                        r.name = Some(Timestamped::new(name.to_owned(), now));
                        changed = true;
                    }
                }
            }
            if let Some(mask) = mask {
                match &mut r.mask {
                    Some(t) => changed |= t.observe(mask, now),
                    None => {
                        r.mask = Some(Timestamped::new(mask, now));
                        changed = true;
                    }
                }
            }
            r.sources.insert(source);
            r.verified = now;
            // `live_verified` means on-wire evidence. DNS records and the
            // Manager's cross-correlation derivations re-describe what is
            // already in the Journal — neither proves the interface still
            // answers, and counting them would keep a dead gateway
            // "alive" for as long as correlation keeps re-deriving it.
            if source != Source::Dns && source != Source::Manager {
                r.live_verified = Some(now);
            }
            if changed {
                r.changed = now;
            }

            // The record borrow ends here; now maintain this shard's indexes.
            if let Some(ip) = ip {
                if old_ip != Some(ip) {
                    if let Some(old) = old_ip {
                        indexes::remove(
                            &mut sh.idx_ip,
                            &mut sh.flt_ip,
                            &old,
                            id,
                            indexes::TAG_IP,
                            shard,
                            deltas,
                        );
                    }
                    indexes::add(
                        &mut sh.idx_ip,
                        &mut sh.flt_ip,
                        ip,
                        id,
                        idx_seq,
                        indexes::TAG_IP,
                        shard,
                        deltas,
                    );
                }
            }
            if let Some(mac) = mac {
                if old_mac != Some(mac) {
                    if let Some(old) = old_mac {
                        indexes::remove(
                            &mut sh.idx_mac,
                            &mut sh.flt_mac,
                            &old,
                            id,
                            indexes::TAG_MAC,
                            shard,
                            deltas,
                        );
                    }
                    indexes::add(
                        &mut sh.idx_mac,
                        &mut sh.flt_mac,
                        mac,
                        id,
                        idx_seq,
                        indexes::TAG_MAC,
                        shard,
                        deltas,
                    );
                }
            }
            if let Some(name) = name {
                if old_name.as_deref() != Some(name) {
                    if let Some(old) = old_name {
                        indexes::remove(
                            &mut sh.idx_name,
                            &mut sh.flt_name,
                            &old,
                            id,
                            indexes::TAG_NAME,
                            shard,
                            deltas,
                        );
                    }
                    indexes::add(
                        &mut sh.idx_name,
                        &mut sh.flt_name,
                        name.to_owned(),
                        id,
                        idx_seq,
                        indexes::TAG_NAME,
                        shard,
                        deltas,
                    );
                }
            }
            if changed {
                sh.touch_modified(mod_seq, id, now);
            }
            changed
        }
    }

    // ------------------------------------------------------------------
    // Subnets
    // ------------------------------------------------------------------

    fn apply_subnet(
        &self,
        meta: &mut Meta,
        source: Source,
        subnet: Subnet,
        mask_assumed: bool,
        now: JTime,
    ) -> StoreSummary {
        let mut sum = StoreSummary::default();
        match meta.subnets.get_mut(&subnet) {
            Some(rec) => {
                let mut changed = false;
                if rec.mask_assumed && !mask_assumed {
                    rec.mask_assumed = false;
                    changed = true;
                }
                rec.sources.insert(source);
                rec.verified = now;
                if changed {
                    rec.changed = now;
                    sum.updated += 1;
                } else {
                    sum.verified += 1;
                }
            }
            None => {
                let mut rec = SubnetRecord::new(subnet, mask_assumed, now);
                rec.sources.insert(source);
                meta.subnets.insert(subnet, rec);
                sum.created += 1;
            }
        }
        sum
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_subnet_stats(
        &self,
        meta: &mut Meta,
        source: Source,
        subnet: Subnet,
        host_count: u32,
        lowest: Ipv4Addr,
        highest: Ipv4Addr,
        now: JTime,
    ) -> StoreSummary {
        let mut sum = self.apply_subnet(meta, source, subnet, false, now);
        let Some(rec) = meta.subnets.get_mut(&subnet) else {
            return sum; // apply_subnet ensures presence
        };
        let mut changed = false;
        match &mut rec.host_count {
            Some(t) => changed |= t.observe(host_count, now),
            None => {
                rec.host_count = Some(Timestamped::new(host_count, now));
                changed = true;
            }
        }
        if rec.lowest != Some(lowest) {
            rec.lowest = Some(lowest);
            changed = true;
        }
        if rec.highest != Some(highest) {
            rec.highest = Some(highest);
            changed = true;
        }
        if changed {
            rec.changed = now;
            sum.updated += 1;
        }
        sum
    }

    // ------------------------------------------------------------------
    // Gateways
    // ------------------------------------------------------------------

    fn apply_gateway(
        &self,
        meta: &mut Meta,
        source: Source,
        interface_ips: &[Ipv4Addr],
        interface_names: &[String],
        subnets: &[Subnet],
        now: JTime,
    ) -> StoreSummary {
        let mut sum = StoreSummary::default();

        // Resolve or create an interface record per address.
        let mut members: Vec<InterfaceId> = Vec::new();
        for &ip in interface_ips {
            let s = self.apply_interface(meta, source, Some(ip), None, None, None, now);
            sum.absorb(s);
            // Prefer the record that already belongs to a gateway so
            // repeated observations converge; otherwise take the first.
            let ids = self.ip_ids(ip);
            let chosen = ids
                .iter()
                .copied()
                .find(|&id| self.peek(id, |r| r.gateway.is_some()))
                .or_else(|| ids.first().copied());
            if let Some(id) = chosen {
                if !members.contains(&id) {
                    members.push(id);
                }
            }
        }
        for name in interface_names {
            for id in self.name_ids(name) {
                if !members.contains(&id) {
                    members.push(id);
                }
            }
        }

        // An observation that resolved to no interfaces would create an
        // unmergeable ghost gateway on every re-observation; record only
        // the subnet knowledge and wait for identifiable evidence.
        if members.is_empty() {
            for &s in subnets {
                sum.absorb(self.apply_subnet(meta, source, s, true, now));
            }
            return sum;
        }

        // Find the gateways any member already belongs to.
        let mut gids: Vec<GatewayId> = Vec::new();
        for &m in &members {
            if let Some(g) = self.peek(m, |r| r.gateway) {
                if !gids.contains(&g) {
                    gids.push(g);
                }
            }
        }
        // Take the gateway record out of the slab while we mutate it, so
        // the borrow of `meta` stays free for subnet upserts below.
        let (gid, mut g) = match gids.first().copied() {
            Some(primary) => {
                // Merge any additional gateways into the primary: two
                // modules discovered the same box from different sides.
                for &other in &gids[1..] {
                    self.merge_gateways(meta, primary, other, now);
                }
                let Some(g) = meta
                    .gateways
                    .get_mut(primary.0 as usize)
                    .and_then(Option::take)
                else {
                    return sum; // member pointed at a live gateway
                };
                (primary, g)
            }
            None => {
                let gid = GatewayId(meta.gateways.len() as u64);
                meta.gateways.push(None); // placeholder, restored below
                sum.created += 1;
                (gid, GatewayRecord::new(gid, now))
            }
        };

        // Attach members and subnets.
        let mut gw_changed = false;
        for &m in &members {
            self.with_shard_mut(self.shard_of(m), |sh| {
                if let Some(r) = sh.records.get_mut(&m.0) {
                    if r.gateway != Some(gid) {
                        r.gateway = Some(gid);
                        r.changed = now;
                        sh.touch_modified(&mut meta.mod_seq, m, now);
                    }
                }
            });
            gw_changed |= g.add_interface(m);
        }
        // Subnets derived from member interfaces carry confirmed masks;
        // explicitly-claimed subnets keep their mask *assumed* (modules
        // guess /24 when linking hops) until a mask reply confirms them.
        let mut all_subnets: Vec<(Subnet, bool)> = subnets.iter().map(|s| (*s, true)).collect();
        for &m in &members {
            if let Some(s) = self.peek(m, |r| r.subnet()) {
                if let Some(e) = all_subnets.iter_mut().find(|(x, _)| *x == s) {
                    e.1 = false;
                } else {
                    all_subnets.push((s, false));
                }
            }
        }
        for (s, assumed) in all_subnets {
            sum.absorb(self.apply_subnet(meta, source, s, assumed, now));
            gw_changed |= g.add_subnet(s);
            if let Some(srec) = meta.subnets.get_mut(&s) {
                if srec.add_gateway(gid) {
                    srec.changed = now;
                }
            }
        }
        g.sources.insert(source);
        g.verified = now;
        if gw_changed {
            g.changed = now;
            sum.updated += 1;
        } else {
            sum.verified += 1;
        }
        meta.gateways[gid.0 as usize] = Some(g);
        sum
    }

    fn merge_gateways(&self, meta: &mut Meta, into: GatewayId, from: GatewayId, now: JTime) {
        let Some(old) = meta
            .gateways
            .get_mut(from.0 as usize)
            .and_then(Option::take)
        else {
            return;
        };
        for &i in &old.interfaces {
            self.with_shard_mut(self.shard_of(i), |sh| {
                if let Some(r) = sh.records.get_mut(&i.0) {
                    if r.gateway != Some(into) {
                        r.gateway = Some(into);
                        r.changed = now;
                    }
                    sh.touch_modified(&mut meta.mod_seq, i, now);
                }
            });
        }
        // Re-point subnet records.
        for s in &old.subnets {
            if let Some(rec) = meta.subnets.get_mut(s) {
                rec.gateways.retain(|g| *g != from);
                rec.add_gateway(into);
            }
        }
        if let Some(g) = meta
            .gateways
            .get_mut(into.0 as usize)
            .and_then(Option::as_mut)
        {
            for i in old.interfaces {
                g.add_interface(i);
            }
            for s in old.subnets {
                g.add_subnet(s);
            }
            g.changed = now;
            for src in old.sources.iter() {
                g.sources.insert(src);
            }
        }
    }

    fn apply_rip_source(
        &self,
        meta: &mut Meta,
        source: Source,
        ip: Ipv4Addr,
        mac: Option<MacAddr>,
        promiscuous: bool,
        now: JTime,
    ) -> StoreSummary {
        let mut sum = self.apply_interface(meta, source, Some(ip), mac, None, None, now);
        for id in self.ip_ids(ip) {
            let matches_mac = match (mac, self.peek(id, |r| r.mac_addr())) {
                (Some(m), Some(rm)) => m == rm,
                _ => true,
            };
            if matches_mac {
                let updated = self.with_shard_mut(self.shard_of(id), |sh| {
                    if let Some(r) = sh.records.get_mut(&id.0) {
                        if !r.rip_source || r.rip_promiscuous != promiscuous {
                            r.rip_source = true;
                            r.rip_promiscuous = promiscuous;
                            r.changed = now;
                            sh.touch_modified(&mut meta.mod_seq, id, now);
                            return true;
                        }
                    }
                    false
                });
                if updated {
                    sum.updated += 1;
                }
            }
        }
        sum
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Fetches an interface record by id.
    pub fn interface(&self, id: InterfaceId) -> Option<InterfaceRecord> {
        self.with_shard(self.shard_of(id), |sh| sh.records.get(&id.0).cloned())
    }

    /// Fetches a gateway record by id.
    pub fn gateway(&self, id: GatewayId) -> Option<GatewayRecord> {
        let meta = self.meta.read();
        meta.gateways
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .cloned()
    }

    /// Fetches the subnet record for an exact subnet.
    pub fn subnet(&self, s: &Subnet) -> Option<SubnetRecord> {
        let meta = self.meta.read();
        meta.subnets.get(s).cloned()
    }

    /// Returns all interface records matching the query (the Journal
    /// Server's Get operation), using the IP index when the query allows.
    /// Fans out across shards and merges the sorted per-shard results.
    pub fn get_interfaces(&self, q: &InterfaceQuery) -> Vec<InterfaceRecord> {
        self.note_fanout();
        // Fast paths through the indexes.
        if let Some(ip) = q.ip {
            return self
                .ip_ids(ip)
                .into_iter()
                .filter_map(|id| self.interface(id))
                .filter(|r| q.matches(r))
                .collect();
        }
        if let Some(mac) = q.mac {
            return self
                .mac_ids(mac)
                .into_iter()
                .filter_map(|id| self.interface(id))
                .filter(|r| q.matches(r))
                .collect();
        }
        if let Some(s) = q.in_subnet {
            let lo = s.network();
            let hi = s.directed_broadcast();
            return self.scan_ip_range(lo, hi, q);
        }
        if let Some((lo, hi)) = q.ip_range {
            return self.scan_ip_range(lo, hi, q);
        }
        // Full scan: each shard's matches in id order, merged back by id.
        let lists: Vec<Vec<InterfaceRecord>> = (0..self.shards.len())
            .map(|s| {
                self.with_shard(s, |sh| {
                    let mut v: Vec<InterfaceRecord> = sh
                        .records
                        .values()
                        .filter(|r| q.matches(r))
                        .cloned()
                        .collect();
                    v.sort_unstable_by_key(|r| r.id.0);
                    v
                })
            })
            .collect();
        merge::k_way(lists, |r| r.id.0)
    }

    fn scan_ip_range(
        &self,
        lo: Ipv4Addr,
        hi: Ipv4Addr,
        q: &InterfaceQuery,
    ) -> Vec<InterfaceRecord> {
        let lists: Vec<Vec<(Ipv4Addr, u64, InterfaceId)>> = (0..self.shards.len())
            .map(|s| {
                self.with_shard(s, |sh| {
                    let mut v = Vec::new();
                    for (ip, entries) in sh
                        .idx_ip
                        .range((Bound::Included(&lo), Bound::Included(&hi)))
                    {
                        for e in entries {
                            v.push((*ip, e.0, e.1));
                        }
                    }
                    v
                })
            })
            .collect();
        merge::k_way(lists, |e| (e.0, e.1))
            .into_iter()
            .filter_map(|(_, _, id)| self.interface(id))
            .filter(|r| q.matches(r))
            .collect()
    }

    /// Interfaces in ascending order of last modification (oldest first).
    pub fn interfaces_by_modification(&self) -> Vec<InterfaceRecord> {
        self.note_fanout();
        let lists: Vec<Vec<((JTime, u64), InterfaceRecord)>> = (0..self.shards.len())
            .map(|s| {
                self.with_shard(s, |sh| {
                    sh.idx_modified
                        .iter()
                        .filter_map(|(k, id)| sh.records.get(&id.0).map(|r| (*k, r.clone())))
                        .collect()
                })
            })
            .collect();
        merge::k_way(lists, |e| e.0)
            .into_iter()
            .map(|(_, r)| r)
            .collect()
    }

    /// All gateway records.
    pub fn get_gateways(&self) -> Vec<GatewayRecord> {
        let meta = self.meta.read();
        meta.gateways.iter().flatten().cloned().collect()
    }

    /// Subnet records matching the query, in address order.
    pub fn get_subnets(&self, q: &SubnetQuery) -> Vec<SubnetRecord> {
        let meta = self.meta.read();
        meta.subnets
            .iter()
            .map(|(_, r)| r)
            .filter(|r| q.matches(r))
            .cloned()
            .collect()
    }

    // ------------------------------------------------------------------
    // Delete
    // ------------------------------------------------------------------

    /// Deletes an interface record (the Journal Server's Delete operation).
    ///
    /// Returns `true` when the record existed.
    pub fn delete_interface(&mut self, id: InterfaceId) -> bool {
        self.delete_interface_shared(id)
    }

    /// Deletes through a shared reference, serializing on the meta lock.
    pub fn delete_interface_shared(&self, id: InterfaceId) -> bool {
        let mut meta = self.meta.write();
        self.delete_locked(&mut meta, id)
    }

    fn delete_locked(&self, meta: &mut Meta, id: InterfaceId) -> bool {
        let shard = self.shard_of(id);
        let mut deltas = Vec::new();
        let rec = self.with_shard_mut(shard, |sh| {
            let rec = sh.records.remove(&id.0)?;
            if let Some(ip) = rec.ip_addr() {
                indexes::remove(
                    &mut sh.idx_ip,
                    &mut sh.flt_ip,
                    &ip,
                    id,
                    indexes::TAG_IP,
                    shard,
                    &mut deltas,
                );
            }
            if let Some(mac) = rec.mac_addr() {
                indexes::remove(
                    &mut sh.idx_mac,
                    &mut sh.flt_mac,
                    &mac,
                    id,
                    indexes::TAG_MAC,
                    shard,
                    &mut deltas,
                );
            }
            if let Some(name) = rec.dns_name() {
                indexes::remove(
                    &mut sh.idx_name,
                    &mut sh.flt_name,
                    &name.to_owned(),
                    id,
                    indexes::TAG_NAME,
                    shard,
                    &mut deltas,
                );
            }
            if let Some(key) = sh.mod_keys.remove(&id.0) {
                sh.idx_modified.remove(&key);
            }
            Some(rec)
        });
        for d in &deltas {
            meta.flt.apply(d);
        }
        let Some(rec) = rec else {
            return false;
        };
        if let Some(gid) = rec.gateway {
            if let Some(g) = meta
                .gateways
                .get_mut(gid.0 as usize)
                .and_then(Option::as_mut)
            {
                g.interfaces.retain(|i| *i != id);
            }
        }
        true
    }

    // ------------------------------------------------------------------
    // Stats, snapshots, invariants
    // ------------------------------------------------------------------

    /// Journal-wide statistics.
    pub fn stats(&self) -> JournalStats {
        let meta = self.meta.read();
        let interfaces = (0..self.shards.len())
            .map(|s| self.with_shard(s, |sh| sh.records.len()))
            .sum();
        JournalStats {
            interfaces,
            gateways: meta.gateways.iter().flatten().count(),
            subnets: meta.subnets.len(),
            observations_applied: meta.observations_applied,
        }
    }

    /// Point-in-time sharding and batching metrics for observability.
    pub fn sharding_metrics(&self) -> ShardingMetrics {
        let shards = (0..self.shards.len())
            .map(|i| {
                let records = self.with_shard(i, |sh| sh.records.len());
                let c = &self.shard_counters[i];
                ShardMetrics {
                    shard: i,
                    records,
                    read_locks: c.read_locks.load(Ordering::Relaxed),
                    write_locks: c.write_locks.load(Ordering::Relaxed),
                }
            })
            .collect();
        ShardingMetrics {
            shards,
            fanout_queries: self.counters.fanout_queries.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            batch_observations: self.counters.batch_observations.load(Ordering::Relaxed),
            largest_batch: self.counters.largest_batch.load(Ordering::Relaxed),
        }
    }

    /// Total shard commit groups flushed by the grouped batch path — one
    /// shard write-lock acquisition each. Kept out of [`ShardingMetrics`]
    /// (a wire type frozen by the wal-schema golden); the server reads it
    /// directly when publishing telemetry.
    pub fn batch_groups_total(&self) -> u64 {
        self.counters.batch_groups.load(Ordering::Relaxed)
    }

    /// Exports all records as a snapshot.
    pub fn to_snapshot(&self) -> crate::snapshot::JournalSnapshot {
        let meta = self.meta.read();
        let lists: Vec<Vec<InterfaceRecord>> = (0..self.shards.len())
            .map(|s| {
                self.with_shard(s, |sh| {
                    let mut v: Vec<InterfaceRecord> = sh.records.values().cloned().collect();
                    v.sort_unstable_by_key(|r| r.id.0);
                    v
                })
            })
            .collect();
        crate::snapshot::JournalSnapshot {
            version: crate::snapshot::SNAPSHOT_VERSION,
            interfaces: merge::k_way(lists, |r| r.id.0),
            gateways: meta.gateways.iter().flatten().cloned().collect(),
            subnets: meta.subnets.iter().map(|(_, r)| r.clone()).collect(),
            observations_applied: meta.observations_applied,
        }
    }

    /// A stable fingerprint of the journal's canonical snapshot — see
    /// [`crate::snapshot::JournalSnapshot::fingerprint`]. Independent of
    /// shard layout and observation arrival batching; two journals that
    /// hold the same facts fingerprint identically.
    pub fn fingerprint(&self) -> u64 {
        self.to_snapshot().fingerprint()
    }

    /// Rebuilds a journal (including every index) from a snapshot, with the
    /// default shard count.
    pub fn from_snapshot(snap: &crate::snapshot::JournalSnapshot) -> Journal {
        Self::from_snapshot_sharded(snap, DEFAULT_SHARDS)
    }

    /// Rebuilds a journal from a snapshot with an explicit shard count.
    pub fn from_snapshot_sharded(
        snap: &crate::snapshot::JournalSnapshot,
        shards: usize,
    ) -> Journal {
        let j = Journal::with_shards(shards);
        {
            let mut meta = j.meta.write();
            meta.observations_applied = snap.observations_applied;

            // Records keep their identifiers, so allocation resumes past
            // the maximum and the gateway slab is sized to it.
            meta.next_iface = snap
                .interfaces
                .iter()
                .map(|r| r.id.0 + 1)
                .max()
                .unwrap_or(0);
            let max_gw = snap.gateways.iter().map(|r| r.id.0 + 1).max().unwrap_or(0);
            meta.gateways = (0..max_gw).map(|_| None).collect();

            // Rebuild the modification index in changed-time order.
            let mut by_changed: Vec<&InterfaceRecord> = snap.interfaces.iter().collect();
            by_changed.sort_by_key(|r| r.changed);
            let mut deltas = Vec::new();
            for rec in by_changed {
                let id = rec.id;
                let shard = shard::shard_of(id, j.shards.len());
                j.with_shard_mut(shard, |sh| {
                    sh.records.insert(id.0, rec.clone());
                    if let Some(ip) = rec.ip_addr() {
                        indexes::add(
                            &mut sh.idx_ip,
                            &mut sh.flt_ip,
                            ip,
                            id,
                            &mut meta.idx_seq,
                            indexes::TAG_IP,
                            shard,
                            &mut deltas,
                        );
                    }
                    if let Some(mac) = rec.mac_addr() {
                        indexes::add(
                            &mut sh.idx_mac,
                            &mut sh.flt_mac,
                            mac,
                            id,
                            &mut meta.idx_seq,
                            indexes::TAG_MAC,
                            shard,
                            &mut deltas,
                        );
                    }
                    if let Some(name) = rec.dns_name() {
                        indexes::add(
                            &mut sh.idx_name,
                            &mut sh.flt_name,
                            name.to_owned(),
                            id,
                            &mut meta.idx_seq,
                            indexes::TAG_NAME,
                            shard,
                            &mut deltas,
                        );
                    }
                    sh.touch_modified(&mut meta.mod_seq, id, rec.changed);
                });
            }
            for d in &deltas {
                meta.flt.apply(d);
            }
            for g in &snap.gateways {
                meta.gateways[g.id.0 as usize] = Some(g.clone());
            }
            for s in &snap.subnets {
                meta.subnets.insert(s.subnet, s.clone());
            }
        }
        j
    }

    /// Verifies internal index consistency (used by tests).
    pub fn check_invariants(&self) -> Result<(), String> {
        let meta = self.meta.read();
        for s in 0..self.shards.len() {
            let members =
                self.with_shard(s, |sh| -> Result<Vec<(InterfaceId, GatewayId)>, String> {
                    sh.check_invariants()?;
                    for r in sh.records.values() {
                        if shard::shard_of(r.id, self.shards.len()) != s {
                            return Err(format!("record {:?} stored in wrong shard {s}", r.id));
                        }
                    }
                    Ok(sh
                        .records
                        .values()
                        .filter_map(|r| r.gateway.map(|g| (r.id, g)))
                        .collect())
                })?;
            for (id, gid) in members {
                let g = meta
                    .gateways
                    .get(gid.0 as usize)
                    .and_then(Option::as_ref)
                    .ok_or_else(|| format!("record {id:?} points at dead gateway"))?;
                if !g.interfaces.contains(&id) {
                    return Err(format!("gateway {gid:?} missing member {id:?}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Observation;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn mac(s: &str) -> MacAddr {
        s.parse().unwrap()
    }

    fn subnet(s: &str) -> Subnet {
        s.parse().unwrap()
    }

    #[test]
    fn ping_then_arp_merges_into_one_record() {
        let mut j = Journal::new();
        j.apply(
            &Observation::ip_alive(Source::SeqPing, ip("10.0.0.5")),
            JTime(10),
        );
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.5"), mac("08:00:20:00:00:05")),
            JTime(20),
        );
        let recs = j.get_interfaces(&InterfaceQuery::by_ip(ip("10.0.0.5")));
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.mac_addr(), Some(mac("08:00:20:00:00:05")));
        assert_eq!(r.discovered, JTime(10));
        assert!(r.sources.contains(Source::SeqPing));
        assert!(r.sources.contains(Source::ArpWatch));
        j.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_ip_keeps_two_records() {
        let mut j = Journal::new();
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.9"), mac("08:00:20:00:00:01")),
            JTime(1),
        );
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.9"), mac("00:00:0c:00:00:02")),
            JTime(2),
        );
        let recs = j.get_interfaces(&InterfaceQuery::by_ip(ip("10.0.0.9")));
        assert_eq!(recs.len(), 2, "duplicate address must stay visible");
        j.check_invariants().unwrap();
    }

    #[test]
    fn proxy_arp_mac_with_multiple_ips_keeps_records() {
        let mut j = Journal::new();
        let gw_mac = mac("00:00:0c:aa:bb:cc");
        for i in 1..=3u8 {
            j.apply(
                &Observation::arp_pair(Source::EtherHostProbe, Ipv4Addr::new(10, 0, 0, i), gw_mac),
                JTime(u64::from(i)),
            );
        }
        let recs = j.get_interfaces(&InterfaceQuery::by_mac(gw_mac));
        assert_eq!(recs.len(), 3, "one MAC answering three IPs: three records");
        j.check_invariants().unwrap();
    }

    #[test]
    fn reverification_updates_timestamps_only() {
        let mut j = Journal::new();
        let o = Observation::arp_pair(Source::ArpWatch, ip("10.0.0.5"), mac("08:00:20:00:00:05"));
        let s1 = j.apply(&o, JTime(10));
        assert_eq!(s1.created, 1);
        let s2 = j.apply(&o, JTime(99));
        assert_eq!(s2.verified, 1);
        assert_eq!(s2.updated, 0);
        let r = &j.get_interfaces(&InterfaceQuery::all())[0];
        assert_eq!(r.verified, JTime(99));
        assert_eq!(r.changed, JTime(10));
    }

    #[test]
    fn dns_verification_does_not_count_as_live() {
        let mut j = Journal::new();
        j.apply(
            &Observation::named_ip(Source::Dns, ip("10.0.0.7"), "ghost.cs"),
            JTime(5),
        );
        let r = &j.get_interfaces(&InterfaceQuery::all())[0];
        assert_eq!(r.live_verified, None);
        j.apply(
            &Observation::ip_alive(Source::SeqPing, ip("10.0.0.7")),
            JTime(9),
        );
        let r = &j.get_interfaces(&InterfaceQuery::all())[0];
        assert_eq!(r.live_verified, Some(JTime(9)));
        assert_eq!(r.dns_name(), Some("ghost.cs"));
    }

    #[test]
    fn mask_observation_attaches_to_ip() {
        let mut j = Journal::new();
        j.apply(
            &Observation::ip_alive(Source::SeqPing, ip("10.0.1.4")),
            JTime(0),
        );
        j.apply(
            &Observation::mask(
                Source::SubnetMasks,
                ip("10.0.1.4"),
                fremont_net::SubnetMask::from_prefix_len(24).unwrap(),
            ),
            JTime(1),
        );
        let r = &j.get_interfaces(&InterfaceQuery::by_ip(ip("10.0.1.4")))[0];
        assert_eq!(r.subnet(), Some(subnet("10.0.1.0/24")));
    }

    #[test]
    fn subnet_upsert_and_mask_confirmation() {
        let mut j = Journal::new();
        let s = subnet("128.138.238.0/24");
        let s1 = j.apply(&Observation::subnet(Source::RipWatch, s, true), JTime(1));
        assert_eq!(s1.created, 1);
        assert!(j.subnet(&s).unwrap().mask_assumed);
        let s2 = j.apply(
            &Observation::subnet(Source::SubnetMasks, s, false),
            JTime(2),
        );
        assert_eq!(s2.updated, 1);
        assert!(!j.subnet(&s).unwrap().mask_assumed);
        // A later assumed observation does not downgrade.
        j.apply(&Observation::subnet(Source::RipWatch, s, true), JTime(3));
        assert!(!j.subnet(&s).unwrap().mask_assumed);
    }

    #[test]
    fn gateway_merge_across_modules() {
        let mut j = Journal::new();
        // Traceroute sees interfaces .1 on two subnets as one gateway.
        j.apply(
            &Observation::new(
                Source::Traceroute,
                Fact::Gateway {
                    interface_ips: vec![ip("128.138.238.1")],
                    interface_names: vec![],
                    subnets: vec![subnet("128.138.238.0/24"), subnet("128.138.240.0/24")],
                },
            ),
            JTime(10),
        );
        // DNS later learns the same box via another interface plus a shared ip.
        j.apply(
            &Observation::new(
                Source::Dns,
                Fact::Gateway {
                    interface_ips: vec![ip("128.138.238.1"), ip("128.138.240.1")],
                    interface_names: vec![],
                    subnets: vec![],
                },
            ),
            JTime(20),
        );
        let gws = j.get_gateways();
        assert_eq!(gws.len(), 1, "both observations describe one gateway");
        let g = &gws[0];
        assert!(g.subnets.contains(&subnet("128.138.238.0/24")));
        assert!(g.subnets.contains(&subnet("128.138.240.0/24")));
        assert_eq!(g.interfaces.len(), 2);
        assert!(g.sources.contains(Source::Traceroute));
        assert!(g.sources.contains(Source::Dns));
        // Subnet records point back at the gateway.
        assert_eq!(
            j.subnet(&subnet("128.138.238.0/24")).unwrap().gateways,
            vec![g.id]
        );
        j.check_invariants().unwrap();
    }

    #[test]
    fn distinct_gateways_merge_when_bridged() {
        let mut j = Journal::new();
        // Two modules each discover a different interface of the same box.
        j.apply(
            &Observation::new(
                Source::Traceroute,
                Fact::Gateway {
                    interface_ips: vec![ip("10.1.0.1")],
                    interface_names: vec![],
                    subnets: vec![subnet("10.1.0.0/24")],
                },
            ),
            JTime(1),
        );
        j.apply(
            &Observation::new(
                Source::Dns,
                Fact::Gateway {
                    interface_ips: vec![ip("10.2.0.1")],
                    interface_names: vec![],
                    subnets: vec![subnet("10.2.0.0/24")],
                },
            ),
            JTime(2),
        );
        assert_eq!(j.get_gateways().len(), 2);
        // A third observation bridges them.
        j.apply(
            &Observation::new(
                Source::Dns,
                Fact::Gateway {
                    interface_ips: vec![ip("10.1.0.1"), ip("10.2.0.1")],
                    interface_names: vec![],
                    subnets: vec![],
                },
            ),
            JTime(3),
        );
        let gws = j.get_gateways();
        assert_eq!(gws.len(), 1, "bridging observation merges gateways");
        assert_eq!(gws[0].interfaces.len(), 2);
        assert_eq!(gws[0].subnets.len(), 2);
        j.check_invariants().unwrap();
    }

    #[test]
    fn rip_source_flags() {
        let mut j = Journal::new();
        j.apply(
            &Observation::new(
                Source::RipWatch,
                Fact::RipSource {
                    ip: ip("10.0.0.1"),
                    mac: Some(mac("00:00:0c:01:02:03")),
                    advertised_routes: 40,
                    promiscuous: false,
                },
            ),
            JTime(1),
        );
        let r = &j.get_interfaces(&InterfaceQuery::by_ip(ip("10.0.0.1")))[0];
        assert!(r.rip_source);
        assert!(!r.rip_promiscuous);
        let q = InterfaceQuery {
            rip_source: Some(true),
            ..Default::default()
        };
        assert_eq!(j.get_interfaces(&q).len(), 1);
    }

    #[test]
    fn subnet_stats_recorded() {
        let mut j = Journal::new();
        j.apply(
            &Observation::new(
                Source::Dns,
                Fact::SubnetStats {
                    subnet: subnet("128.138.243.0/24"),
                    host_count: 56,
                    lowest: ip("128.138.243.1"),
                    highest: ip("128.138.243.91"),
                },
            ),
            JTime(1),
        );
        let r = j.subnet(&subnet("128.138.243.0/24")).unwrap();
        assert_eq!(r.host_count.as_ref().map(|t| *t.get()), Some(56));
        assert_eq!(r.lowest, Some(ip("128.138.243.1")));
        assert_eq!(r.highest, Some(ip("128.138.243.91")));
    }

    #[test]
    fn delete_interface_cleans_indexes() {
        let mut j = Journal::new();
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.5"), mac("08:00:20:00:00:05")),
            JTime(1),
        );
        let id = j.get_interfaces(&InterfaceQuery::all())[0].id;
        assert!(j.delete_interface(id));
        assert!(!j.delete_interface(id));
        assert!(j.get_interfaces(&InterfaceQuery::all()).is_empty());
        assert!(j
            .get_interfaces(&InterfaceQuery::by_ip(ip("10.0.0.5")))
            .is_empty());
        j.check_invariants().unwrap();
    }

    #[test]
    fn modification_order_tracks_changes() {
        let mut j = Journal::new();
        j.apply(
            &Observation::ip_alive(Source::SeqPing, ip("10.0.0.1")),
            JTime(1),
        );
        j.apply(
            &Observation::ip_alive(Source::SeqPing, ip("10.0.0.2")),
            JTime(2),
        );
        j.apply(
            &Observation::ip_alive(Source::SeqPing, ip("10.0.0.3")),
            JTime(3),
        );
        // Touch .1 with a change (new mac) so it moves to the end.
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.1"), mac("08:00:20:00:00:01")),
            JTime(4),
        );
        let order: Vec<_> = j
            .interfaces_by_modification()
            .iter()
            .map(|r| r.ip_addr().unwrap())
            .collect();
        assert_eq!(
            order,
            vec![ip("10.0.0.2"), ip("10.0.0.3"), ip("10.0.0.1")],
            "most recently changed records move to the end"
        );
    }

    #[test]
    fn ip_change_on_same_mac_reindexes() {
        let mut j = Journal::new();
        let m = mac("08:00:20:00:00:07");
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.7"), m),
            JTime(1),
        );
        // The host was renumbered; EtherHostProbe sees the same MAC with a
        // previously-unknown IP. Policy: new record (visible reconfiguration).
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.77"), m),
            JTime(2),
        );
        let recs = j.get_interfaces(&InterfaceQuery::by_mac(m));
        assert_eq!(recs.len(), 2);
        j.check_invariants().unwrap();
    }

    #[test]
    fn stats_counts() {
        let mut j = Journal::new();
        j.apply(
            &Observation::ip_alive(Source::SeqPing, ip("10.0.0.1")),
            JTime(1),
        );
        j.apply(
            &Observation::subnet(Source::RipWatch, subnet("10.0.0.0/24"), true),
            JTime(1),
        );
        let s = j.stats();
        assert_eq!(s.interfaces, 1);
        assert_eq!(s.subnets, 1);
        assert_eq!(s.gateways, 0);
        assert_eq!(s.observations_applied, 2);
    }

    #[test]
    fn query_uses_subnet_index_path() {
        let mut j = Journal::new();
        for i in 1..=20u8 {
            j.apply(
                &Observation::ip_alive(Source::SeqPing, Ipv4Addr::new(10, 0, 1, i)),
                JTime(1),
            );
            j.apply(
                &Observation::ip_alive(Source::SeqPing, Ipv4Addr::new(10, 0, 2, i)),
                JTime(1),
            );
        }
        let recs = j.get_interfaces(&InterfaceQuery::in_subnet(subnet("10.0.1.0/24")));
        assert_eq!(recs.len(), 20);
        assert!(recs.iter().all(|r| r.ip_addr().unwrap().octets()[2] == 1));
    }

    #[test]
    fn single_shard_journal_behaves_identically() {
        let mut j = Journal::with_shards(1);
        assert_eq!(j.shard_count(), 1);
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip("10.0.0.5"), mac("08:00:20:00:00:05")),
            JTime(1),
        );
        assert_eq!(j.get_interfaces(&InterfaceQuery::all()).len(), 1);
        j.check_invariants().unwrap();
    }

    #[test]
    fn apply_batch_counts_one_batch() {
        let j = Journal::with_shards(4);
        let obs = [
            Observation::ip_alive(Source::SeqPing, ip("10.0.0.1")),
            Observation::ip_alive(Source::SeqPing, ip("10.0.0.2")),
            Observation::ip_alive(Source::SeqPing, ip("10.0.0.3")),
        ];
        let sum = j.apply_batch(obs.iter().map(|o| (o, JTime(1))));
        assert_eq!(sum.created, 3);
        let m = j.sharding_metrics();
        assert_eq!(m.batches, 1);
        assert_eq!(m.batch_observations, 3);
        assert_eq!(m.largest_batch, 3);
        assert_eq!(m.shards.len(), 4);
        assert_eq!(m.shards.iter().map(|s| s.records).sum::<usize>(), 3);
        j.check_invariants().unwrap();
    }
}
