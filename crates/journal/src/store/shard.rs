//! One partition of the interface-record space.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use fremont_net::MacAddr;

use crate::avl::AvlMap;
use crate::records::{InterfaceId, InterfaceRecord};
use crate::time::JTime;

use super::indexes::{Entry, FilterKey, KeyFilter};

/// Computes the shard an interface id lives in (Fibonacci hashing, so
/// sequentially allocated ids spread evenly instead of striding).
pub(super) fn shard_of(id: InterfaceId, shards: usize) -> usize {
    ((id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32) as usize % shards
}

/// One shard: the interface records it owns plus the secondary indexes over
/// exactly those records. The AVL indexes that used to span the whole
/// journal are per-shard now; cross-shard queries merge the sorted
/// per-shard results.
pub(super) struct Shard {
    /// Interface records owned by this shard, keyed by raw id.
    pub records: HashMap<u64, InterfaceRecord>,
    /// Ethernet-address index. A MAC maps to *several* records when one
    /// adapter answers for several IP addresses (gateway or proxy ARP).
    pub idx_mac: AvlMap<MacAddr, Vec<Entry>>,
    /// IP-address index. An IP maps to several records when two hosts are
    /// (mis)configured with the same address, or hardware changed.
    pub idx_ip: AvlMap<Ipv4Addr, Vec<Entry>>,
    /// DNS-name index. A name maps to several records for multi-homed
    /// gateways.
    pub idx_name: AvlMap<String, Vec<Entry>>,
    /// Live-key fingerprint counts for `idx_mac`/`idx_ip`/`idx_name`:
    /// cross-shard fan-out asks these before descending into the trees,
    /// so shards that cannot hold a key cost one hash probe, not a tree
    /// walk. Maintained by `indexes::add`/`indexes::remove`.
    pub flt_mac: KeyFilter,
    pub flt_ip: KeyFilter,
    pub flt_name: KeyFilter,
    /// Modification-time ordering over this shard's records (the paper's
    /// "lists ordered by time of last modification"); the `u64` half of the
    /// key is the journal-global modification sequence, so merged shard
    /// runs reproduce the global order.
    pub idx_modified: AvlMap<(JTime, u64), InterfaceId>,
    /// Current modification key per record, for removal on re-touch.
    pub mod_keys: HashMap<u64, (JTime, u64)>,
}

impl Shard {
    /// Creates an empty shard.
    pub fn new() -> Self {
        Shard {
            records: HashMap::new(),
            idx_mac: AvlMap::new(),
            idx_ip: AvlMap::new(),
            idx_name: AvlMap::new(),
            flt_mac: KeyFilter::new(),
            flt_ip: KeyFilter::new(),
            flt_name: KeyFilter::new(),
            idx_modified: AvlMap::new(),
            mod_keys: HashMap::new(),
        }
    }

    /// Moves `id` to the end of the modification order at time `now`,
    /// drawing a fresh journal-global modification sequence from `mod_seq`.
    pub fn touch_modified(&mut self, mod_seq: &mut u64, id: InterfaceId, now: JTime) {
        if let Some(old) = self.mod_keys.remove(&id.0) {
            self.idx_modified.remove(&old);
        }
        *mod_seq += 1;
        let key = (now, *mod_seq);
        self.idx_modified.insert(key, id);
        self.mod_keys.insert(id.0, key);
    }

    /// Verifies this shard's index consistency.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.idx_ip.check_invariants()?;
        self.idx_mac.check_invariants()?;
        self.idx_name.check_invariants()?;
        self.idx_modified.check_invariants()?;
        for (ip, entries) in self.idx_ip.iter() {
            for (_, id) in entries {
                let Some(r) = self.records.get(&id.0) else {
                    return Err(format!("idx_ip points at dead record {id:?}"));
                };
                if r.ip_addr() != Some(*ip) {
                    return Err(format!("idx_ip stale for {ip}"));
                }
            }
            if !entries.windows(2).all(|w| w[0].0 < w[1].0) {
                return Err(format!("idx_ip postings out of sequence for {ip}"));
            }
        }
        for (mac, entries) in self.idx_mac.iter() {
            for (_, id) in entries {
                let Some(r) = self.records.get(&id.0) else {
                    return Err(format!("idx_mac points at dead record {id:?}"));
                };
                if r.mac_addr() != Some(*mac) {
                    return Err(format!("idx_mac stale for {mac}"));
                }
            }
            if !entries.windows(2).all(|w| w[0].0 < w[1].0) {
                return Err(format!("idx_mac postings out of sequence for {mac}"));
            }
        }
        for (name, idx, flt) in [
            ("idx_ip", self.idx_ip.iter().count() as u64, &self.flt_ip),
            ("idx_mac", self.idx_mac.iter().count() as u64, &self.flt_mac),
            (
                "idx_name",
                self.idx_name.iter().count() as u64,
                &self.flt_name,
            ),
        ] {
            if flt.live_keys() != idx {
                return Err(format!(
                    "{name} filter counts {} keys, index holds {idx}",
                    flt.live_keys()
                ));
            }
        }
        for (ip, _) in self.idx_ip.iter() {
            if !self.flt_ip.may_contain(ip.filter_hash()) {
                return Err(format!("flt_ip misses live key {ip}"));
            }
        }
        for (mac, _) in self.idx_mac.iter() {
            if !self.flt_mac.may_contain(mac.filter_hash()) {
                return Err(format!("flt_mac misses live key {mac}"));
            }
        }
        for (name, _) in self.idx_name.iter() {
            if !self.flt_name.may_contain(name.filter_hash()) {
                return Err(format!("flt_name misses live key {name}"));
            }
        }
        for rec in self.records.values() {
            if let Some(ip) = rec.ip_addr() {
                let present = self
                    .idx_ip
                    .get(&ip)
                    .is_some_and(|v| v.iter().any(|e| e.1 == rec.id));
                if !present {
                    return Err(format!("record {:?} missing from idx_ip", rec.id));
                }
            }
        }
        Ok(())
    }
}
