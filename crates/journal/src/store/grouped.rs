//! Shard-grouped batch application.
//!
//! [`Journal::apply_batch`] used to visit shard locks per observation: a
//! 64-observation batch against an 8-shard store cost hundreds of lock
//! acquisitions because every identity resolution fanned a read across
//! all shards and every record touch took its shard's write lock anew.
//! This module replaces that with a plan/commit split that takes each
//! shard lock **at most once per conflict-free run** of the batch:
//!
//! 1. **Acquire** (meta write lock held, the single write gate): on the
//!    batch's first interface observation, take every shard's write lock
//!    in ascending index order — the one same-label acquisition pattern
//!    the shard-lock-order lint and the runtime sanitizer bless — and
//!    hold the guards for the rest of the batch.
//! 2. **Plan**: walk the batch in order. Meta-only facts (subnets)
//!    apply inline. Interface observations resolve their target records
//!    by probing the shard indexes directly through the held guards —
//!    committed state cannot change under them, so a probe reads
//!    exactly what a snapshot taken at generation start would hold —
//!    and become [`PlannedOp`]s grouped by target shard, each with a
//!    pre-reserved block of global index and modification sequences.
//! 3. **Commit** (generation flush): each non-empty shard group is
//!    applied through its already-held guard — no further lock traffic —
//!    in ascending shard order inline, or, when groups are large enough
//!    to amortize a thread spawn, concurrently on scoped worker threads.
//!    Workers receive disjoint `&mut Shard` borrows carved out of the
//!    held guards, so a worker touches no lock at all and the lock
//!    acquisition trace is identical whether a generation commits inline
//!    or in parallel.
//!
//! # Equivalence with sequential application
//!
//! The planner flushes the pending generation whenever the next
//! observation could observe a pending write: its keys (IP/MAC/name)
//! intersect the keys of any pending operation *or of any record a
//! pending operation touches*. Resolutions therefore read exactly the
//! state sequential application would have shown them — pending writes
//! an observation could see are always committed before it resolves —
//! and operations on distinct records commute. Gateway and RIP-source
//! facts read and write records across shards through the per-item
//! machinery, so they act as full barriers: the pending generation
//! commits, the held guards drop, the fact applies through the per-item
//! path, and the next interface observation re-acquires (the only case
//! where a shard lock is taken more than once per batch). Sequence
//! blocks are reserved in plan order with fixed strides; only the
//! *relative* order of sequences is observable (posting-list order,
//! modification order — never the values themselves), so the gaps
//! unused reservations leave behind are invisible. `prop_shard.rs` pins
//! all of this against [`Journal::apply_batch_sequential`] and per-item
//! `apply_shared`.
//!
//! # Visibility
//!
//! Shard-only readers could always observe a batch's intermediate
//! states; under grouped commit the granularity coarsens to whole
//! guard-holding runs — a barrier-free batch is atomic with respect to
//! interface queries, because every shard's write lock is held from the
//! batch's first interface observation through its last commit. Meta
//! readers (stats, snapshots) remain fully serialized against the
//! batch, and the final state is identical to sequential application.

use std::collections::HashSet;
use std::net::Ipv4Addr;
use std::sync::atomic::Ordering;

use fremont_net::MacAddr;
use parking_lot::RwLockWriteGuard;

use crate::observation::{Fact, Observation, Source};
use crate::records::{InterfaceId, InterfaceRecord};
use crate::time::JTime;

use super::indexes::{
    Entry, FilterDelta, FilterKey, IdentityState, ShardMaskFilter, TAG_IP, TAG_MAC, TAG_NAME,
};
use super::shard::{shard_of, Shard};
use super::{Journal, Meta, StoreSummary};

/// Every shard's write guard, ascending by index, held from the batch's
/// first interface observation through its last commit.
type ShardGuards<'j> = Vec<RwLockWriteGuard<'j, Shard>>;

/// Releases held guards in ascending shard order (the `Vec`'s natural
/// drop order). Lone-lock reader sweeps run *descending* (see
/// `Journal::merged_ids`), so a reader parked at shard `k` wakes when
/// `k` frees and finds every lower-numbered shard it still wants
/// already free — the writer's acquisition and release each cross a
/// given reader at most once instead of convoying lock-by-lock.
fn release(held: &mut Option<ShardGuards<'_>>) {
    *held = None;
}

/// Global index sequences reserved per planned operation: at most one
/// posting add each for IP, MAC, and name.
const IDX_STRIDE: u64 = 3;

/// Modification sequences reserved per planned operation: the creation
/// touch plus at most one change touch.
const MOD_STRIDE: u64 = 2;

/// Smallest per-group operation count for which a scoped worker thread
/// pays for its spawn; below this, groups commit inline in ascending
/// shard order.
const PARALLEL_MIN_OPS_PER_GROUP: usize = 64;

/// One record operation planned against a single shard: create the
/// record and/or merge observed fields into it, drawing sequences from
/// the reserved `idx_base`/`mod_base` blocks.
struct PlannedOp {
    id: InterfaceId,
    create: bool,
    source: Source,
    ip: Option<Ipv4Addr>,
    mac: Option<MacAddr>,
    name: Option<String>,
    mask: Option<fremont_net::SubnetMask>,
    now: JTime,
    idx_base: u64,
    mod_base: u64,
}

/// The record a posting points at, read through the held guards —
/// postings only reference live records in their own shard.
fn rec_of<'g>(guards: &'g ShardGuards<'_>, id: InterfaceId) -> &'g InterfaceRecord {
    &guards[shard_of(id, guards.len())].records[&id.0]
}

/// Merges the per-shard posting lists one key resolves to into `out`,
/// restoring global insertion order (sequences are globally unique).
/// `mask` is the journal-global shard-mask filter's verdict for the
/// key's tagged fingerprint: only set bits are descended into, so the
/// common miss costs one hash probe total instead of one tree descent
/// per shard. The scratch buffer is reused across resolutions to stay
/// off the allocator.
fn merged_into(
    guards: &ShardGuards<'_>,
    mut mask: u64,
    get: impl Fn(&Shard) -> Option<&Vec<Entry>>,
    out: &mut Vec<Entry>,
) {
    out.clear();
    if mask == u64::MAX {
        // Untracked filter (more than 64 shards, which a bitmask cannot
        // index): probe everything.
        for sh in guards.iter() {
            if let Some(entries) = get(sh) {
                out.extend_from_slice(entries);
            }
        }
    } else {
        while mask != 0 {
            let s = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            if let Some(entries) = get(&guards[s]) {
                out.extend_from_slice(entries);
            }
        }
    }
    out.sort_unstable_by_key(|e| e.0);
}

/// Planner state for one `apply_batch_grouped` call.
struct Planner {
    /// Fingerprints of the keys the pending generation writes through:
    /// the observations' own keys plus every key of every record a
    /// pending op touches, each tagged by key type. A new observation
    /// intersecting this set forces a flush first; a fingerprint
    /// collision can only make the intersection spuriously true, which
    /// costs an extra flush, never a missed conflict.
    pending: HashSet<u64, IdentityState>,
    /// Planned ops per shard, pending commit.
    groups: Vec<Vec<PlannedOp>>,
    pending_ops: usize,
    /// Next unreserved sequence block bases; synced from `meta` whenever
    /// the pending generation is empty.
    next_idx: u64,
    next_mod: u64,
    /// Posting-list scratch buffers for resolution.
    scratch_a: Vec<Entry>,
    scratch_b: Vec<Entry>,
}

impl Planner {
    fn new(shards: usize) -> Self {
        Planner {
            pending: HashSet::default(),
            groups: (0..shards).map(|_| Vec::new()).collect(),
            pending_ops: 0,
            next_idx: 0,
            next_mod: 0,
            scratch_a: Vec::new(),
            scratch_b: Vec::new(),
        }
    }

    /// Whether the observation's keys intersect the pending write set.
    fn conflicts(&self, ip: Option<Ipv4Addr>, mac: Option<MacAddr>, name: Option<&str>) -> bool {
        ip.is_some_and(|ip| self.pending.contains(&(ip.filter_hash() ^ TAG_IP)))
            || mac.is_some_and(|mac| self.pending.contains(&(mac.filter_hash() ^ TAG_MAC)))
            || name.is_some_and(|n| self.pending.contains(&(n.filter_hash() ^ TAG_NAME)))
    }

    fn note_obs_keys(&mut self, ip: Option<Ipv4Addr>, mac: Option<MacAddr>, name: Option<&str>) {
        if let Some(ip) = ip {
            self.pending.insert(ip.filter_hash() ^ TAG_IP);
        }
        if let Some(mac) = mac {
            self.pending.insert(mac.filter_hash() ^ TAG_MAC);
        }
        if let Some(name) = name {
            self.pending.insert(name.filter_hash() ^ TAG_NAME);
        }
    }

    fn push(&mut self, shard: usize, op: PlannedOp) {
        self.groups[shard].push(op);
        self.pending_ops += 1;
    }

    /// Reserves the next sequence blocks for one planned operation.
    fn reserve(&mut self) -> (u64, u64) {
        let bases = (self.next_idx, self.next_mod);
        self.next_idx += IDX_STRIDE;
        self.next_mod += MOD_STRIDE;
        bases
    }

    /// Mirrors `Journal::resolve_targets` against committed state, read
    /// directly through the held guards. `flt` is the journal-global
    /// shard-mask filter (maintained under the same meta lock this
    /// batch holds), so each key costs one probe plus a descent into
    /// only the shards that may hold it. Targets land in `out`.
    fn resolve(
        &mut self,
        guards: &ShardGuards<'_>,
        flt: &ShardMaskFilter,
        ip: Option<Ipv4Addr>,
        mac: Option<MacAddr>,
        name: Option<&str>,
        out: &mut Vec<InterfaceId>,
    ) {
        out.clear();
        if let Some(mac) = mac {
            merged_into(
                guards,
                flt.may_shards(mac.filter_hash() ^ TAG_MAC),
                |sh| sh.idx_mac.get(&mac),
                &mut self.scratch_a,
            );
            let with_mac = &self.scratch_a;
            if let Some(ip) = ip {
                if let Some(e) = with_mac
                    .iter()
                    .find(|e| rec_of(guards, e.1).ip_addr() == Some(ip))
                {
                    out.push(e.1);
                    return;
                }
                if let Some(e) = with_mac
                    .iter()
                    .find(|e| rec_of(guards, e.1).ip_addr().is_none())
                {
                    out.push(e.1);
                    return;
                }
                merged_into(
                    guards,
                    flt.may_shards(ip.filter_hash() ^ TAG_IP),
                    |sh| sh.idx_ip.get(&ip),
                    &mut self.scratch_b,
                );
                if let Some(e) = self
                    .scratch_b
                    .iter()
                    .find(|e| rec_of(guards, e.1).mac_addr().is_none())
                {
                    out.push(e.1);
                }
                return;
            }
            out.extend(with_mac.iter().map(|e| e.1));
            return;
        }
        if let Some(ip) = ip {
            merged_into(
                guards,
                flt.may_shards(ip.filter_hash() ^ TAG_IP),
                |sh| sh.idx_ip.get(&ip),
                &mut self.scratch_a,
            );
            if self.scratch_a.len() <= 1 {
                out.extend(self.scratch_a.iter().map(|e| e.1));
                return;
            }
            out.extend(self.scratch_a.iter().map(|e| e.1).max_by_key(|&id| {
                let r = rec_of(guards, id);
                (r.live_verified, r.verified, r.discovered)
            }));
            return;
        }
        if let Some(name) = name {
            let key = name.to_owned();
            merged_into(
                guards,
                flt.may_shards(name.filter_hash() ^ TAG_NAME),
                |sh| sh.idx_name.get(&key),
                &mut self.scratch_a,
            );
            out.extend(self.scratch_a.iter().map(|e| e.1));
        }
    }
}

impl Journal {
    /// Applies a batch with shard-grouped planning and commit; see the
    /// module docs. [`Journal::apply_batch`] delegates here.
    pub fn apply_batch_grouped<'a>(
        &self,
        items: impl IntoIterator<Item = (&'a Observation, JTime)>,
    ) -> StoreSummary {
        self.apply_batch_grouped_impl(items, None)
    }

    /// Test/bench knob: like [`Journal::apply_batch_grouped`] but with the
    /// commit strategy forced — `true` commits every generation on scoped
    /// worker threads regardless of size, `false` always commits inline.
    #[doc(hidden)]
    pub fn apply_batch_grouped_forced<'a>(
        &self,
        items: impl IntoIterator<Item = (&'a Observation, JTime)>,
        parallel: bool,
    ) -> StoreSummary {
        self.apply_batch_grouped_impl(items, Some(parallel))
    }

    fn apply_batch_grouped_impl<'a>(
        &self,
        items: impl IntoIterator<Item = (&'a Observation, JTime)>,
        force_parallel: Option<bool>,
    ) -> StoreSummary {
        let items: Vec<(&Observation, JTime)> = items.into_iter().collect();
        let mut meta = self.meta.write();
        let mut p = Planner::new(self.shard_count());
        let mut sum = StoreSummary::default();
        let mut held: Option<ShardGuards<'_>> = None;
        let mut targets: Vec<InterfaceId> = Vec::new();
        for &(obs, now) in &items {
            meta.observations_applied += 1;
            match &obs.fact {
                Fact::Interface {
                    ip,
                    mac,
                    name,
                    mask,
                } => {
                    self.plan_interface(
                        &mut meta,
                        &mut p,
                        &mut held,
                        &mut targets,
                        &mut sum,
                        force_parallel,
                        obs.source,
                        *ip,
                        *mac,
                        name.as_deref(),
                        *mask,
                        now,
                    );
                }
                Fact::Subnet {
                    subnet,
                    mask_assumed,
                } => {
                    // Meta-only: no shard state read or written, so it
                    // commutes with every pending interface op.
                    sum.absorb(self.apply_subnet(
                        &mut meta,
                        obs.source,
                        *subnet,
                        *mask_assumed,
                        now,
                    ));
                }
                Fact::SubnetStats {
                    subnet,
                    host_count,
                    lowest,
                    highest,
                } => {
                    sum.absorb(self.apply_subnet_stats(
                        &mut meta,
                        obs.source,
                        *subnet,
                        *host_count,
                        *lowest,
                        *highest,
                        now,
                    ));
                }
                Fact::Gateway {
                    interface_ips,
                    interface_names,
                    subnets,
                } => {
                    // Barrier: gateways resolve and touch records across
                    // shards through the per-item machinery, which takes
                    // its own shard locks — release ours first.
                    sum.absorb(self.flush_generation(&mut meta, &mut p, &mut held, force_parallel));
                    release(&mut held);
                    sum.absorb(self.apply_gateway(
                        &mut meta,
                        obs.source,
                        interface_ips,
                        interface_names,
                        subnets,
                        now,
                    ));
                }
                Fact::RipSource {
                    ip,
                    mac,
                    advertised_routes: _,
                    promiscuous,
                } => {
                    sum.absorb(self.flush_generation(&mut meta, &mut p, &mut held, force_parallel));
                    release(&mut held);
                    sum.absorb(self.apply_rip_source(
                        &mut meta,
                        obs.source,
                        *ip,
                        *mac,
                        *promiscuous,
                        now,
                    ));
                }
            }
        }
        sum.absorb(self.flush_generation(&mut meta, &mut p, &mut held, force_parallel));
        release(&mut held);
        self.counters.note_batch(items.len() as u64);
        sum
    }

    /// Takes every shard's write lock in ascending index order — the
    /// sanctioned same-label acquisition pattern — for the batch to hold
    /// until its last commit (or until a barrier fact needs the per-item
    /// machinery to lock shards itself).
    fn lock_all_shards(&self) -> ShardGuards<'_> {
        (0..self.shards.len())
            .map(|s| {
                self.shard_counters[s]
                    .write_locks
                    .fetch_add(1, Ordering::Relaxed);
                self.shards[s].write()
            })
            .collect()
    }

    /// Plans one interface observation: resolve targets through the held
    /// guards (flushing first on key conflict) and queue the resulting
    /// record ops on their shards. Acquires the shard guards on the
    /// batch's first interface observation.
    #[allow(clippy::too_many_arguments)]
    fn plan_interface<'j>(
        &'j self,
        meta: &mut Meta,
        p: &mut Planner,
        held: &mut Option<ShardGuards<'j>>,
        targets: &mut Vec<InterfaceId>,
        sum: &mut StoreSummary,
        force_parallel: Option<bool>,
        source: Source,
        ip: Option<Ipv4Addr>,
        mac: Option<MacAddr>,
        name: Option<&str>,
        mask: Option<fremont_net::SubnetMask>,
        now: JTime,
    ) {
        if ip.is_none() && mac.is_none() && name.is_none() {
            return; // Nothing identifying; drop (mirrors apply_interface).
        }
        if p.conflicts(ip, mac, name) {
            sum.absorb(self.flush_generation(meta, p, held, force_parallel));
        }
        if p.pending_ops == 0 {
            // Barriers and flushes advance the global sequences through
            // `meta`; re-sync before reserving the next blocks.
            p.next_idx = meta.idx_seq;
            p.next_mod = meta.mod_seq;
        }
        let guards = held.get_or_insert_with(|| self.lock_all_shards());
        p.resolve(guards, &meta.flt, ip, mac, name, targets);
        if targets.is_empty() {
            let id = InterfaceId(meta.next_iface);
            meta.next_iface += 1;
            let (idx_base, mod_base) = p.reserve();
            p.push(
                self.shard_of(id),
                PlannedOp {
                    id,
                    create: true,
                    source,
                    ip,
                    mac,
                    name: name.map(str::to_owned),
                    mask,
                    now,
                    idx_base,
                    mod_base,
                },
            );
        } else {
            for &id in targets.iter() {
                {
                    let r = rec_of(guards, id);
                    let (rip, rmac) = (r.ip_addr(), r.mac_addr());
                    let rname = r.dns_name().map(str::to_owned);
                    p.note_obs_keys(rip, rmac, rname.as_deref());
                }
                let (idx_base, mod_base) = p.reserve();
                p.push(
                    self.shard_of(id),
                    PlannedOp {
                        id,
                        create: false,
                        source,
                        ip,
                        mac,
                        name: name.map(str::to_owned),
                        mask,
                        now,
                        idx_base,
                        mod_base,
                    },
                );
            }
        }
        p.note_obs_keys(ip, mac, name);
    }

    /// Commits the pending generation through the held shard guards —
    /// no lock traffic — inline in ascending shard order, or
    /// concurrently on scoped worker threads (each handed a disjoint
    /// `&mut Shard` carved out of the guards) when groups are large
    /// enough to amortize the spawns.
    fn flush_generation(
        &self,
        meta: &mut Meta,
        p: &mut Planner,
        held: &mut Option<ShardGuards<'_>>,
        force_parallel: Option<bool>,
    ) -> StoreSummary {
        let mut sum = StoreSummary::default();
        if p.pending_ops == 0 {
            return sum;
        }
        // Ops are only ever planned with the guards held.
        let Some(guards) = held.as_mut() else {
            return sum;
        };
        // Consume every reserved block, used or not: only the relative
        // order of sequences is observable, never the values.
        meta.idx_seq = p.next_idx;
        meta.mod_seq = p.next_mod;
        let total = p.pending_ops;
        let groups: Vec<(usize, Vec<PlannedOp>)> = p
            .groups
            .iter_mut()
            .enumerate()
            .filter(|(_, ops)| !ops.is_empty())
            .map(|(s, ops)| (s, std::mem::take(ops)))
            .collect();
        p.pending_ops = 0;
        p.pending.clear();
        self.counters.note_groups(groups.len() as u64);
        let parallel = force_parallel.unwrap_or_else(|| {
            groups.len() >= 2 && total / groups.len() >= PARALLEL_MIN_OPS_PER_GROUP
        });
        // Workers cannot reach `meta`, so key-liveness transitions are
        // buffered as `FilterDelta`s and folded into the journal-global
        // shard-mask filter here, before the meta lock lets the next
        // resolution (this batch's or anyone's) consult it.
        let mut deltas: Vec<FilterDelta> = Vec::new();
        if parallel {
            // Workers get disjoint `&mut Shard` borrows out of the held
            // guards: no worker touches a lock, so the acquisition trace
            // is identical to the inline path and the sanitizer has
            // nothing new to see. `groups` ascends by shard index, so
            // one pass over the guards pairs each group with its shard.
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(groups.len());
                let mut pending = groups.iter();
                let mut next = pending.next();
                for (s, guard) in guards.iter_mut().enumerate() {
                    if let Some((gs, ops)) = next {
                        if *gs == s {
                            let sh: &mut Shard = guard;
                            handles.push(scope.spawn(move || commit_group(sh, s, ops)));
                            next = pending.next();
                        }
                    }
                }
                for h in handles {
                    match h.join() {
                        Ok((s, d)) => {
                            sum.absorb(s);
                            deltas.extend(d);
                        }
                        // Re-raise the worker's own panic payload rather
                        // than minting a new panic site here.
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
            });
        } else {
            for (s, ops) in &groups {
                let (gsum, d) = commit_group(&mut guards[*s], *s, ops);
                sum.absorb(gsum);
                deltas.extend(d);
            }
        }
        for d in &deltas {
            meta.flt.apply(d);
        }
        sum
    }
}

/// Applies one shard's planned ops through its held guard, drawing
/// sequences from each op's reserved blocks. Key-liveness transitions
/// come back as buffered deltas for the caller to fold into the
/// journal-global shard-mask filter (workers cannot reach `meta`).
fn commit_group(
    sh: &mut Shard,
    shard: usize,
    ops: &[PlannedOp],
) -> (StoreSummary, Vec<FilterDelta>) {
    let mut sum = StoreSummary::default();
    let mut deltas = Vec::new();
    for op in ops {
        let mut idx_cursor = op.idx_base;
        let mut mod_cursor = op.mod_base;
        if op.create {
            sh.records
                .insert(op.id.0, InterfaceRecord::new(op.id, op.now));
            sh.touch_modified(&mut mod_cursor, op.id, op.now);
        }
        let changed = Journal::update_record(
            sh,
            op.id,
            op.source,
            op.ip,
            op.mac,
            op.name.as_deref(),
            op.mask,
            op.now,
            &mut idx_cursor,
            &mut mod_cursor,
            shard,
            &mut deltas,
        );
        if op.create {
            sum.created += 1;
        } else if changed {
            sum.updated += 1;
        } else {
            sum.verified += 1;
        }
    }
    (sum, deltas)
}
