//! The Journal Server wire protocol.
//!
//! "The Journal Server responds to three primary requests: Store/Update,
//! Get, and Delete. These requests are supported through a common library
//! of access and data transfer routines that the Explorer Modules,
//! Discovery Manager, and data analysis and presentation programs use."
//!
//! Frames are length-prefixed JSON: a 4-byte big-endian length followed by
//! the serialized request or response. JSON keeps snapshots and traffic
//! inspectable; the framing keeps the stream message-oriented.

use std::io::{self, Read, Write};

use serde::{Deserialize, Serialize};

use fremont_telemetry::TraceEvent;

use crate::observation::Observation;
use crate::query::{InterfaceQuery, SubnetQuery};
use crate::records::{GatewayRecord, InterfaceId, InterfaceRecord, SubnetRecord};
use crate::store::{JournalStats, ShardingMetrics, StoreSummary};
use crate::time::JTime;

/// Maximum accepted frame size (16 MiB) — a full campus journal fits with
/// room to spare (Table 2 of the paper estimates under 4 MB).
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Cross-process causal context, carried with every request frame.
///
/// A traced caller (the discovery driver) stamps each RPC with its
/// trace id, the caller-side span the RPC belongs to, and the
/// caller's clock; the server opens its spans against that clock so a
/// stitched trace is deterministic even though the server has no sim
/// clock of its own. The all-zero context means "untraced" and costs
/// the server nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceContext {
    /// Distributed trace id (0 = untraced).
    pub trace_id: u64,
    /// Caller-side span id this request is causally under.
    pub parent_span: u64,
    /// Caller's clock, in microseconds of simulated/journal time.
    pub at_micros: u64,
}

impl TraceContext {
    /// The untraced context.
    pub const NONE: TraceContext = TraceContext {
        trace_id: 0,
        parent_span: 0,
        at_micros: 0,
    };

    /// Whether the caller asked for server-side spans.
    pub fn is_traced(&self) -> bool {
        self.trace_id != 0
    }
}

/// What actually travels in a request frame: the request plus its
/// causal context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Causal context ([`TraceContext::NONE`] when untraced).
    pub ctx: TraceContext,
    /// The request proper.
    pub req: Request,
}

/// A request to the Journal Server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Store/Update: apply observations at the given journal time.
    ///
    /// The server serializes and stamps updates; `now` is the exploration
    /// clock supplied by the driving deployment (simulation time here,
    /// wall-clock in a live system).
    Store {
        /// Exploration clock at submission.
        now: JTime,
        /// Observations to merge.
        observations: Vec<Observation>,
    },
    /// Get interface records matching a query.
    GetInterfaces(InterfaceQuery),
    /// Get all gateway records.
    GetGateways,
    /// Get subnet records matching a query.
    GetSubnets(SubnetQuery),
    /// Delete one interface record.
    Delete(InterfaceId),
    /// Fetch journal statistics.
    Stats,
    /// Ask the server to snapshot to its configured path.
    Flush,
    /// Store/Update for several timestamped observation batches in one
    /// framed round trip — the batched write path the explorers' pump
    /// drains into. The server applies the whole request as one group,
    /// so group-commit durability policies amortize to one fsync per
    /// frame instead of one per observation.
    StoreBatch {
        /// The batches, in submission order.
        batches: Vec<StoreBatchItem>,
    },
    /// Live introspection: a point-in-time self-description of the
    /// server (stats, shard activity, WAL state, metrics snapshot,
    /// trace tail, health verdict), served from existing stats paths
    /// with no extra locking.
    Introspect {
        /// How many of the most recent trace events to include.
        trace_tail: u64,
    },
}

/// One timestamped run of observations inside a [`Request::StoreBatch`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreBatchItem {
    /// Exploration clock for this run.
    pub now: JTime,
    /// Observations to merge at that time.
    pub observations: Vec<Observation>,
}

/// A response from the Journal Server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Result of a Store.
    Stored(StoreSummary),
    /// Result of GetInterfaces.
    Interfaces(Vec<InterfaceRecord>),
    /// Result of GetGateways.
    Gateways(Vec<GatewayRecord>),
    /// Result of GetSubnets.
    Subnets(Vec<SubnetRecord>),
    /// Result of Delete: whether the record existed.
    Deleted(bool),
    /// Result of Stats.
    Stats(JournalStats),
    /// Result of Flush.
    Flushed,
    /// Result of Introspect.
    Introspection(Box<IntrospectReport>),
    /// The server could not satisfy the request.
    Error(String),
}

/// Write-ahead-log segment state, for durable backends.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalStateReport {
    /// Sequence number of the first record in the current segment.
    pub segment_first_seq: u64,
    /// Next record sequence number to be assigned.
    pub next_seq: u64,
    /// Bytes written to the current segment so far.
    pub segment_bytes: u64,
    /// The writer's sync policy, rendered for humans.
    pub sync_policy: String,
}

/// The server's live self-description, answered to
/// [`Request::Introspect`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntrospectReport {
    /// Journal record counts.
    pub stats: JournalStats,
    /// Per-shard store activity, when the backend exposes it.
    pub shards: Option<ShardingMetrics>,
    /// WAL segment state, when the backend is durable.
    pub wal: Option<WalStateReport>,
    /// Prometheus-style metrics snapshot (empty when the server runs
    /// without telemetry).
    pub metrics: String,
    /// The most recent server trace events, oldest-first.
    pub trace_tail: Vec<TraceEvent>,
    /// Events evicted from the server's trace ring so far.
    pub trace_dropped: u64,
    /// Deterministic health verdict: `ok`, `degraded: ...`, or
    /// `unknown` (no telemetry attached).
    pub health: String,
}

/// Errors from the protocol layer.
#[derive(Debug)]
pub enum ProtoError {
    /// Socket-level failure.
    Io(io::Error),
    /// The peer sent a frame that does not decode.
    Malformed(String),
    /// The peer announced a frame larger than [`MAX_FRAME`].
    Oversized(u64),
    /// The server answered with [`Response::Error`].
    Server(String),
    /// The backend does not implement the requested capability. A unit
    /// variant so capability probes (snapshot capture, flush) cost no
    /// allocation on the common unsupported path.
    Unsupported,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "journal protocol i/o error: {e}"),
            ProtoError::Malformed(m) => write!(f, "malformed journal frame: {m}"),
            ProtoError::Oversized(len) => {
                write!(f, "journal frame of {len} bytes exceeds limit {MAX_FRAME}")
            }
            ProtoError::Server(m) => write!(f, "journal server error: {m}"),
            ProtoError::Unsupported => {
                write!(f, "operation not supported by this journal backend")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Writes one length-prefixed JSON frame.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, value: &T) -> Result<(), ProtoError> {
    let body = serde_json::to_vec(value).map_err(|e| ProtoError::Malformed(e.to_string()))?;
    if body.len() as u64 > u64::from(MAX_FRAME) {
        return Err(ProtoError::Oversized(body.len() as u64));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(&body)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed JSON frame. Returns `Ok(None)` on clean EOF
/// at a frame boundary.
pub fn read_frame<R: Read, T: for<'de> Deserialize<'de>>(
    r: &mut R,
) -> Result<Option<T>, ProtoError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(ProtoError::Oversized(u64::from(len)));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let value = serde_json::from_slice(&body).map_err(|e| ProtoError::Malformed(e.to_string()))?;
    Ok(Some(value))
}

/// Incremental variant of [`read_frame`] for nonblocking readers:
/// decodes one frame from the front of `buf` without performing any IO.
/// Returns `Ok(Some((value, consumed)))` when a complete frame is
/// present and `Ok(None)` when more bytes are needed. The oversized
/// check fires from the 4-byte header alone, before any body bytes
/// arrive, so a hostile length prefix never causes buffering.
pub fn decode_frame<T: for<'de> Deserialize<'de>>(
    buf: &[u8],
) -> Result<Option<(T, usize)>, ProtoError> {
    let Some(header) = buf.first_chunk::<4>() else {
        return Ok(None);
    };
    let len = u32::from_be_bytes(*header);
    if len > MAX_FRAME {
        return Err(ProtoError::Oversized(u64::from(len)));
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let value =
        serde_json::from_slice(&buf[4..total]).map_err(|e| ProtoError::Malformed(e.to_string()))?;
    Ok(Some((value, total)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Source;
    use std::io::Cursor;
    use std::net::Ipv4Addr;

    #[test]
    fn frame_roundtrip() {
        let req = Request::Store {
            now: JTime(42),
            observations: vec![Observation::ip_alive(
                Source::SeqPing,
                Ipv4Addr::new(10, 0, 0, 1),
            )],
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        let mut cur = Cursor::new(buf);
        let back: Request = read_frame(&mut cur).unwrap().unwrap();
        assert_eq!(back, req);
        // Clean EOF after the frame.
        let next: Option<Request> = read_frame(&mut cur).unwrap();
        assert!(next.is_none());
    }

    #[test]
    fn multiple_frames_in_sequence() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Stats).unwrap();
        write_frame(&mut buf, &Request::GetGateways).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(
            read_frame::<_, Request>(&mut cur).unwrap().unwrap(),
            Request::Stats
        );
        assert_eq!(
            read_frame::<_, Request>(&mut cur).unwrap().unwrap(),
            Request::GetGateways
        );
    }

    #[test]
    fn decode_frame_is_incremental() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Stats).unwrap();
        write_frame(&mut buf, &Request::GetGateways).unwrap();
        // Every strict prefix of one frame asks for more bytes.
        for cut in 0..8 {
            assert!(matches!(decode_frame::<Request>(&buf[..cut]), Ok(None)));
        }
        let (first, used) = decode_frame::<Request>(&buf).unwrap().unwrap();
        assert_eq!(first, Request::Stats);
        let (second, used2) = decode_frame::<Request>(&buf[used..]).unwrap().unwrap();
        assert_eq!(second, Request::GetGateways);
        assert_eq!(used + used2, buf.len());
        // Oversized headers are rejected without the body.
        let hostile = (MAX_FRAME + 1).to_be_bytes();
        assert!(matches!(
            decode_frame::<Request>(&hostile),
            Err(ProtoError::Oversized(_))
        ));
        // Complete frames with garbage bodies are malformed.
        let mut bad = 3u32.to_be_bytes().to_vec();
        bad.extend_from_slice(b"{{{");
        assert!(matches!(
            decode_frame::<Request>(&bad),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        let mut cur = Cursor::new(buf);
        assert!(matches!(
            read_frame::<_, Request>(&mut cur),
            Err(ProtoError::Oversized(_))
        ));
    }

    #[test]
    fn truncated_body_is_io_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_be_bytes());
        buf.extend_from_slice(b"short");
        let mut cur = Cursor::new(buf);
        assert!(matches!(
            read_frame::<_, Request>(&mut cur),
            Err(ProtoError::Io(_))
        ));
    }

    #[test]
    fn garbage_json_is_malformed() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_be_bytes());
        buf.extend_from_slice(b"{{{");
        let mut cur = Cursor::new(buf);
        assert!(matches!(
            read_frame::<_, Request>(&mut cur),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn store_batch_roundtrip() {
        let req = Request::StoreBatch {
            batches: vec![
                StoreBatchItem {
                    now: JTime(7),
                    observations: vec![Observation::ip_alive(
                        Source::SeqPing,
                        Ipv4Addr::new(10, 0, 0, 1),
                    )],
                },
                StoreBatchItem {
                    now: JTime(9),
                    observations: vec![],
                },
            ],
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        let back: Request = read_frame(&mut Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn envelope_roundtrip_preserves_context() {
        let env = RequestEnvelope {
            ctx: TraceContext {
                trace_id: 7,
                parent_span: 42,
                at_micros: 1_000_000,
            },
            req: Request::StoreBatch {
                batches: vec![StoreBatchItem {
                    now: JTime(1),
                    observations: vec![],
                }],
            },
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &env).unwrap();
        let back: RequestEnvelope = read_frame(&mut Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(back, env);
        assert!(back.ctx.is_traced());
        assert!(!TraceContext::NONE.is_traced());
    }

    #[test]
    fn introspection_roundtrip() {
        let report = IntrospectReport {
            stats: JournalStats {
                interfaces: 3,
                gateways: 1,
                subnets: 2,
                observations_applied: 40,
            },
            shards: None,
            wal: Some(WalStateReport {
                segment_first_seq: 10,
                next_seq: 17,
                segment_bytes: 512,
                sync_policy: "EveryAppend".into(),
            }),
            metrics: "fremont_journal_rpc_total 4\n".into(),
            trace_tail: vec![],
            trace_dropped: 0,
            health: "ok".into(),
        };
        let resp = Response::Introspection(Box::new(report));
        let mut buf = Vec::new();
        write_frame(&mut buf, &resp).unwrap();
        let back: Response = read_frame(&mut Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::Stored(StoreSummary {
            created: 1,
            updated: 2,
            verified: 3,
        });
        let mut buf = Vec::new();
        write_frame(&mut buf, &resp).unwrap();
        let back: Response = read_frame(&mut Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(back, resp);
    }
}
