//! Journal time: discovery timestamps.
//!
//! "All data items are stored with the date and time of initial discovery,
//! last change, and last verification." The Journal's clock is seconds of
//! simulation (or wall-clock seconds in a live deployment); the Journal
//! Server stamps data on store, so observations themselves carry no time.

use core::fmt;
use core::ops::{Add, Sub};
use serde::{Deserialize, Serialize};

/// A journal timestamp, in seconds since the start of exploration.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct JTime(pub u64);

impl JTime {
    /// The epoch (start of exploration).
    pub const ZERO: JTime = JTime(0);

    /// Builds from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        JTime(s)
    }

    /// Builds from minutes.
    pub const fn from_mins(m: u64) -> Self {
        JTime(m * 60)
    }

    /// Builds from hours.
    pub const fn from_hours(h: u64) -> Self {
        JTime(h * 3600)
    }

    /// Builds from days.
    pub const fn from_days(d: u64) -> Self {
        JTime(d * 86400)
    }

    /// Seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Saturating difference in seconds.
    pub fn secs_since(self, earlier: JTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for JTime {
    type Output = JTime;

    fn add(self, secs: u64) -> JTime {
        JTime(self.0 + secs)
    }
}

impl Sub<JTime> for JTime {
    type Output = u64;

    fn sub(self, other: JTime) -> u64 {
        self.0.saturating_sub(other.0)
    }
}

impl fmt::Display for JTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let days = self.0 / 86400;
        let rem = self.0 % 86400;
        let (h, m, s) = (rem / 3600, (rem % 3600) / 60, rem % 60);
        if days > 0 {
            write!(f, "day {days} {h:02}:{m:02}:{s:02}")
        } else {
            write!(f, "{h:02}:{m:02}:{s:02}")
        }
    }
}

/// A value together with the paper's three timestamps.
///
/// * `discovered` — when the value was first recorded;
/// * `changed` — when the value last changed;
/// * `verified` — when the value was last confirmed by any module.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timestamped<T> {
    value: T,
    /// Time of initial discovery.
    pub discovered: JTime,
    /// Time of last change.
    pub changed: JTime,
    /// Time of last verification.
    pub verified: JTime,
}

impl<T> Timestamped<T> {
    /// Records a newly discovered value.
    pub fn new(value: T, now: JTime) -> Self {
        Timestamped {
            value,
            discovered: now,
            changed: now,
            verified: now,
        }
    }

    /// The current value.
    pub fn get(&self) -> &T {
        &self.value
    }

    /// Marks the value as re-confirmed without change.
    pub fn verify(&mut self, now: JTime) {
        self.verified = now;
    }

    /// Seconds since the value was last verified.
    pub fn staleness(&self, now: JTime) -> u64 {
        now.secs_since(self.verified)
    }
}

impl<T: PartialEq> Timestamped<T> {
    /// Records a fresh observation of this datum.
    ///
    /// If `value` differs from the stored one, the value is replaced and
    /// `changed` advances; either way `verified` advances. Returns `true`
    /// when the value changed.
    pub fn observe(&mut self, value: T, now: JTime) -> bool {
        self.verified = now;
        if self.value != value {
            self.value = value;
            self.changed = now;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_arithmetic() {
        assert_eq!(JTime::from_mins(2).as_secs(), 120);
        assert_eq!(JTime::from_hours(1).as_secs(), 3600);
        assert_eq!(JTime::from_days(2).as_secs(), 172800);
        assert_eq!(JTime::from_secs(10) + 5, JTime(15));
        assert_eq!(JTime(100) - JTime(40), 60);
        assert_eq!(JTime(40) - JTime(100), 0, "difference saturates");
        assert_eq!(JTime(100).secs_since(JTime(30)), 70);
    }

    #[test]
    fn display_forms() {
        assert_eq!(JTime::from_secs(3661).to_string(), "01:01:01");
        assert_eq!(JTime::from_days(1).to_string(), "day 1 00:00:00");
        assert_eq!(
            JTime::from_secs(90061 + 86400).to_string(),
            "day 2 01:01:01"
        );
    }

    #[test]
    fn timestamped_observe_same_value_only_verifies() {
        let mut t = Timestamped::new(42, JTime(10));
        assert!(!t.observe(42, JTime(20)));
        assert_eq!(t.discovered, JTime(10));
        assert_eq!(t.changed, JTime(10));
        assert_eq!(t.verified, JTime(20));
    }

    #[test]
    fn timestamped_observe_new_value_changes() {
        let mut t = Timestamped::new(42, JTime(10));
        assert!(t.observe(43, JTime(30)));
        assert_eq!(*t.get(), 43);
        assert_eq!(t.discovered, JTime(10));
        assert_eq!(t.changed, JTime(30));
        assert_eq!(t.verified, JTime(30));
    }

    #[test]
    fn staleness() {
        let mut t = Timestamped::new("x", JTime(0));
        t.verify(JTime(100));
        assert_eq!(t.staleness(JTime(250)), 150);
    }

    #[test]
    fn serde_roundtrip() {
        let t = Timestamped::new(7u32, JTime(5));
        let json = serde_json::to_string(&t).unwrap();
        let back: Timestamped<u32> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
