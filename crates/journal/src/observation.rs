//! Observations: the vocabulary of discovered facts.
//!
//! Every Explorer Module reports what it learned as a stream of
//! [`Observation`]s, which the Journal Server merges into its records
//! (Table 3 of the paper lists each module's outputs). Observations carry
//! no timestamps — the Journal Server stamps them on store, exactly as the
//! paper describes.

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

use fremont_net::{MacAddr, Subnet, SubnetMask};

/// Which Explorer Module produced an observation.
///
/// The ordering matches Table 3 of the paper (sources ARP, ICMP, RIP, DNS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Source {
    /// Passive ARP monitoring (requires a tap).
    ArpWatch,
    /// Active UDP-echo probing + ARP cache readback.
    EtherHostProbe,
    /// Sequential ICMP echo sweep.
    SeqPing,
    /// Directed-broadcast ICMP echo.
    BrdcastPing,
    /// ICMP mask request sweep.
    SubnetMasks,
    /// TTL-stepped UDP probing.
    Traceroute,
    /// Passive RIP monitoring (requires a tap).
    RipWatch,
    /// DNS zone walking.
    Dns,
    /// The Discovery Manager or an analysis pass (synthetic entries).
    Manager,
}

impl Source {
    /// All eight Explorer Module sources, in Table 3 order.
    pub const EXPLORERS: [Source; 8] = [
        Source::ArpWatch,
        Source::EtherHostProbe,
        Source::SeqPing,
        Source::BrdcastPing,
        Source::SubnetMasks,
        Source::Traceroute,
        Source::RipWatch,
        Source::Dns,
    ];

    /// Short display name, as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Source::ArpWatch => "ARPwatch",
            Source::EtherHostProbe => "EtherHostProbe",
            Source::SeqPing => "SeqPing",
            Source::BrdcastPing => "BrdcastPing",
            Source::SubnetMasks => "SubnetMasks",
            Source::Traceroute => "Traceroute",
            Source::RipWatch => "RIPwatch",
            Source::Dns => "DNS",
            Source::Manager => "Manager",
        }
    }

    /// Relative data quality, used when merging conflicting facts.
    ///
    /// The paper: "data gathered using the ARP protocol are generally
    /// timely and correct, whereas DNS data are older and often subject to
    /// data entry errors."
    pub fn quality(self) -> u8 {
        match self {
            Source::ArpWatch | Source::EtherHostProbe => 4,
            Source::SeqPing | Source::BrdcastPing | Source::SubnetMasks | Source::Traceroute => 3,
            Source::RipWatch => 2,
            Source::Dns => 1,
            Source::Manager => 0,
        }
    }
}

/// A compact set of [`Source`]s (bit set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash, Serialize, Deserialize)]
pub struct SourceSet(u16);

impl SourceSet {
    /// The empty set.
    pub const EMPTY: SourceSet = SourceSet(0);

    /// Adds a source.
    pub fn insert(&mut self, s: Source) {
        self.0 |= 1 << s as u16;
    }

    /// Membership test.
    pub fn contains(&self, s: Source) -> bool {
        self.0 & (1 << s as u16) != 0
    }

    /// Number of distinct sources.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` when no source has reported.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates the member sources.
    pub fn iter(&self) -> impl Iterator<Item = Source> + '_ {
        const ALL: [Source; 9] = [
            Source::ArpWatch,
            Source::EtherHostProbe,
            Source::SeqPing,
            Source::BrdcastPing,
            Source::SubnetMasks,
            Source::Traceroute,
            Source::RipWatch,
            Source::Dns,
            Source::Manager,
        ];
        ALL.into_iter().filter(|s| self.contains(*s))
    }
}

/// One fact learned about the network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fact {
    /// An interface exists, with whatever attributes the module learned.
    ///
    /// At least one of `ip` / `mac` is present in any useful observation.
    Interface {
        /// Network-layer address, if learned.
        ip: Option<Ipv4Addr>,
        /// MAC-layer address, if learned.
        mac: Option<MacAddr>,
        /// DNS name, if learned.
        name: Option<String>,
        /// Subnet mask, if learned.
        mask: Option<SubnetMask>,
    },
    /// A subnet exists.
    Subnet {
        /// The subnet (mask may be assumed; see `mask_assumed`).
        subnet: Subnet,
        /// `true` when the mask was inferred (e.g. RIPv1 classification)
        /// rather than reported by the network.
        mask_assumed: bool,
    },
    /// Per-subnet statistics, as the DNS module records: "the number of
    /// hosts on each subnet and the highest and lowest addresses assigned".
    SubnetStats {
        /// The subnet.
        subnet: Subnet,
        /// Number of registered interfaces.
        host_count: u32,
        /// Lowest assigned address.
        lowest: Ipv4Addr,
        /// Highest assigned address.
        highest: Ipv4Addr,
    },
    /// A set of interfaces known to belong to one gateway, plus subnets it
    /// connects (possibly without knowing the interface address there).
    Gateway {
        /// Known interface addresses of the gateway.
        interface_ips: Vec<Ipv4Addr>,
        /// Known interface names of the gateway (DNS heuristics).
        interface_names: Vec<String>,
        /// Subnets the gateway is attached to.
        subnets: Vec<Subnet>,
    },
    /// A host was seen sourcing RIP advertisements.
    RipSource {
        /// The advertising interface's IP address.
        ip: Ipv4Addr,
        /// Its MAC, when the watcher saw the frame.
        mac: Option<MacAddr>,
        /// Number of routes in its advertisements.
        advertised_routes: u32,
        /// `true` when the source appears to promiscuously rebroadcast
        /// routes learned elsewhere.
        promiscuous: bool,
    },
}

/// An observation: a fact plus the module that produced it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Observation {
    /// Producing module.
    pub source: Source,
    /// The discovered fact.
    pub fact: Fact,
}

impl Observation {
    /// Convenience constructor.
    pub fn new(source: Source, fact: Fact) -> Self {
        Observation { source, fact }
    }

    /// Shorthand for an interface observation with an IP address only
    /// (what a ping sweep learns).
    pub fn ip_alive(source: Source, ip: Ipv4Addr) -> Self {
        Observation::new(
            source,
            Fact::Interface {
                ip: Some(ip),
                mac: None,
                name: None,
                mask: None,
            },
        )
    }

    /// Shorthand for an ARP-style (IP, MAC) pair observation.
    pub fn arp_pair(source: Source, ip: Ipv4Addr, mac: MacAddr) -> Self {
        Observation::new(
            source,
            Fact::Interface {
                ip: Some(ip),
                mac: Some(mac),
                name: None,
                mask: None,
            },
        )
    }

    /// Shorthand for a mask observation for a known interface.
    pub fn mask(source: Source, ip: Ipv4Addr, mask: SubnetMask) -> Self {
        Observation::new(
            source,
            Fact::Interface {
                ip: Some(ip),
                mac: None,
                name: None,
                mask: Some(mask),
            },
        )
    }

    /// Shorthand for a name+address observation (what DNS learns).
    pub fn named_ip(source: Source, ip: Ipv4Addr, name: &str) -> Self {
        Observation::new(
            source,
            Fact::Interface {
                ip: Some(ip),
                mac: None,
                name: Some(name.to_owned()),
                mask: None,
            },
        )
    }

    /// Shorthand for a subnet-exists observation.
    pub fn subnet(source: Source, subnet: Subnet, mask_assumed: bool) -> Self {
        Observation::new(
            source,
            Fact::Subnet {
                subnet,
                mask_assumed,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_names_match_paper_tables() {
        assert_eq!(Source::ArpWatch.name(), "ARPwatch");
        assert_eq!(Source::RipWatch.name(), "RIPwatch");
        assert_eq!(Source::Dns.name(), "DNS");
        assert_eq!(Source::EXPLORERS.len(), 8);
    }

    #[test]
    fn quality_ordering() {
        assert!(Source::ArpWatch.quality() > Source::Dns.quality());
        assert!(Source::SeqPing.quality() > Source::RipWatch.quality());
    }

    #[test]
    fn source_set_ops() {
        let mut s = SourceSet::EMPTY;
        assert!(s.is_empty());
        s.insert(Source::Dns);
        s.insert(Source::SeqPing);
        s.insert(Source::Dns);
        assert_eq!(s.len(), 2);
        assert!(s.contains(Source::Dns));
        assert!(!s.contains(Source::ArpWatch));
        let members: Vec<_> = s.iter().collect();
        assert_eq!(members, vec![Source::SeqPing, Source::Dns]);
    }

    #[test]
    fn observation_shorthands() {
        let o = Observation::ip_alive(Source::SeqPing, Ipv4Addr::new(10, 0, 0, 1));
        match o.fact {
            Fact::Interface {
                ip,
                mac,
                name,
                mask,
            } => {
                assert_eq!(ip, Some(Ipv4Addr::new(10, 0, 0, 1)));
                assert!(mac.is_none() && name.is_none() && mask.is_none());
            }
            other => panic!("wrong fact {other:?}"),
        }
    }

    #[test]
    fn observation_serde_roundtrip() {
        let o = Observation::arp_pair(
            Source::ArpWatch,
            Ipv4Addr::new(128, 138, 243, 18),
            "08:00:20:01:02:03".parse().unwrap(),
        );
        let json = serde_json::to_string(&o).unwrap();
        let back: Observation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, o);
    }

    #[test]
    fn gateway_fact_serde() {
        let o = Observation::new(
            Source::Traceroute,
            Fact::Gateway {
                interface_ips: vec![Ipv4Addr::new(128, 138, 238, 1)],
                interface_names: vec!["cs-gw".to_owned()],
                subnets: vec!["128.138.238.0/24".parse().unwrap()],
            },
        );
        let json = serde_json::to_string(&o).unwrap();
        assert_eq!(serde_json::from_str::<Observation>(&json).unwrap(), o);
    }
}
