//! TCP client for the Journal Server.

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Mutex;

use crate::observation::Observation;
use crate::proto::{read_frame, write_frame, ProtoError, Request, Response};
use crate::query::{InterfaceQuery, SubnetQuery};
use crate::records::{GatewayRecord, InterfaceId, InterfaceRecord, SubnetRecord};
use crate::server::JournalAccess;
use crate::store::{JournalStats, StoreSummary};
use crate::time::JTime;

/// A connection to a remote Journal Server.
///
/// The connection is internally synchronized so one client handle can be
/// shared by several module threads, matching the paper's "common library
/// of access and data transfer routines".
pub struct RemoteJournal {
    io: Mutex<(BufReader<TcpStream>, TcpStream)>,
}

impl RemoteJournal {
    /// Connects to a Journal Server.
    pub fn connect(addr: &str) -> Result<Self, ProtoError> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(RemoteJournal {
            io: Mutex::new((BufReader::new(stream), writer)),
        })
    }

    fn call(&self, req: &Request) -> Result<Response, ProtoError> {
        // fremont-lint: allow(lock-order) -- the connection mutex exists to serialize request/response pairs; holding it across the socket IO is the point
        let mut guard = self.io.lock().expect("journal client poisoned");
        let (reader, writer) = &mut *guard;
        write_frame(writer, req)?;
        match read_frame::<_, Response>(reader)? {
            Some(Response::Error(msg)) => Err(ProtoError::Server(msg)),
            Some(resp) => Ok(resp),
            None => Err(ProtoError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed connection",
            ))),
        }
    }

    /// Asks the server to write its snapshot.
    pub fn flush(&self) -> Result<(), ProtoError> {
        match self.call(&Request::Flush)? {
            Response::Flushed => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(resp: Response) -> ProtoError {
    ProtoError::Malformed(format!("unexpected response variant: {resp:?}"))
}

impl JournalAccess for RemoteJournal {
    fn store(&self, now: JTime, observations: &[Observation]) -> Result<StoreSummary, ProtoError> {
        match self.call(&Request::Store {
            now,
            observations: observations.to_vec(),
        })? {
            Response::Stored(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    fn interfaces(&self, q: &InterfaceQuery) -> Result<Vec<InterfaceRecord>, ProtoError> {
        match self.call(&Request::GetInterfaces(q.clone()))? {
            Response::Interfaces(v) => Ok(v),
            other => Err(unexpected(other)),
        }
    }

    fn gateways(&self) -> Result<Vec<GatewayRecord>, ProtoError> {
        match self.call(&Request::GetGateways)? {
            Response::Gateways(v) => Ok(v),
            other => Err(unexpected(other)),
        }
    }

    fn subnets(&self, q: &SubnetQuery) -> Result<Vec<SubnetRecord>, ProtoError> {
        match self.call(&Request::GetSubnets(q.clone()))? {
            Response::Subnets(v) => Ok(v),
            other => Err(unexpected(other)),
        }
    }

    fn delete(&self, id: InterfaceId) -> Result<bool, ProtoError> {
        match self.call(&Request::Delete(id))? {
            Response::Deleted(b) => Ok(b),
            other => Err(unexpected(other)),
        }
    }

    fn stats(&self) -> Result<JournalStats, ProtoError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    fn flush(&self) -> Result<bool, ProtoError> {
        // Forward to the server's own persistence.
        RemoteJournal::flush(self)?;
        Ok(true)
    }
}
