//! TCP client for the Journal Server.

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Mutex;

use crate::observation::Observation;
use crate::proto::{read_frame, write_frame, ProtoError, Request, Response, StoreBatchItem};
use crate::query::{InterfaceQuery, SubnetQuery};
use crate::records::{GatewayRecord, InterfaceId, InterfaceRecord, SubnetRecord};
use crate::server::JournalAccess;
use crate::store::{JournalStats, StoreSummary};
use crate::time::JTime;

/// A connection to a remote Journal Server.
///
/// The connection is internally synchronized so one client handle can be
/// shared by several module threads, matching the paper's "common library
/// of access and data transfer routines". Idempotent query RPCs survive
/// one dropped connection: the client reconnects to the original address
/// and retries once. Mutating RPCs (Store, StoreBatch, Delete, Flush) are
/// never retried — a lost response leaves it unknown whether the server
/// applied them.
pub struct RemoteJournal {
    addr: String,
    io: Mutex<(BufReader<TcpStream>, TcpStream)>,
}

impl RemoteJournal {
    /// Connects to a Journal Server.
    pub fn connect(addr: &str) -> Result<Self, ProtoError> {
        let (reader, writer) = open(addr)?;
        Ok(RemoteJournal {
            addr: addr.to_owned(),
            io: Mutex::new((reader, writer)),
        })
    }

    /// One request/response round trip on the current connection.
    fn call_once(&self, req: &Request) -> Result<Response, ProtoError> {
        // fremont-lint: allow(lock-order) -- the connection mutex exists to serialize request/response pairs; holding it across the socket IO is the point
        let mut guard = self.io.lock().expect("journal client poisoned");
        let (reader, writer) = &mut *guard;
        write_frame(writer, req)?;
        match read_frame::<_, Response>(reader)? {
            Some(Response::Error(msg)) => Err(ProtoError::Server(msg)),
            Some(resp) => Ok(resp),
            None => Err(ProtoError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed connection",
            ))),
        }
    }

    /// Round trip for a mutating request: no retry.
    fn call(&self, req: &Request) -> Result<Response, ProtoError> {
        self.call_once(req)
    }

    /// Round trip for an idempotent query: on a connection-level failure,
    /// reconnect to the original address and retry exactly once.
    fn call_idempotent(&self, req: &Request) -> Result<Response, ProtoError> {
        match self.call_once(req) {
            Err(ProtoError::Io(_)) => {
                self.reconnect()?;
                self.call_once(req)
            }
            other => other,
        }
    }

    /// Replaces the connection with a fresh one to the original address.
    fn reconnect(&self) -> Result<(), ProtoError> {
        let fresh = open(&self.addr)?;
        let mut guard = self.io.lock().expect("journal client poisoned");
        *guard = fresh;
        Ok(())
    }

    /// Asks the server to write its snapshot.
    pub fn flush(&self) -> Result<(), ProtoError> {
        match self.call(&Request::Flush)? {
            Response::Flushed => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn open(addr: &str) -> Result<(BufReader<TcpStream>, TcpStream), ProtoError> {
    let stream = TcpStream::connect(addr)?;
    let writer = stream.try_clone()?;
    Ok((BufReader::new(stream), writer))
}

fn unexpected(resp: Response) -> ProtoError {
    ProtoError::Malformed(format!("unexpected response variant: {resp:?}"))
}

impl JournalAccess for RemoteJournal {
    fn store(&self, now: JTime, observations: &[Observation]) -> Result<StoreSummary, ProtoError> {
        match self.call(&Request::Store {
            now,
            observations: observations.to_vec(),
        })? {
            Response::Stored(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    fn store_batch(&self, batches: &[StoreBatchItem]) -> Result<StoreSummary, ProtoError> {
        // The whole pump's worth of observations travels as one frame.
        match self.call(&Request::StoreBatch {
            batches: batches.to_vec(),
        })? {
            Response::Stored(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    fn interfaces(&self, q: &InterfaceQuery) -> Result<Vec<InterfaceRecord>, ProtoError> {
        match self.call_idempotent(&Request::GetInterfaces(q.clone()))? {
            Response::Interfaces(v) => Ok(v),
            other => Err(unexpected(other)),
        }
    }

    fn gateways(&self) -> Result<Vec<GatewayRecord>, ProtoError> {
        match self.call_idempotent(&Request::GetGateways)? {
            Response::Gateways(v) => Ok(v),
            other => Err(unexpected(other)),
        }
    }

    fn subnets(&self, q: &SubnetQuery) -> Result<Vec<SubnetRecord>, ProtoError> {
        match self.call_idempotent(&Request::GetSubnets(q.clone()))? {
            Response::Subnets(v) => Ok(v),
            other => Err(unexpected(other)),
        }
    }

    fn delete(&self, id: InterfaceId) -> Result<bool, ProtoError> {
        match self.call(&Request::Delete(id))? {
            Response::Deleted(b) => Ok(b),
            other => Err(unexpected(other)),
        }
    }

    fn stats(&self) -> Result<JournalStats, ProtoError> {
        match self.call_idempotent(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    fn flush(&self) -> Result<bool, ProtoError> {
        // Forward to the server's own persistence.
        RemoteJournal::flush(self)?;
        Ok(true)
    }
}
