//! TCP client for the Journal Server.

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Mutex;

use fremont_telemetry::{SpanId, TelTime, Telemetry};

use crate::observation::Observation;
use crate::proto::{
    read_frame, write_frame, IntrospectReport, ProtoError, Request, RequestEnvelope, Response,
    StoreBatchItem, TraceContext,
};
use crate::query::{InterfaceQuery, SubnetQuery};
use crate::records::{GatewayRecord, InterfaceId, InterfaceRecord, SubnetRecord};
use crate::server::JournalAccess;
use crate::store::{JournalStats, StoreSummary};
use crate::time::JTime;

/// A connection to a remote Journal Server.
///
/// The connection is internally synchronized so one client handle can be
/// shared by several module threads, matching the paper's "common library
/// of access and data transfer routines". Idempotent query RPCs survive
/// one dropped connection: the client reconnects to the original address
/// and retries once. Mutating RPCs (Store, StoreBatch, Delete, Flush) are
/// never retried — a lost response leaves it unknown whether the server
/// applied them.
///
/// A client opened with [`RemoteJournal::connect_traced`] participates in
/// end-to-end causal tracing: each batched store opens a local
/// `client.store_batch` span and propagates `(trace_id, span, clock)` in
/// the request frame, so the server's spans can be stitched under it.
pub struct RemoteJournal {
    addr: String,
    io: Mutex<(BufReader<TcpStream>, TcpStream)>,
    telemetry: Telemetry,
    trace_id: u64,
}

impl RemoteJournal {
    /// Connects to a Journal Server (untraced).
    pub fn connect(addr: &str) -> Result<Self, ProtoError> {
        Self::connect_traced(addr, Telemetry::noop(), 0)
    }

    /// Connects to a Journal Server with a telemetry sink and a
    /// distributed trace id (0 disables propagation).
    pub fn connect_traced(
        addr: &str,
        telemetry: Telemetry,
        trace_id: u64,
    ) -> Result<Self, ProtoError> {
        let (reader, writer) = open(addr)?;
        Ok(RemoteJournal {
            addr: addr.to_owned(),
            io: Mutex::new((reader, writer)),
            telemetry,
            trace_id,
        })
    }

    /// Runs a closure over the locked connection pair; every
    /// request/response exchange serializes through here.
    fn with_io<R>(&self, f: impl FnOnce(&mut BufReader<TcpStream>, &mut TcpStream) -> R) -> R {
        let mut guard = self.io.lock().expect("journal client poisoned");
        let (reader, writer) = &mut *guard;
        f(reader, writer)
    }

    /// One request/response round trip on the current connection.
    fn call_once(&self, env: &RequestEnvelope) -> Result<Response, ProtoError> {
        self.with_io(|reader, writer| {
            write_frame(writer, env)?;
            match read_frame::<_, Response>(reader)? {
                Some(Response::Error(msg)) => Err(ProtoError::Server(msg)),
                Some(resp) => Ok(resp),
                None => Err(ProtoError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed connection",
                ))),
            }
        })
    }

    /// Round trip for a mutating request: no retry, no tracing.
    fn call(&self, req: Request) -> Result<Response, ProtoError> {
        self.call_ctx(req, TraceContext::NONE)
    }

    /// Round trip for a mutating request with an explicit context.
    fn call_ctx(&self, req: Request, ctx: TraceContext) -> Result<Response, ProtoError> {
        self.call_once(&RequestEnvelope { ctx, req })
    }

    /// Round trip for an idempotent query: on a connection-level failure,
    /// reconnect to the original address and retry exactly once.
    fn call_idempotent(&self, req: Request) -> Result<Response, ProtoError> {
        let env = RequestEnvelope {
            ctx: TraceContext::NONE,
            req,
        };
        match self.call_once(&env) {
            Err(ProtoError::Io(_)) => {
                self.reconnect()?;
                self.call_once(&env)
            }
            other => other,
        }
    }

    /// Replaces the connection with a fresh one to the original address.
    fn reconnect(&self) -> Result<(), ProtoError> {
        let fresh = open(&self.addr)?;
        let mut guard = self.io.lock().expect("journal client poisoned");
        *guard = fresh;
        Ok(())
    }

    /// Pipelines several requests over the connection: every frame is
    /// written back-to-back before any reply is read, then the replies
    /// are collected in request order (the server answers frames in
    /// arrival order, so one round trip covers the whole slice).
    ///
    /// Like the mutating single-request path, pipelined requests are
    /// never retried — a connection failure leaves it unknown which of
    /// them the server applied. `Response::Error` is surfaced in place
    /// rather than short-circuiting, so callers can attribute per-slot
    /// failures.
    pub fn pipeline(&self, reqs: &[Request]) -> Result<Vec<Response>, ProtoError> {
        self.with_io(|reader, writer| {
            for req in reqs {
                let env = RequestEnvelope {
                    ctx: TraceContext::NONE,
                    req: req.clone(),
                };
                write_frame(writer, &env)?;
            }
            let mut replies = Vec::with_capacity(reqs.len());
            for _ in reqs {
                match read_frame::<_, Response>(reader)? {
                    Some(resp) => replies.push(resp),
                    None => {
                        return Err(ProtoError::Io(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "server closed connection mid-pipeline",
                        )))
                    }
                }
            }
            Ok(replies)
        })
    }

    /// Asks the server to write its snapshot.
    pub fn flush(&self) -> Result<(), ProtoError> {
        match self.call(Request::Flush)? {
            Response::Flushed => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the server's live self-description, including up to
    /// `trace_tail` recent server-side trace events.
    pub fn introspect(&self, trace_tail: u64) -> Result<IntrospectReport, ProtoError> {
        match self.call_idempotent(Request::Introspect { trace_tail })? {
            Response::Introspection(report) => Ok(*report),
            other => Err(unexpected(other)),
        }
    }
}

fn open(addr: &str) -> Result<(BufReader<TcpStream>, TcpStream), ProtoError> {
    let stream = TcpStream::connect(addr)?;
    let writer = stream.try_clone()?;
    Ok((BufReader::new(stream), writer))
}

fn unexpected(resp: Response) -> ProtoError {
    ProtoError::Malformed(format!("unexpected response variant: {resp:?}"))
}

impl JournalAccess for RemoteJournal {
    fn store(&self, now: JTime, observations: &[Observation]) -> Result<StoreSummary, ProtoError> {
        match self.call(Request::Store {
            now,
            observations: observations.to_vec(),
        })? {
            Response::Stored(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    fn store_batch(&self, batches: &[StoreBatchItem]) -> Result<StoreSummary, ProtoError> {
        // The whole pump's worth of observations travels as one frame.
        match self.call(Request::StoreBatch {
            batches: batches.to_vec(),
        })? {
            Response::Stored(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    fn store_batch_traced(
        &self,
        batches: &[StoreBatchItem],
        parent: SpanId,
        at: TelTime,
    ) -> Result<StoreSummary, ProtoError> {
        if self.trace_id == 0 || !self.telemetry.enabled() {
            return self.store_batch(batches);
        }
        // The client-side RPC span: marked with our own trace id and
        // remote_parent 0 — that is what tells the stitcher this
        // process owns the trace. Its id rides in the frame so the
        // server's `server.rpc` span can point back at it.
        let span = self.telemetry.span_start_remote(
            "client.store_batch",
            "",
            parent,
            self.trace_id,
            0,
            at,
        );
        let total: u64 = batches.iter().map(|b| b.observations.len() as u64).sum();
        self.telemetry.work(span, "observations", total, at);
        let ctx = TraceContext {
            trace_id: self.trace_id,
            parent_span: span.0,
            at_micros: at.0,
        };
        let res = self.call_ctx(
            Request::StoreBatch {
                batches: batches.to_vec(),
            },
            ctx,
        );
        match res {
            Ok(Response::Stored(s)) => {
                self.telemetry.span_end(
                    span,
                    &format!(
                        "created={} updated={} verified={}",
                        s.created, s.updated, s.verified
                    ),
                    at,
                );
                Ok(s)
            }
            Ok(other) => {
                self.telemetry.span_end(span, "error", at);
                Err(unexpected(other))
            }
            Err(e) => {
                self.telemetry.span_end(span, "error", at);
                Err(e)
            }
        }
    }

    fn interfaces(&self, q: &InterfaceQuery) -> Result<Vec<InterfaceRecord>, ProtoError> {
        match self.call_idempotent(Request::GetInterfaces(q.clone()))? {
            Response::Interfaces(v) => Ok(v),
            other => Err(unexpected(other)),
        }
    }

    fn gateways(&self) -> Result<Vec<GatewayRecord>, ProtoError> {
        match self.call_idempotent(Request::GetGateways)? {
            Response::Gateways(v) => Ok(v),
            other => Err(unexpected(other)),
        }
    }

    fn subnets(&self, q: &SubnetQuery) -> Result<Vec<SubnetRecord>, ProtoError> {
        match self.call_idempotent(Request::GetSubnets(q.clone()))? {
            Response::Subnets(v) => Ok(v),
            other => Err(unexpected(other)),
        }
    }

    fn delete(&self, id: InterfaceId) -> Result<bool, ProtoError> {
        match self.call(Request::Delete(id))? {
            Response::Deleted(b) => Ok(b),
            other => Err(unexpected(other)),
        }
    }

    fn stats(&self) -> Result<JournalStats, ProtoError> {
        match self.call_idempotent(Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    fn flush(&self) -> Result<bool, ProtoError> {
        // Forward to the server's own persistence.
        RemoteJournal::flush(self)?;
        Ok(true)
    }
}
