//! Journal snapshots: periodic and at-termination disk persistence.
//!
//! "The Journal Server maintains an in-memory representation of the
//! Journal data, which it writes to disk periodically and at termination."
//! A snapshot is the flat record set; indexes are rebuilt on load.

use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::records::{GatewayRecord, InterfaceRecord, SubnetRecord};
use crate::store::Journal;

/// A serializable image of the Journal's records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalSnapshot {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// All live interface records.
    pub interfaces: Vec<InterfaceRecord>,
    /// All live gateway records.
    pub gateways: Vec<GatewayRecord>,
    /// All subnet records.
    pub subnets: Vec<SubnetRecord>,
    /// Observation counter, preserved across restarts.
    pub observations_applied: u64,
}

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

impl JournalSnapshot {
    /// Captures a snapshot of a journal.
    pub fn capture(journal: &Journal) -> Self {
        journal.to_snapshot()
    }

    /// Restores a journal (rebuilding all indexes).
    pub fn restore(&self) -> Journal {
        let j = Journal::from_snapshot(self);
        debug_assert!(
            j.check_invariants().is_ok(),
            "snapshot restored to an inconsistent journal"
        );
        j
    }

    /// A stable FNV-1a fingerprint of the snapshot's canonical JSON
    /// encoding. [`Journal::to_snapshot`] is canonical — records are
    /// emitted in id order regardless of shard layout — so two journals
    /// holding the same facts fingerprint identically even when built
    /// with different shard counts (property-tested in the store). The
    /// model checker uses this to recognize fault interleavings that
    /// leave the Journal in the same state.
    pub fn fingerprint(&self) -> u64 {
        match serde_json::to_vec(self) {
            Ok(body) => fremont_net::fnv1a_64(&body),
            // Plain-data snapshots always serialize; keep a stable
            // sentinel rather than a panic path if that ever changes.
            Err(_) => fremont_net::fnv1a_64(b"fremont-journal:unserializable"),
        }
    }

    /// Writes the snapshot as JSON, atomically and durably: the temp
    /// file is fsync'd before the rename, and the parent directory is
    /// fsync'd after it, so a crash at any point leaves either the old
    /// or the new snapshot — never a torn one.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        let body = serde_json::to_vec_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        {
            let mut f = fs::File::create(&tmp)?;
            io::Write::write_all(&mut f, &body)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        // Persist the rename itself (the directory entry).
        if let Some(parent) = path.parent() {
            let dir = if parent.as_os_str().is_empty() {
                Path::new(".")
            } else {
                parent
            };
            fs::File::open(dir)?.sync_all()?;
        }
        Ok(())
    }

    /// Loads a snapshot from JSON. Rejects snapshots written by a newer
    /// format version rather than misinterpreting them.
    pub fn load(path: &Path) -> io::Result<Self> {
        let body = fs::read(path)?;
        let snap: JournalSnapshot = serde_json::from_slice(&body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if snap.version > SNAPSHOT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "snapshot {} has format version {} but this build only understands \
                     versions up to {}; refusing to load",
                    path.display(),
                    snap.version,
                    SNAPSHOT_VERSION
                ),
            ));
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::{Fact, Observation, Source};
    use crate::query::{InterfaceQuery, SubnetQuery};
    use crate::time::JTime;
    use std::net::Ipv4Addr;

    fn populated() -> Journal {
        let mut j = Journal::new();
        j.apply(
            &Observation::arp_pair(
                Source::ArpWatch,
                Ipv4Addr::new(10, 0, 0, 1),
                "08:00:20:00:00:01".parse().unwrap(),
            ),
            JTime(1),
        );
        j.apply(
            &Observation::new(
                Source::Traceroute,
                Fact::Gateway {
                    interface_ips: vec![Ipv4Addr::new(10, 0, 0, 254)],
                    interface_names: vec![],
                    subnets: vec![
                        "10.0.0.0/24".parse().unwrap(),
                        "10.0.1.0/24".parse().unwrap(),
                    ],
                },
            ),
            JTime(2),
        );
        j
    }

    #[test]
    fn snapshot_roundtrip_preserves_queries() {
        let j = populated();
        let snap = JournalSnapshot::capture(&j);
        assert_eq!(snap.version, SNAPSHOT_VERSION);
        let j2 = snap.restore();
        j2.check_invariants().unwrap();
        assert_eq!(j2.stats().interfaces, j.stats().interfaces);
        assert_eq!(j2.stats().gateways, 1);
        assert_eq!(j2.stats().subnets, 2);
        assert_eq!(
            j2.get_interfaces(&InterfaceQuery::by_ip(Ipv4Addr::new(10, 0, 0, 1)))
                .len(),
            1
        );
        assert_eq!(j2.get_subnets(&SubnetQuery::all()).len(), 2);
        // Applying to the restored journal keeps working (ids intact).
        let mut j3 = snap.restore();
        j3.apply(
            &Observation::ip_alive(Source::SeqPing, Ipv4Addr::new(10, 0, 0, 1)),
            JTime(5),
        );
        assert_eq!(j3.stats().interfaces, j.stats().interfaces);
        j3.check_invariants().unwrap();
    }

    #[test]
    fn snapshot_file_roundtrip() {
        let j = populated();
        let snap = JournalSnapshot::capture(&j);
        let dir = std::env::temp_dir().join("fremont-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.json");
        snap.save(&path).unwrap();
        let loaded = JournalSnapshot::load(&path).unwrap();
        assert_eq!(loaded, snap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_newer_version() {
        let j = populated();
        let mut snap = JournalSnapshot::capture(&j);
        snap.version = SNAPSHOT_VERSION + 1;
        let dir = std::env::temp_dir().join("fremont-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("future.json");
        snap.save(&path).unwrap();
        let err = JournalSnapshot::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(
            msg.contains("format version") && msg.contains("refusing to load"),
            "unhelpful error message: {msg}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("fremont-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, b"not json at all").unwrap();
        assert!(JournalSnapshot::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
