//! Journal records: interfaces, gateways, and subnets.
//!
//! "The Journal data are grouped into records representing interfaces,
//! gateways, and subnets" — Table 1 of the paper gives the interface
//! fields (MAC layer address, network layer address, DNS name, subnet
//! mask, owning gateway); gateways are "collections of interfaces" plus
//! the subnets they connect; subnet records list attached gateways.

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

use fremont_net::{MacAddr, Subnet, SubnetMask};

use crate::observation::SourceSet;
use crate::time::{JTime, Timestamped};

/// Identifier of an interface record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InterfaceId(pub u64);

/// Identifier of a gateway record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GatewayId(pub u64);

/// One network interface, as recorded in the Journal (paper Table 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterfaceRecord {
    /// Record identifier.
    pub id: InterfaceId,
    /// MAC layer address, when discovered.
    pub mac: Option<Timestamped<MacAddr>>,
    /// Network layer (IP) address, when discovered.
    pub ip: Option<Timestamped<Ipv4Addr>>,
    /// DNS name, when discovered.
    pub name: Option<Timestamped<String>>,
    /// Subnet mask, when discovered.
    pub mask: Option<Timestamped<SubnetMask>>,
    /// Gateway to which this interface belongs, when known.
    pub gateway: Option<GatewayId>,
    /// `true` when the interface has been seen sourcing RIP packets.
    pub rip_source: bool,
    /// `true` when the RIP source appears promiscuous.
    pub rip_promiscuous: bool,
    /// Every module that has reported on this interface.
    pub sources: SourceSet,
    /// Record-level: time of initial discovery.
    pub discovered: JTime,
    /// Record-level: time of last change to any field.
    pub changed: JTime,
    /// Record-level: time of last verification by any module.
    ///
    /// Verification by the DNS module alone does not prove the interface
    /// still exists on the wire; presentation programs therefore also use
    /// [`InterfaceRecord::last_live_verification`].
    pub verified: JTime,
    /// Time of last verification by a module other than DNS (the paper's
    /// viewer shows "time since last verification of existence (ignoring
    /// time of last DNS verification)").
    pub live_verified: Option<JTime>,
}

impl InterfaceRecord {
    /// Creates an empty record discovered at `now`.
    pub fn new(id: InterfaceId, now: JTime) -> Self {
        InterfaceRecord {
            id,
            mac: None,
            ip: None,
            name: None,
            mask: None,
            gateway: None,
            rip_source: false,
            rip_promiscuous: false,
            sources: SourceSet::EMPTY,
            discovered: now,
            changed: now,
            verified: now,
            live_verified: None,
        }
    }

    /// Current IP address, if any.
    pub fn ip_addr(&self) -> Option<Ipv4Addr> {
        self.ip.as_ref().map(|t| *t.get())
    }

    /// Current MAC address, if any.
    pub fn mac_addr(&self) -> Option<MacAddr> {
        self.mac.as_ref().map(|t| *t.get())
    }

    /// Current DNS name, if any.
    pub fn dns_name(&self) -> Option<&str> {
        self.name.as_ref().map(|t| t.get().as_str())
    }

    /// Current subnet mask, if any.
    pub fn subnet_mask(&self) -> Option<SubnetMask> {
        self.mask.as_ref().map(|t| *t.get())
    }

    /// The subnet this interface sits on, when both IP and mask are known.
    pub fn subnet(&self) -> Option<Subnet> {
        Some(Subnet::containing(self.ip_addr()?, self.subnet_mask()?))
    }

    /// Seconds since the interface was last verified *on the wire* (by a
    /// non-DNS module); `None` when it has only ever appeared in the DNS.
    pub fn last_live_verification(&self) -> Option<JTime> {
        self.live_verified
    }

    /// Returns `true` when the interface belongs to a known gateway.
    pub fn is_gateway_member(&self) -> bool {
        self.gateway.is_some()
    }
}

/// A gateway: a collection of interfaces plus attached subnets.
///
/// "The Traceroute Explorer Module is able, in some cases, to determine the
/// subnet to which a gateway is attached without being able to determine
/// the address of the interface on that subnet" — hence `subnets` is
/// recorded independently of the interface list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatewayRecord {
    /// Record identifier.
    pub id: GatewayId,
    /// Interfaces known to belong to this gateway.
    pub interfaces: Vec<InterfaceId>,
    /// Subnets this gateway connects (union of interface subnets and
    /// link-only knowledge).
    pub subnets: Vec<Subnet>,
    /// Every module that has contributed to this gateway.
    pub sources: SourceSet,
    /// Time of initial discovery.
    pub discovered: JTime,
    /// Time of last change.
    pub changed: JTime,
    /// Time of last verification.
    pub verified: JTime,
}

impl GatewayRecord {
    /// Creates an empty gateway record.
    pub fn new(id: GatewayId, now: JTime) -> Self {
        GatewayRecord {
            id,
            interfaces: Vec::new(),
            subnets: Vec::new(),
            sources: SourceSet::EMPTY,
            discovered: now,
            changed: now,
            verified: now,
        }
    }

    /// Adds a subnet if not already present; returns `true` when added.
    pub fn add_subnet(&mut self, s: Subnet) -> bool {
        if self.subnets.contains(&s) {
            false
        } else {
            self.subnets.push(s);
            true
        }
    }

    /// Adds an interface if not already present; returns `true` when added.
    pub fn add_interface(&mut self, i: InterfaceId) -> bool {
        if self.interfaces.contains(&i) {
            false
        } else {
            self.interfaces.push(i);
            true
        }
    }
}

/// A subnet record.
///
/// "For each discovered subnet, we record a list of gateways attached to
/// that subnet. Note that there are cases where we may have discovered a
/// subnet, but do not yet know what gateways are connected to that subnet."
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubnetRecord {
    /// The subnet itself.
    pub subnet: Subnet,
    /// `true` while the mask is merely assumed (e.g. classified from RIPv1)
    /// rather than confirmed by a mask reply.
    pub mask_assumed: bool,
    /// Gateways known to attach to this subnet (possibly empty).
    pub gateways: Vec<GatewayId>,
    /// Registered host count (from the DNS module), when known.
    pub host_count: Option<Timestamped<u32>>,
    /// Lowest assigned address (from the DNS module), when known.
    pub lowest: Option<Ipv4Addr>,
    /// Highest assigned address (from the DNS module), when known.
    pub highest: Option<Ipv4Addr>,
    /// Every module that has reported this subnet.
    pub sources: SourceSet,
    /// Time of initial discovery.
    pub discovered: JTime,
    /// Time of last change.
    pub changed: JTime,
    /// Time of last verification.
    pub verified: JTime,
}

impl SubnetRecord {
    /// Creates a bare subnet record.
    pub fn new(subnet: Subnet, mask_assumed: bool, now: JTime) -> Self {
        SubnetRecord {
            subnet,
            mask_assumed,
            gateways: Vec::new(),
            host_count: None,
            lowest: None,
            highest: None,
            sources: SourceSet::EMPTY,
            discovered: now,
            changed: now,
            verified: now,
        }
    }

    /// Adds a gateway if not already present; returns `true` when added.
    pub fn add_gateway(&mut self, g: GatewayId) -> bool {
        if self.gateways.contains(&g) {
            false
        } else {
            self.gateways.push(g);
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Source;

    fn subnet(s: &str) -> Subnet {
        s.parse().unwrap()
    }

    #[test]
    fn interface_accessors() {
        let mut r = InterfaceRecord::new(InterfaceId(1), JTime(5));
        assert_eq!(r.ip_addr(), None);
        assert_eq!(r.subnet(), None);
        r.ip = Some(Timestamped::new(Ipv4Addr::new(128, 138, 243, 18), JTime(5)));
        assert_eq!(r.subnet(), None, "mask still unknown");
        r.mask = Some(Timestamped::new(
            SubnetMask::from_prefix_len(24).unwrap(),
            JTime(6),
        ));
        assert_eq!(r.subnet(), Some(subnet("128.138.243.0/24")));
        assert!(!r.is_gateway_member());
        r.gateway = Some(GatewayId(3));
        assert!(r.is_gateway_member());
    }

    #[test]
    fn gateway_dedup() {
        let mut g = GatewayRecord::new(GatewayId(1), JTime(0));
        assert!(g.add_subnet(subnet("10.1.0.0/16")));
        assert!(!g.add_subnet(subnet("10.1.0.0/16")));
        assert!(g.add_interface(InterfaceId(7)));
        assert!(!g.add_interface(InterfaceId(7)));
        assert_eq!(g.subnets.len(), 1);
        assert_eq!(g.interfaces.len(), 1);
    }

    #[test]
    fn subnet_record_gateways() {
        let mut s = SubnetRecord::new(subnet("128.138.238.0/24"), false, JTime(0));
        assert!(
            s.gateways.is_empty(),
            "subnet may be known without gateways"
        );
        assert!(s.add_gateway(GatewayId(1)));
        assert!(!s.add_gateway(GatewayId(1)));
    }

    #[test]
    fn records_serde_roundtrip() {
        let mut r = InterfaceRecord::new(InterfaceId(9), JTime(1));
        r.mac = Some(Timestamped::new(
            "08:00:20:01:02:03".parse().unwrap(),
            JTime(1),
        ));
        r.name = Some(Timestamped::new(
            "bruno.cs.colorado.edu".to_owned(),
            JTime(2),
        ));
        let mut set = SourceSet::EMPTY;
        set.insert(Source::ArpWatch);
        r.sources = set;
        let json = serde_json::to_string(&r).unwrap();
        let back: InterfaceRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
