//! The Journal Server and the common access library.
//!
//! "This Journal is managed by the Journal Server, which serializes
//! updates, time-stamps and records the data, and answers queries from
//! programs that wish to interrogate the Journal." Because all Fremont
//! modules "communicate via BSD sockets, there are no restrictions about
//! the physical location of individual modules" — so the same
//! [`JournalAccess`] trait is implemented both by an in-process handle and
//! by a TCP client ([`crate::client::RemoteJournal`]).
//!
//! # Connection event loop
//!
//! Connections are served by a small fixed pool of event-loop workers
//! (at most [`MAX_EVENTLOOP_WORKERS`]), not by a thread per connection:
//! an accepted socket is switched to nonblocking mode and handed to one
//! worker round-robin, which folds it into its readiness loop. Each
//! connection is a pair of byte buffers and a tiny state machine:
//!
//! * **write pump** — drain buffered reply bytes until the socket would
//!   block; a connection whose unsent backlog crosses
//!   [`WRITE_HIGH_WATER`] stops being *read* until the backlog drains
//!   (counted once per episode in
//!   `fremont_journal_eventloop_backpressure_total`);
//! * **read pump** — pull available bytes into the request buffer;
//! * **frame serve** — decode every complete length-prefixed frame
//!   ([`crate::proto::decode_frame`]), run it through the normal request
//!   handler, and append the reply frame to the write buffer. Several
//!   requests buffered on one socket are answered in arrival order, so
//!   clients may pipeline.
//!
//! A thousand idle clients therefore cost a thousand file descriptors
//! and two buffers each — not a thousand stacks. Error accounting is
//! unchanged from the threaded server: oversized frames are rejected
//! from the 4-byte header alone, truncation at mid-frame EOF is an io
//! error, and every failed connection increments its `ProtoError`-kind
//! counter, `fremont_journal_rpc_aborted_total`, and
//! `fremont_journal_connection_errors_total` exactly once.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use fremont_telemetry::{bounds, SpanId, TelTime, Telemetry};

use crate::observation::Observation;
use crate::proto::{
    decode_frame, write_frame, IntrospectReport, ProtoError, Request, RequestEnvelope, Response,
    StoreBatchItem, WalStateReport,
};
use crate::query::{InterfaceQuery, SubnetQuery};
use crate::records::{GatewayRecord, InterfaceId, InterfaceRecord, SubnetRecord};
use crate::snapshot::JournalSnapshot;
use crate::store::{Journal, JournalStats, ShardingMetrics, StoreSummary};
use crate::time::JTime;

/// Upper bound on event-loop worker threads; the pool never exceeds the
/// machine's available parallelism.
pub const MAX_EVENTLOOP_WORKERS: usize = 4;

/// Unsent reply bytes above which a connection stops being read until
/// its backlog drains — the slow-reader backpressure threshold.
pub const WRITE_HIGH_WATER: usize = 4 * 1024 * 1024;

/// Socket read chunk size for the read pump.
const READ_CHUNK: usize = 64 * 1024;

/// Unified access to a Journal, local or remote.
pub trait JournalAccess {
    /// Store/Update: merge observations, stamped at `now`.
    fn store(&self, now: JTime, observations: &[Observation]) -> Result<StoreSummary, ProtoError>;
    /// Get interface records matching the query.
    fn interfaces(&self, q: &InterfaceQuery) -> Result<Vec<InterfaceRecord>, ProtoError>;
    /// Get all gateway records.
    fn gateways(&self) -> Result<Vec<GatewayRecord>, ProtoError>;
    /// Get subnet records matching the query.
    fn subnets(&self, q: &SubnetQuery) -> Result<Vec<SubnetRecord>, ProtoError>;
    /// Delete an interface record; `true` when it existed.
    fn delete(&self, id: InterfaceId) -> Result<bool, ProtoError>;
    /// Journal statistics.
    fn stats(&self) -> Result<JournalStats, ProtoError>;

    /// Store/Update for several timestamped batches as one group. The
    /// default applies batch by batch; backends with a batched write path
    /// (one lock acquisition, one WAL group commit, one RPC frame)
    /// override it.
    fn store_batch(&self, batches: &[StoreBatchItem]) -> Result<StoreSummary, ProtoError> {
        let mut sum = StoreSummary::default();
        for b in batches {
            sum.absorb(self.store(b.now, &b.observations)?);
        }
        Ok(sum)
    }

    /// Captures a full snapshot image of the journal, for backends with
    /// direct access to one (used by Flush handling and shutdown).
    fn capture_snapshot(&self) -> Result<JournalSnapshot, ProtoError> {
        Err(ProtoError::Unsupported)
    }

    /// Asks the backend to persist itself durably. `Ok(false)` means
    /// the backend has no self-managed durability and the caller may
    /// fall back to [`JournalAccess::capture_snapshot`] + save.
    fn flush(&self) -> Result<bool, ProtoError> {
        Ok(false)
    }

    /// Per-shard activity metrics, for backends wrapping the sharded
    /// in-process store. `None` for remote or opaque backends.
    fn sharding_metrics(&self) -> Option<ShardingMetrics> {
        None
    }

    /// Shard commit groups flushed by the grouped batch path, for
    /// backends wrapping the in-process store; `None` for remote or
    /// opaque backends. Carried outside [`ShardingMetrics`] because
    /// that struct is a frozen wire type (wal-schema golden).
    fn batch_groups_total(&self) -> Option<u64> {
        None
    }

    /// Like [`JournalAccess::store_batch`], causally attributed:
    /// `parent`/`at` locate the write under an open span of the
    /// backend's telemetry sink. The default ignores the attribution;
    /// backends with span-aware write paths (the WAL-backed store,
    /// the TCP client) override it to emit child spans.
    fn store_batch_traced(
        &self,
        batches: &[StoreBatchItem],
        parent: SpanId,
        at: TelTime,
    ) -> Result<StoreSummary, ProtoError> {
        let _ = (parent, at);
        self.store_batch(batches)
    }

    /// Write-ahead-log segment state, for durable backends.
    fn wal_state(&self) -> Option<WalStateReport> {
        None
    }
}

/// A shared in-process Journal handle.
///
/// This is the deployment used inside the simulator: the Journal lives in
/// the driving process and every module shares it through this handle.
/// The store shards internally, so this is just an [`Arc`]: queries run
/// concurrently against the shard locks while writers serialize on the
/// store's meta lock.
#[derive(Clone, Default)]
pub struct SharedJournal {
    inner: Arc<Journal>,
}

impl SharedJournal {
    /// Creates an empty shared journal.
    pub fn new() -> Self {
        SharedJournal {
            inner: Arc::new(Journal::new()),
        }
    }

    /// Wraps an existing journal.
    pub fn from_journal(j: Journal) -> Self {
        SharedJournal { inner: Arc::new(j) }
    }

    /// Runs a closure with shared read access to the underlying journal.
    pub fn read<R>(&self, f: impl FnOnce(&Journal) -> R) -> R {
        f(&self.inner)
    }

    /// Runs a closure against the underlying journal for mutation through
    /// its shared-reference write path (`apply_shared`, `apply_batch`,
    /// `delete_interface_shared`); mutations serialize on the store's
    /// internal meta lock.
    pub fn write<R>(&self, f: impl FnOnce(&Journal) -> R) -> R {
        f(&self.inner)
    }
}

impl JournalAccess for SharedJournal {
    fn store(&self, now: JTime, observations: &[Observation]) -> Result<StoreSummary, ProtoError> {
        Ok(self
            .inner
            .apply_batch(observations.iter().map(|o| (o, now))))
    }

    fn store_batch(&self, batches: &[StoreBatchItem]) -> Result<StoreSummary, ProtoError> {
        Ok(self.inner.apply_batch(
            batches
                .iter()
                .flat_map(|b| b.observations.iter().map(move |o| (o, b.now))),
        ))
    }

    fn interfaces(&self, q: &InterfaceQuery) -> Result<Vec<InterfaceRecord>, ProtoError> {
        Ok(self.inner.get_interfaces(q))
    }

    fn gateways(&self) -> Result<Vec<GatewayRecord>, ProtoError> {
        Ok(self.inner.get_gateways())
    }

    fn subnets(&self, q: &SubnetQuery) -> Result<Vec<SubnetRecord>, ProtoError> {
        Ok(self.inner.get_subnets(q))
    }

    fn delete(&self, id: InterfaceId) -> Result<bool, ProtoError> {
        Ok(self.inner.delete_interface_shared(id))
    }

    fn stats(&self) -> Result<JournalStats, ProtoError> {
        Ok(self.inner.stats())
    }

    fn capture_snapshot(&self) -> Result<JournalSnapshot, ProtoError> {
        Ok(self.read(JournalSnapshot::capture))
    }

    fn sharding_metrics(&self) -> Option<ShardingMetrics> {
        Some(self.inner.sharding_metrics())
    }

    fn batch_groups_total(&self) -> Option<u64> {
        Some(self.inner.batch_groups_total())
    }
}

/// The TCP Journal Server.
///
/// Serves the [`crate::proto`] protocol over any [`JournalAccess`]
/// backend (defaulting to the in-memory [`SharedJournal`];
/// `fremont-storage`'s `DurableJournal` plugs in the same way), using a
/// fixed pool of event-loop workers so concurrent connections cost file
/// descriptors rather than threads (see the module docs). The journal
/// "maintains an in-memory representation ... which it writes to disk
/// periodically and at termination": backends that persist themselves
/// are flushed on `Flush` requests and at shutdown; for the rest a
/// snapshot path can be configured, written at those same points.
pub struct JournalServer<J: JournalAccess + Clone + Send + Sync + 'static = SharedJournal> {
    journal: J,
    addr: SocketAddr,
    snapshot_path: Option<PathBuf>,
    /// Stops the accept loop.
    stop: Arc<AtomicBool>,
    /// Stops the event-loop workers; raised only after the accept
    /// thread is joined, so worker inboxes are complete when workers
    /// drain them one last time.
    workers_stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    telemetry: Telemetry,
}

impl<J: JournalAccess + Clone + Send + Sync + 'static> JournalServer<J> {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// serving in background threads.
    pub fn start(journal: J, addr: &str, snapshot_path: Option<PathBuf>) -> std::io::Result<Self> {
        Self::start_with_telemetry(journal, addr, snapshot_path, Telemetry::noop())
    }

    /// Like [`JournalServer::start`], with a telemetry handle: per-RPC
    /// request counts, framed byte totals, error counters by kind, and
    /// store-merge work histograms flow into the sink, and shutdown
    /// publishes final [`JournalStats`] gauges.
    pub fn start_with_telemetry(
        journal: J,
        addr: &str,
        snapshot_path: Option<PathBuf>,
        telemetry: Telemetry,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let workers_stop = Arc::new(AtomicBool::new(false));
        let pool = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_EVENTLOOP_WORKERS);
        telemetry.gauge_set("fremont_journal_eventloop_workers", "", pool as u64);
        let mut inboxes = Vec::with_capacity(pool);
        let mut workers = Vec::with_capacity(pool);
        for _ in 0..pool {
            let (tx, rx) = mpsc::channel::<TcpStream>();
            inboxes.push(tx);
            let j = journal.clone();
            let snap = snapshot_path.clone();
            let tel = telemetry.clone();
            let ws = workers_stop.clone();
            workers.push(std::thread::spawn(move || {
                run_worker(rx, j, snap, tel, ws);
            }));
        }
        let s = stop.clone();
        let tel = telemetry.clone();
        let accept_thread = std::thread::spawn(move || {
            // Poll for stop between accepts.
            listener
                .set_nonblocking(true)
                .expect("nonblocking accept loop");
            let mut next = 0usize;
            while !s.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        tel.counter_add("fremont_journal_connections_total", "", 1);
                        if stream.set_nonblocking(true).is_err() {
                            tel.counter_add("fremont_journal_connection_errors_total", "", 1);
                            continue;
                        }
                        if inboxes[next].send(stream).is_err() {
                            break;
                        }
                        next = (next + 1) % inboxes.len();
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(JournalServer {
            journal,
            addr: local,
            snapshot_path,
            stop,
            workers_stop,
            accept_thread: Some(accept_thread),
            workers,
            telemetry,
        })
    }

    /// The bound address (for clients).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop, severs live connections, and writes a
    /// final snapshot if configured.
    ///
    /// Severing is synchronous: when this returns, every connection the
    /// server ever accepted is closed, so a client holding one sees EOF
    /// on its next read — exactly as it would across a real server
    /// restart. Each connection parked at shutdown counts once into
    /// `fremont_journal_eventloop_severed_total`.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // The accept loop is joined, so worker inboxes are complete;
        // stopping the workers now severs every remaining connection
        // before the joins below return.
        self.workers_stop.store(true, Ordering::Relaxed);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Termination persistence: self-managed backends flush
        // themselves; otherwise write the configured snapshot path.
        match self.journal.flush() {
            Ok(true) => {}
            _ => {
                if let Some(path) = &self.snapshot_path {
                    if let Ok(snap) = self.journal.capture_snapshot() {
                        if snap.save(path).is_err() {
                            self.telemetry.counter_add(
                                "fremont_journal_snapshot_errors_total",
                                "",
                                1,
                            );
                        }
                    }
                }
            }
        }
        // Final journal size gauges for the metrics dump.
        if self.telemetry.enabled() {
            if let Ok(stats) = self.journal.stats() {
                publish_journal_stats(&self.telemetry, &stats);
            }
            if let Some(m) = self.journal.sharding_metrics() {
                publish_sharding_metrics(&self.telemetry, &m);
            }
            if let Some(g) = self.journal.batch_groups_total() {
                self.telemetry
                    .counter_set("fremont_journal_shard_batch_groups_total", "", g);
            }
        }
    }
}

impl<J: JournalAccess + Clone + Send + Sync + 'static> Drop for JournalServer<J> {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// One event-loop worker: drains its inbox of freshly accepted sockets,
/// then gives every connection a readiness pass; sleeps briefly only
/// when a full sweep made no progress. On stop it severs whatever is
/// left parked.
fn run_worker<J: JournalAccess>(
    rx: mpsc::Receiver<TcpStream>,
    journal: J,
    snapshot_path: Option<PathBuf>,
    telemetry: Telemetry,
    stop: Arc<AtomicBool>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let mut progress = false;
        while let Ok(stream) = rx.try_recv() {
            conns.push(Conn::new(stream));
            progress = true;
        }
        let mut i = 0;
        while i < conns.len() {
            match conns[i].tick(&journal, snapshot_path.as_deref(), &telemetry) {
                Tick::Idle => i += 1,
                Tick::Progress => {
                    progress = true;
                    i += 1;
                }
                Tick::Closed(result) => {
                    progress = true;
                    let conn = conns.swap_remove(i);
                    conn.finish(result, &telemetry);
                }
            }
        }
        if !progress {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    // Shutdown: the accept thread was joined before `stop` was raised,
    // so the inbox cannot grow any more — sever everything left.
    while let Ok(stream) = rx.try_recv() {
        conns.push(Conn::new(stream));
    }
    for conn in conns {
        telemetry.counter_add("fremont_journal_eventloop_severed_total", "", 1);
        conn.sever();
    }
}

/// Outcome of one readiness pass over a connection.
enum Tick {
    /// Nothing to do; the socket was quiet.
    Idle,
    /// Bytes moved or frames were served.
    Progress,
    /// The connection is finished — cleanly (`Ok`) or with the error
    /// that killed it.
    Closed(Result<(), ProtoError>),
}

/// Per-connection state machine: a nonblocking socket plus request and
/// reply byte buffers.
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet decoded into frames.
    read_buf: Vec<u8>,
    /// Reply bytes not yet accepted by the socket; `write_pos` marks the
    /// sent prefix.
    write_buf: Vec<u8>,
    write_pos: usize,
    read_total: u64,
    write_total: u64,
    published_r: u64,
    published_w: u64,
    /// Reads are suspended while the unsent backlog exceeds
    /// [`WRITE_HIGH_WATER`].
    paused: bool,
    /// The peer has closed its write side.
    eof: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            read_total: 0,
            write_total: 0,
            published_r: 0,
            published_w: 0,
            paused: false,
            eof: false,
        }
    }

    fn pending_write(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// One readiness pass; byte counters are published per pass so the
    /// totals stay fresh while the connection lives.
    fn tick<J: JournalAccess>(
        &mut self,
        journal: &J,
        snapshot_path: Option<&Path>,
        telemetry: &Telemetry,
    ) -> Tick {
        let before = (self.read_total, self.write_total);
        let res = self.pump(journal, snapshot_path, telemetry);
        self.publish_bytes(telemetry);
        match res {
            Err(e) => Tick::Closed(Err(e)),
            Ok(true) => Tick::Closed(Ok(())),
            Ok(false) if (self.read_total, self.write_total) != before => Tick::Progress,
            Ok(false) => Tick::Idle,
        }
    }

    /// Write pump, read pump, then serve every complete frame.
    /// `Ok(true)` means the peer closed cleanly at a frame boundary and
    /// every buffered reply byte is on the wire.
    fn pump<J: JournalAccess>(
        &mut self,
        journal: &J,
        snapshot_path: Option<&Path>,
        telemetry: &Telemetry,
    ) -> Result<bool, ProtoError> {
        self.pump_write()?;
        self.update_pressure(telemetry);
        if !self.paused && !self.eof {
            self.pump_read()?;
        }
        self.serve_frames(journal, snapshot_path, telemetry)?;
        self.pump_write()?;
        self.update_pressure(telemetry);
        if self.eof {
            if !self.read_buf.is_empty() {
                // The peer promised more frame bytes than it delivered —
                // the same truncation `read_frame` reports as Io.
                return Err(ProtoError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                )));
            }
            if self.pending_write() == 0 {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Drains buffered reply bytes until the socket would block.
    fn pump_write(&mut self) -> Result<(), ProtoError> {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => {
                    return Err(ProtoError::Io(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted no reply bytes",
                    )))
                }
                Ok(n) => {
                    self.write_pos += n;
                    self.write_total += n as u64;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        if self.write_pos > 0 && self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        }
        Ok(())
    }

    /// Pulls available bytes until the socket would block, the peer
    /// closes, or the buffer already holds a maximum-size frame (the
    /// frames are served before the next pass reads more).
    fn pump_read(&mut self) -> Result<(), ProtoError> {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(());
                }
                Ok(n) => {
                    self.read_total += n as u64;
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    if self.read_buf.len() > crate::proto::MAX_FRAME as usize + 4 {
                        return Ok(());
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Counts the transition into (and out of) slow-reader backpressure;
    /// each blocked episode increments the counter exactly once.
    fn update_pressure(&mut self, telemetry: &Telemetry) {
        if !self.paused && self.pending_write() > WRITE_HIGH_WATER {
            self.paused = true;
            telemetry.counter_add("fremont_journal_eventloop_backpressure_total", "", 1);
        } else if self.paused && self.pending_write() == 0 {
            self.paused = false;
        }
    }

    /// Decodes and serves every complete frame in the request buffer,
    /// appending reply frames to the write buffer in arrival order.
    fn serve_frames<J: JournalAccess>(
        &mut self,
        journal: &J,
        snapshot_path: Option<&Path>,
        telemetry: &Telemetry,
    ) -> Result<(), ProtoError> {
        let mut off = 0;
        let mut result = Ok(());
        loop {
            match decode_frame::<RequestEnvelope>(&self.read_buf[off..]) {
                Ok(Some((envelope, consumed))) => {
                    off += consumed;
                    if let Err(e) = respond(
                        journal,
                        snapshot_path,
                        telemetry,
                        envelope,
                        consumed as u64,
                        &mut self.write_buf,
                    ) {
                        result = Err(e);
                        break;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        self.read_buf.drain(..off);
        result
    }

    /// Publishes byte-total deltas accumulated since the last pass.
    fn publish_bytes(&mut self, telemetry: &Telemetry) {
        if self.read_total > self.published_r {
            telemetry.counter_add(
                "fremont_journal_bytes_read_total",
                "",
                self.read_total - self.published_r,
            );
            self.published_r = self.read_total;
        }
        if self.write_total > self.published_w {
            telemetry.counter_add(
                "fremont_journal_bytes_written_total",
                "",
                self.write_total - self.published_w,
            );
            self.published_w = self.write_total;
        }
    }

    /// Final accounting for a finished connection. A connection that
    /// dies inside a request/response exchange is an aborted RPC: the
    /// caller cannot know the outcome.
    fn finish(mut self, result: Result<(), ProtoError>, telemetry: &Telemetry) {
        self.publish_bytes(telemetry);
        if let Err(e) = &result {
            telemetry.counter_add("fremont_journal_rpc_errors_total", error_kind_label(e), 1);
            telemetry.counter_add("fremont_journal_rpc_aborted_total", "", 1);
            telemetry.counter_add("fremont_journal_connection_errors_total", "", 1);
        }
        // Dropping `self.stream` closes the socket.
    }

    /// Severs a connection parked at shutdown so the client observes
    /// the stop as a closed connection.
    fn sever(self) {
        // fremont-lint: allow(ignored-io) -- TcpStream::shutdown severs a socket, nothing flushes
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// Serves one decoded request: telemetry spans stamped with the caller's
/// clock, the request handler, and the reply frame appended to `out`.
fn respond<J: JournalAccess>(
    journal: &J,
    snapshot_path: Option<&Path>,
    telemetry: &Telemetry,
    envelope: RequestEnvelope,
    frame_bytes: u64,
    out: &mut Vec<u8>,
) -> Result<(), ProtoError> {
    let RequestEnvelope { ctx, req } = envelope;
    telemetry.counter_add("fremont_journal_rpc_total", rpc_label(&req), 1);
    // A traced frame gets a server-side span tree, stamped with the
    // *caller's* clock — the server has no sim clock, and using the
    // caller's keeps stitched traces deterministic. Untraced frames
    // (queries, probes) leave the server trace untouched.
    let at = TelTime(ctx.at_micros);
    let rpc_span = if ctx.is_traced() {
        telemetry.span_start_remote(
            "server.rpc",
            rpc_label(&req),
            SpanId::NONE,
            ctx.trace_id,
            ctx.parent_span,
            at,
        )
    } else {
        SpanId::NONE
    };
    if rpc_span.is_real() {
        let decode = telemetry.span_start("server.decode", "", rpc_span, at);
        telemetry.work(decode, "bytes", frame_bytes, at);
        telemetry.span_end(decode, &format!("bytes={frame_bytes}"), at);
    }
    let resp = handle_request(journal, snapshot_path, telemetry, req, rpc_span, at);
    if matches!(resp, Response::Error(_)) {
        telemetry.counter_add("fremont_journal_rpc_errors_total", "kind=\"server\"", 1);
    }
    let mark = out.len();
    let wres = write_frame(out, &resp);
    if rpc_span.is_real() {
        let reply = telemetry.span_start("server.reply", "", rpc_span, at);
        telemetry.work(reply, "bytes", (out.len() - mark) as u64, at);
        let verdict = if wres.is_ok() { "ok" } else { "aborted" };
        telemetry.span_end(reply, verdict, at);
        telemetry.span_end(rpc_span, verdict, at);
    }
    wres
}

/// Publishes [`JournalStats`] as gauges (shared with the driver's
/// startup dump).
pub fn publish_journal_stats(telemetry: &Telemetry, stats: &JournalStats) {
    telemetry.gauge_set("fremont_journal_interfaces", "", stats.interfaces as u64);
    telemetry.gauge_set("fremont_journal_gateways", "", stats.gateways as u64);
    telemetry.gauge_set("fremont_journal_subnets", "", stats.subnets as u64);
    telemetry.gauge_set(
        "fremont_journal_observations_applied",
        "",
        stats.observations_applied,
    );
}

/// Publishes the sharded store's per-shard activity: lock acquisitions
/// and record counts per shard, plus cross-shard query fan-out and write
/// batch totals (shared between server shutdown and the driver's
/// per-pump dump).
pub fn publish_sharding_metrics(telemetry: &Telemetry, m: &ShardingMetrics) {
    for s in &m.shards {
        let label = format!("shard=\"{}\"", s.shard);
        telemetry.counter_set(
            "fremont_journal_shard_read_locks_total",
            &label,
            s.read_locks,
        );
        telemetry.counter_set(
            "fremont_journal_shard_write_locks_total",
            &label,
            s.write_locks,
        );
        telemetry.gauge_set("fremont_journal_shard_records", &label, s.records as u64);
    }
    telemetry.counter_set("fremont_journal_query_fanout_total", "", m.fanout_queries);
    telemetry.counter_set("fremont_journal_store_batches_total", "", m.batches);
    telemetry.counter_set(
        "fremont_journal_store_batched_observations_total",
        "",
        m.batch_observations,
    );
    telemetry.gauge_set("fremont_journal_store_largest_batch", "", m.largest_batch);
}

/// Builds the live self-description answered to
/// [`Request::Introspect`] — shared with `journal_server
/// --status-interval` self-reports. Reads only paths that already
/// exist for stats publication: journal stats, shard counters, WAL
/// state, and the telemetry sink's own snapshot; no locks beyond
/// those are taken.
pub fn build_introspection<J: JournalAccess>(
    journal: &J,
    telemetry: &Telemetry,
    trace_tail: u64,
) -> IntrospectReport {
    let stats = journal.stats().unwrap_or_default();
    let shards = journal.sharding_metrics();
    let wal = journal.wal_state();
    let metrics = telemetry.exposition().unwrap_or_default();
    let (tail, trace_dropped) = telemetry
        .trace_tail(trace_tail as usize)
        .unwrap_or_default();
    let health = health_verdict(telemetry.enabled(), &metrics, trace_dropped);
    IntrospectReport {
        stats,
        shards,
        wal,
        metrics,
        trace_tail: tail,
        trace_dropped,
        health,
    }
}

/// Derives a deterministic health verdict from the metrics snapshot:
/// any error-class counter above zero degrades the verdict, and the
/// reasons are listed so the reader need not diff expositions.
fn health_verdict(telemetry_on: bool, metrics: &str, trace_dropped: u64) -> String {
    if !telemetry_on {
        return "unknown".to_owned();
    }
    let mut reasons = Vec::new();
    for name in [
        "fremont_journal_rpc_errors_total",
        "fremont_journal_rpc_aborted_total",
        "fremont_journal_connection_errors_total",
        "fremont_journal_snapshot_errors_total",
    ] {
        let total = sum_series(metrics, name);
        if total > 0 {
            reasons.push(format!("{name}={total}"));
        }
    }
    if trace_dropped > 0 {
        reasons.push(format!("trace_dropped={trace_dropped}"));
    }
    if reasons.is_empty() {
        "ok".to_owned()
    } else {
        format!("degraded: {}", reasons.join(" "))
    }
}

/// Sums every series of `name` (any label set) in an exposition.
fn sum_series(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .filter_map(|line| {
            let rest = line.strip_prefix(name)?;
            if !(rest.starts_with(' ') || rest.starts_with('{')) {
                return None;
            }
            rest.rsplit(' ').next()?.parse::<u64>().ok()
        })
        .sum()
}

fn rpc_label(req: &Request) -> &'static str {
    match req {
        Request::Store { .. } => "rpc=\"store\"",
        Request::GetInterfaces(_) => "rpc=\"get_interfaces\"",
        Request::GetGateways => "rpc=\"get_gateways\"",
        Request::GetSubnets(_) => "rpc=\"get_subnets\"",
        Request::Delete(_) => "rpc=\"delete\"",
        Request::Stats => "rpc=\"stats\"",
        Request::Flush => "rpc=\"flush\"",
        Request::StoreBatch { .. } => "rpc=\"store_batch\"",
        Request::Introspect { .. } => "rpc=\"introspect\"",
    }
}

fn error_kind_label(e: &ProtoError) -> &'static str {
    match e {
        ProtoError::Io(_) => "kind=\"io\"",
        ProtoError::Malformed(_) => "kind=\"malformed\"",
        ProtoError::Oversized(_) => "kind=\"oversized\"",
        ProtoError::Server(_) => "kind=\"server\"",
        ProtoError::Unsupported => "kind=\"unsupported\"",
    }
}

fn handle_request<J: JournalAccess>(
    journal: &J,
    snapshot_path: Option<&std::path::Path>,
    telemetry: &Telemetry,
    req: Request,
    rpc_span: SpanId,
    at: TelTime,
) -> Response {
    match req {
        Request::Store { now, observations } => {
            // Merge cost in logical work units (observations offered /
            // records touched) — the deterministic stand-in for wall
            // latency, which the lint's clock ban rules out.
            telemetry.observe(
                "fremont_journal_store_batch_observations",
                "",
                bounds::WORK_UNITS,
                observations.len() as u64,
            );
            let apply = if rpc_span.is_real() {
                telemetry.span_start("server.apply", "", rpc_span, at)
            } else {
                SpanId::NONE
            };
            match journal.store(now, &observations) {
                Ok(s) => {
                    let merged = (s.created + s.updated + s.verified) as u64;
                    telemetry.observe(
                        "fremont_journal_store_merge_ops",
                        "",
                        bounds::WORK_UNITS,
                        merged,
                    );
                    telemetry.work(apply, "observations", observations.len() as u64, at);
                    telemetry.work(apply, "merge_ops", merged, at);
                    telemetry.span_end(apply, &format!("merged={merged}"), at);
                    Response::Stored(s)
                }
                Err(e) => {
                    telemetry.span_end(apply, "error", at);
                    Response::Error(e.to_string())
                }
            }
        }
        Request::StoreBatch { batches } => {
            let total: u64 = batches.iter().map(|b| b.observations.len() as u64).sum();
            telemetry.observe(
                "fremont_journal_store_batch_observations",
                "",
                bounds::WORK_UNITS,
                total,
            );
            let apply = if rpc_span.is_real() {
                telemetry.span_start("server.apply", "", rpc_span, at)
            } else {
                SpanId::NONE
            };
            match journal.store_batch_traced(&batches, apply, at) {
                Ok(s) => {
                    let merged = (s.created + s.updated + s.verified) as u64;
                    telemetry.observe(
                        "fremont_journal_store_merge_ops",
                        "",
                        bounds::WORK_UNITS,
                        merged,
                    );
                    telemetry.work(apply, "observations", total, at);
                    telemetry.work(apply, "merge_ops", merged, at);
                    telemetry.span_end(apply, &format!("merged={merged}"), at);
                    Response::Stored(s)
                }
                Err(e) => {
                    telemetry.span_end(apply, "error", at);
                    Response::Error(e.to_string())
                }
            }
        }
        Request::Introspect { trace_tail } => {
            // Cap the tail so the reply stays well under MAX_FRAME.
            let capped = trace_tail.min(4096);
            Response::Introspection(Box::new(build_introspection(journal, telemetry, capped)))
        }
        Request::GetInterfaces(q) => match journal.interfaces(&q) {
            Ok(v) => Response::Interfaces(v),
            Err(e) => Response::Error(e.to_string()),
        },
        Request::GetGateways => match journal.gateways() {
            Ok(v) => Response::Gateways(v),
            Err(e) => Response::Error(e.to_string()),
        },
        Request::GetSubnets(q) => match journal.subnets(&q) {
            Ok(v) => Response::Subnets(v),
            Err(e) => Response::Error(e.to_string()),
        },
        Request::Delete(id) => match journal.delete(id) {
            Ok(b) => Response::Deleted(b),
            Err(e) => Response::Error(e.to_string()),
        },
        Request::Stats => match journal.stats() {
            Ok(s) => Response::Stats(s),
            Err(e) => Response::Error(e.to_string()),
        },
        Request::Flush => match journal.flush() {
            Ok(true) => Response::Flushed,
            Err(e) => Response::Error(e.to_string()),
            Ok(false) => match snapshot_path {
                Some(path) => match journal.capture_snapshot().map(|s| s.save(path)) {
                    Ok(Ok(())) => Response::Flushed,
                    Ok(Err(e)) => Response::Error(e.to_string()),
                    Err(e) => Response::Error(e.to_string()),
                },
                None => Response::Error("no snapshot path configured".to_owned()),
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Source;
    use std::net::Ipv4Addr;

    #[test]
    fn health_verdict_reports_reasons() {
        assert_eq!(health_verdict(false, "", 0), "unknown");
        assert_eq!(
            health_verdict(true, "fremont_journal_rpc_total 9\n", 0),
            "ok"
        );
        let expo = "fremont_journal_rpc_errors_total{kind=\"io\"} 2\n\
                    fremont_journal_rpc_errors_total{kind=\"server\"} 1\n";
        let v = health_verdict(true, expo, 4);
        assert_eq!(
            v,
            "degraded: fremont_journal_rpc_errors_total=3 trace_dropped=4"
        );
    }

    #[test]
    fn introspection_over_shared_journal() {
        let (tel, _rec) = fremont_telemetry::Telemetry::recording();
        let j = SharedJournal::new();
        j.store(
            JTime(1),
            &[Observation::ip_alive(
                Source::SeqPing,
                Ipv4Addr::new(10, 0, 0, 9),
            )],
        )
        .unwrap();
        tel.event("warm", "", SpanId::NONE, TelTime(5));
        let report = build_introspection(&j, &tel, 16);
        assert_eq!(report.stats.interfaces, 1);
        assert!(report.shards.is_some());
        assert!(report.wal.is_none());
        assert_eq!(report.health, "ok");
        assert_eq!(report.trace_tail.len(), 1);
        assert!(report.metrics.contains("fremont_trace_dropped_total 0"));
        // Without telemetry the report degrades gracefully.
        let bare = build_introspection(&j, &Telemetry::noop(), 16);
        assert_eq!(bare.health, "unknown");
        assert!(bare.metrics.is_empty());
    }

    #[test]
    fn shared_journal_access() {
        let j = SharedJournal::new();
        let s = j
            .store(
                JTime(1),
                &[Observation::ip_alive(
                    Source::SeqPing,
                    Ipv4Addr::new(10, 0, 0, 1),
                )],
            )
            .unwrap();
        assert_eq!(s.created, 1);
        let recs = j.interfaces(&InterfaceQuery::all()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(j.stats().unwrap().interfaces, 1);
        assert!(j.delete(recs[0].id).unwrap());
        assert_eq!(j.stats().unwrap().interfaces, 0);
        assert_eq!(j.batch_groups_total(), Some(1));
    }
}
