//! Selection criteria for Journal queries.
//!
//! The Journal Server's Get request "may return multiple data records
//! depending on the selection criteria in the request". Queries are
//! conjunctive: every populated field must match.

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

use fremont_net::{MacAddr, Subnet};

use crate::records::InterfaceRecord;
use crate::time::JTime;

/// Conjunctive selection criteria over interface records.
///
/// # Examples
///
/// ```
/// use fremont_journal::query::InterfaceQuery;
/// use fremont_journal::time::JTime;
///
/// // "Interfaces on subnet X not verified on the wire for a week."
/// let q = InterfaceQuery {
///     in_subnet: Some("128.138.243.0/24".parse().unwrap()),
///     live_verified_before: Some(JTime::from_days(7)),
///     ..InterfaceQuery::default()
/// };
/// assert!(q.in_subnet.is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterfaceQuery {
    /// Match a specific IP address.
    pub ip: Option<Ipv4Addr>,
    /// Match a specific MAC address.
    pub mac: Option<MacAddr>,
    /// Match an exact DNS name.
    pub name: Option<String>,
    /// Match interfaces whose IP falls inside this subnet.
    pub in_subnet: Option<Subnet>,
    /// Match an inclusive IP range (`lo..=hi`).
    pub ip_range: Option<(Ipv4Addr, Ipv4Addr)>,
    /// Only records modified at or after this time.
    pub modified_since: Option<JTime>,
    /// Only records whose last verification is strictly before this time.
    pub verified_before: Option<JTime>,
    /// Only records whose last *live* (non-DNS) verification is strictly
    /// before this time, or that have never been live-verified.
    pub live_verified_before: Option<JTime>,
    /// Filter by RIP-source status.
    pub rip_source: Option<bool>,
    /// Filter by gateway membership.
    pub is_gateway_member: Option<bool>,
    /// Only records missing a subnet mask (drives Discovery Manager
    /// fruitfulness decisions).
    pub missing_mask: Option<bool>,
}

impl InterfaceQuery {
    /// The match-everything query.
    pub fn all() -> Self {
        InterfaceQuery::default()
    }

    /// Query by exact IP.
    pub fn by_ip(ip: Ipv4Addr) -> Self {
        InterfaceQuery {
            ip: Some(ip),
            ..Default::default()
        }
    }

    /// Query by exact MAC.
    pub fn by_mac(mac: MacAddr) -> Self {
        InterfaceQuery {
            mac: Some(mac),
            ..Default::default()
        }
    }

    /// Query by containing subnet.
    pub fn in_subnet(subnet: Subnet) -> Self {
        InterfaceQuery {
            in_subnet: Some(subnet),
            ..Default::default()
        }
    }

    /// Evaluates the criteria against a record.
    pub fn matches(&self, r: &InterfaceRecord) -> bool {
        if let Some(ip) = self.ip {
            if r.ip_addr() != Some(ip) {
                return false;
            }
        }
        if let Some(mac) = self.mac {
            if r.mac_addr() != Some(mac) {
                return false;
            }
        }
        if let Some(name) = &self.name {
            if r.dns_name() != Some(name.as_str()) {
                return false;
            }
        }
        if let Some(s) = self.in_subnet {
            match r.ip_addr() {
                Some(ip) if s.contains(ip) => {}
                _ => return false,
            }
        }
        if let Some((lo, hi)) = self.ip_range {
            match r.ip_addr() {
                Some(ip) if fremont_net::IpRange::new(lo, hi).contains(ip) => {}
                _ => return false,
            }
        }
        if let Some(t) = self.modified_since {
            if r.changed < t {
                return false;
            }
        }
        if let Some(t) = self.verified_before {
            if r.verified >= t {
                return false;
            }
        }
        if let Some(t) = self.live_verified_before {
            if let Some(lv) = r.live_verified {
                if lv >= t {
                    return false;
                }
            }
            // Never live-verified counts as "before any time".
        }
        if let Some(want) = self.rip_source {
            if r.rip_source != want {
                return false;
            }
        }
        if let Some(want) = self.is_gateway_member {
            if r.is_gateway_member() != want {
                return false;
            }
        }
        if let Some(want) = self.missing_mask {
            if (r.mask.is_none()) != want {
                return false;
            }
        }
        true
    }
}

/// Selection criteria over subnet records.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubnetQuery {
    /// Match subnets contained in this (wider) network.
    pub within: Option<Subnet>,
    /// Filter by whether any gateway is known for the subnet.
    pub has_gateway: Option<bool>,
    /// Only subnets verified at or after this time.
    pub verified_since: Option<JTime>,
}

impl SubnetQuery {
    /// The match-everything query.
    pub fn all() -> Self {
        SubnetQuery::default()
    }

    /// Evaluates the criteria against a subnet record.
    pub fn matches(&self, r: &crate::records::SubnetRecord) -> bool {
        if let Some(w) = self.within {
            if !w.contains_subnet(&r.subnet) {
                return false;
            }
        }
        if let Some(want) = self.has_gateway {
            if r.gateways.is_empty() == want {
                return false;
            }
        }
        if let Some(t) = self.verified_since {
            if r.verified < t {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{GatewayId, InterfaceId, SubnetRecord};
    use crate::time::Timestamped;

    fn rec(ip: &str, t: u64) -> InterfaceRecord {
        let mut r = InterfaceRecord::new(InterfaceId(1), JTime(t));
        r.ip = Some(Timestamped::new(ip.parse().unwrap(), JTime(t)));
        r
    }

    #[test]
    fn subnet_and_range_filters() {
        let r = rec("128.138.243.18", 0);
        assert!(InterfaceQuery::in_subnet("128.138.243.0/24".parse().unwrap()).matches(&r));
        assert!(!InterfaceQuery::in_subnet("128.138.244.0/24".parse().unwrap()).matches(&r));
        let q = InterfaceQuery {
            ip_range: Some((
                "128.138.243.10".parse().unwrap(),
                "128.138.243.20".parse().unwrap(),
            )),
            ..Default::default()
        };
        assert!(q.matches(&r));
        let q = InterfaceQuery {
            ip_range: Some((
                "128.138.243.19".parse().unwrap(),
                "128.138.243.20".parse().unwrap(),
            )),
            ..Default::default()
        };
        assert!(!q.matches(&r));
    }

    #[test]
    fn time_filters() {
        let mut r = rec("10.0.0.1", 100);
        r.verified = JTime(100);
        let stale = InterfaceQuery {
            verified_before: Some(JTime(200)),
            ..Default::default()
        };
        assert!(stale.matches(&r));
        r.verified = JTime(200);
        assert!(!stale.matches(&r));

        let recent = InterfaceQuery {
            modified_since: Some(JTime(50)),
            ..Default::default()
        };
        assert!(recent.matches(&r));
    }

    #[test]
    fn live_verification_filter() {
        let mut r = rec("10.0.0.1", 0);
        let q = InterfaceQuery {
            live_verified_before: Some(JTime(100)),
            ..Default::default()
        };
        // Never live-verified (DNS-only record) matches.
        assert!(q.matches(&r));
        r.live_verified = Some(JTime(50));
        assert!(q.matches(&r));
        r.live_verified = Some(JTime(150));
        assert!(!q.matches(&r));
    }

    #[test]
    fn flag_filters() {
        let mut r = rec("10.0.0.1", 0);
        r.rip_source = true;
        let q = InterfaceQuery {
            rip_source: Some(true),
            ..Default::default()
        };
        assert!(q.matches(&r));
        let q = InterfaceQuery {
            is_gateway_member: Some(true),
            ..Default::default()
        };
        assert!(!q.matches(&r));
        r.gateway = Some(GatewayId(1));
        assert!(q.matches(&r));
        let q = InterfaceQuery {
            missing_mask: Some(true),
            ..Default::default()
        };
        assert!(q.matches(&r));
    }

    #[test]
    fn missing_ip_fails_ip_predicates() {
        let r = InterfaceRecord::new(InterfaceId(2), JTime(0));
        assert!(!InterfaceQuery::by_ip("1.2.3.4".parse().unwrap()).matches(&r));
        assert!(!InterfaceQuery::in_subnet("1.2.3.0/24".parse().unwrap()).matches(&r));
        assert!(InterfaceQuery::all().matches(&r));
    }

    #[test]
    fn subnet_query() {
        let mut r = SubnetRecord::new("128.138.238.0/24".parse().unwrap(), false, JTime(10));
        let q = SubnetQuery {
            within: Some("128.138.0.0/16".parse().unwrap()),
            ..Default::default()
        };
        assert!(q.matches(&r));
        let q = SubnetQuery {
            has_gateway: Some(true),
            ..Default::default()
        };
        assert!(!q.matches(&r));
        r.add_gateway(GatewayId(1));
        assert!(q.matches(&r));
        let q = SubnetQuery {
            verified_since: Some(JTime(20)),
            ..Default::default()
        };
        assert!(!q.matches(&r));
    }
}
