//! # fremont-journal
//!
//! The Fremont Journal: the central, timestamped repository of discovered
//! network facts, with the Journal Server that manages it.
//!
//! "Just as Fremont the explorer kept a dated journal of his activities,
//! the Fremont system records discovered information in a central
//! repository, which we call the Journal."
//!
//! The crate provides, bottom up:
//!
//! * [`avl`] — the AVL tree index structure the paper's server uses;
//! * [`time`] — the three-timestamp scheme (discovered / changed /
//!   verified);
//! * [`observation`] — the vocabulary Explorer Modules report in;
//! * [`records`] — interface, gateway, and subnet records (paper Table 1);
//! * [`store`] — the merging store with MAC/IP/name/subnet indexes;
//! * [`query`] — selection criteria for Get requests;
//! * [`proto`] / [`server`] / [`client`] — the Store/Get/Delete protocol
//!   over TCP, plus the shared in-process handle;
//! * [`snapshot`] — periodic/at-termination disk persistence.
//!
//! # Examples
//!
//! ```
//! use std::net::Ipv4Addr;
//! use fremont_journal::observation::{Observation, Source};
//! use fremont_journal::query::InterfaceQuery;
//! use fremont_journal::store::Journal;
//! use fremont_journal::time::JTime;
//!
//! let mut journal = Journal::new();
//! journal.apply(
//!     &Observation::arp_pair(
//!         Source::ArpWatch,
//!         Ipv4Addr::new(128, 138, 243, 18),
//!         "08:00:20:01:02:03".parse().unwrap(),
//!     ),
//!     JTime::from_secs(60),
//! );
//! let found = journal.get_interfaces(&InterfaceQuery::by_ip(Ipv4Addr::new(128, 138, 243, 18)));
//! assert_eq!(found.len(), 1);
//! assert_eq!(found[0].mac_addr().unwrap().vendor(), Some("Sun Microsystems"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod avl;
pub mod client;
pub mod observation;
pub mod proto;
pub mod query;
pub mod records;
pub mod server;
pub mod snapshot;
pub mod store;
pub mod time;

pub use observation::{Fact, Observation, Source, SourceSet};
pub use proto::{IntrospectReport, StoreBatchItem, TraceContext, WalStateReport};
pub use query::{InterfaceQuery, SubnetQuery};
pub use records::{GatewayId, GatewayRecord, InterfaceId, InterfaceRecord, SubnetRecord};
pub use server::{build_introspection, JournalAccess, JournalServer, SharedJournal};
pub use store::{Journal, JournalStats, ShardMetrics, ShardingMetrics, StoreSummary};
pub use time::{JTime, Timestamped};
