//! Golden fixtures: one seeded violation per rule, caught at the exact
//! span, with the human and JSON reports matching committed expectations
//! byte for byte.
//!
//! The fixture sources live under `tests/fixtures/` (a directory the
//! analyzer itself never descends into) and are mounted at in-scope
//! virtual paths via [`Workspace::from_sources`].

use std::path::PathBuf;

use fremont_lint::{analyze, report, Analysis, Config, Severity, Workspace};

fn fixture_workspace() -> Workspace {
    Workspace::from_sources(&[
        (
            "crates/explorers/src/fixture.rs",
            include_str!("fixtures/determinism.rs"),
        ),
        (
            "crates/storage/src/fixture.rs",
            include_str!("fixtures/panic.rs"),
        ),
        (
            "crates/core/src/fixture.rs",
            include_str!("fixtures/ignored_io.rs"),
        ),
        (
            "crates/journal/src/fixture.rs",
            include_str!("fixtures/lock_order.rs"),
        ),
        (
            "crates/journal/src/fixture_schema.rs",
            include_str!("fixtures/wal_schema.rs"),
        ),
        (
            "crates/journal/src/store/fixture.rs",
            include_str!("fixtures/shard_lock_order.rs"),
        ),
        (
            "crates/telemetry/src/fixture_metrics.rs",
            include_str!("fixtures/metric_registry.rs"),
        ),
    ])
}

fn fixture_config() -> Config {
    // Root at the tests directory so the golden rules find the fixture
    // goldens rather than the workspace ones.
    let mut cfg = Config::for_root(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests"));
    cfg.golden_path = "fixtures/wal_schema.golden".to_owned();
    cfg.metrics_golden_path = "fixtures/metrics.golden".to_owned();
    cfg.lock_golden_path = "fixtures/lock-order.golden".to_owned();
    cfg
}

/// With `FREMONT_LINT_BLESS=1`, rewrites the committed expectation
/// files from the current run (the next run then asserts against them).
fn maybe_bless(name: &str, rendered: &str) {
    if std::env::var_os("FREMONT_LINT_BLESS").is_some() {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures")
            .join(name);
        std::fs::write(path, rendered).expect("bless write");
    }
}

fn run() -> (Analysis, Config) {
    let cfg = fixture_config();
    let (analysis, golden) = analyze(&fixture_workspace(), &cfg, false);
    assert!(golden.is_none(), "not in write mode");
    (analysis, cfg)
}

/// (rule, path, line, col, severity, message fragment) for each seeded
/// violation, in report order.
const EXPECTED: [(&str, &str, u32, u32, Severity, &str); 10] = [
    (
        "ignored-io",
        "crates/core/src/fixture.rs",
        4,
        5,
        Severity::Error,
        "discards the result of `flush`",
    ),
    (
        "determinism",
        "crates/explorers/src/fixture.rs",
        4,
        24,
        Severity::Error,
        "non-deterministic clock `SystemTime`",
    ),
    (
        "lock-order",
        "crates/journal/src/fixture.rs",
        10,
        32,
        Severity::Error,
        "held across file IO",
    ),
    (
        "wal-schema",
        "crates/journal/src/fixture_schema.rs",
        8,
        1,
        Severity::Error,
        "variant 1 changed from `Named ( u32 )` to `Named ( String )`",
    ),
    (
        "shard-lock-order",
        "crates/journal/src/store/fixture.rs",
        9,
        30,
        Severity::Error,
        "the meta write gate must come before any shard lock",
    ),
    (
        "shard-lock-order",
        "crates/journal/src/store/fixture.rs",
        17,
        32,
        Severity::Error,
        "ascending index order",
    ),
    (
        "shard-lock-order",
        "crates/journal/src/store/fixture.rs",
        25,
        33,
        Severity::Error,
        "ascending index order",
    ),
    (
        "panic",
        "crates/storage/src/fixture.rs",
        4,
        48,
        Severity::Error,
        "`.unwrap()` in a hot/IO path",
    ),
    (
        "metric-registry",
        "crates/telemetry/src/fixture_metrics.rs",
        8,
        17,
        Severity::Warning,
        "new metric `fremont_fixture_appended_total`",
    ),
    (
        "metric-registry",
        "fixtures/metrics.golden",
        0,
        0,
        Severity::Error,
        "metric `fremont_fixture_renamed_total` was removed or renamed",
    ),
];

#[test]
fn each_rule_catches_its_seeded_fixture_at_the_exact_span() {
    let (analysis, _) = run();
    assert_eq!(
        analysis.violations.len(),
        EXPECTED.len(),
        "exactly one finding per fixture: {:#?}",
        analysis.violations
    );
    for (v, (rule, path, line, col, severity, fragment)) in
        analysis.violations.iter().zip(EXPECTED.iter())
    {
        assert_eq!(v.rule, *rule);
        assert_eq!(v.path, *path, "{rule}");
        assert_eq!((v.line, v.col), (*line, *col), "{rule} span");
        assert_eq!(v.severity, *severity, "{rule}");
        assert!(v.message.contains(fragment), "{rule}: {}", v.message);
    }
}

#[test]
fn human_report_matches_committed_expectation() {
    let (analysis, cfg) = run();
    let rendered = report::human(&analysis, cfg.max_suppressions);
    maybe_bless("expected_human.txt", &rendered);
    assert_eq!(rendered, include_str!("fixtures/expected_human.txt"));
}

#[test]
fn json_report_matches_committed_expectation() {
    let (analysis, cfg) = run();
    let rendered = report::json(&analysis, cfg.max_suppressions);
    maybe_bless("expected.json", &rendered);
    assert_eq!(rendered, include_str!("fixtures/expected.json"));
}

#[test]
fn a_suppression_silences_exactly_its_rule_and_is_counted() {
    let cfg = fixture_config();
    let suppressed = format!(
        "// fremont-lint: allow(determinism) -- fixture exercises the suppression path\n{}",
        include_str!("fixtures/determinism.rs")
    );
    // The annotation sits on the line above the doc comment, two lines
    // above the finding — too far, so nothing changes…
    let ws = Workspace::from_sources(&[("crates/explorers/src/fixture.rs", &suppressed)]);
    let (analysis, _) = analyze(&ws, &cfg, false);
    assert!(
        analysis.violations.iter().any(|v| v.rule == "determinism"),
        "annotation out of range does not suppress"
    );
    // …while one directly above the offending line does.
    let adjacent = include_str!("fixtures/determinism.rs").replace(
        "    let t = std::time::SystemTime::now();",
        "    // fremont-lint: allow(determinism) -- fixture exercises the suppression path\n    let t = std::time::SystemTime::now();",
    );
    let ws = Workspace::from_sources(&[("crates/explorers/src/fixture.rs", &adjacent)]);
    let (analysis, _) = analyze(&ws, &cfg, false);
    assert!(
        !analysis.violations.iter().any(|v| v.rule == "determinism"),
        "{:#?}",
        analysis.violations
    );
    assert_eq!(
        (analysis.suppressions_used, analysis.suppressions_total),
        (1, 1)
    );
}
