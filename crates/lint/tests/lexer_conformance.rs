//! Lexer conformance sweep: lex every `.rs` file in the repository and
//! assert the byte-span round-trip contract — tokens are emitted in
//! source order, spans never overlap, every inter-token gap is
//! whitespace, and each token's text equals its spanned bytes (raw
//! identifiers excepted: their span carries the `r#` prefix the text
//! strips). Unlike `Workspace::load`, this walk includes `tests/`,
//! `benches/`, `examples/`, fixtures, and the vendored shims, so the
//! lexer is exercised on every Rust construct the repo actually uses.

use std::fs;
use std::path::{Path, PathBuf};

use fremont_lint::find_workspace_root;
use fremont_lint::lexer::{lex, TokKind};

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && name != ".git" {
                collect_rs(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn every_workspace_file_round_trips_byte_spans() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let mut files = Vec::new();
    collect_rs(&root, &mut files);
    assert!(
        files.len() > 100,
        "suspiciously few .rs files found under {}: {}",
        root.display(),
        files.len()
    );

    for path in &files {
        let src = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
        let toks = lex(&src);
        let mut pos = 0usize;
        for (i, t) in toks.iter().enumerate() {
            assert!(
                t.start >= pos && t.end >= t.start && t.end <= src.len(),
                "{}: token {i} ({:?} {:?} at {}:{}) has span {}..{} outside cursor {pos}",
                path.display(),
                t.kind,
                t.text,
                t.line,
                t.col,
                t.start,
                t.end,
            );
            let gap = &src[pos..t.start];
            assert!(
                gap.bytes().all(|b| b.is_ascii_whitespace()),
                "{}: non-whitespace gap {gap:?} before token {i} ({:?} at {}:{})",
                path.display(),
                t.text,
                t.line,
                t.col,
            );
            let spanned = &src[t.start..t.end];
            let ok = spanned == t.text
                || (t.kind == TokKind::Ident && spanned == format!("r#{}", t.text));
            assert!(
                ok,
                "{}: token {i} text {:?} != spanned bytes {spanned:?} ({}:{})",
                path.display(),
                t.text,
                t.line,
                t.col,
            );
            pos = t.end;
        }
        let tail = &src[pos..];
        assert!(
            tail.bytes().all(|b| b.is_ascii_whitespace()),
            "{}: non-whitespace tail {tail:?} after last token",
            path.display(),
        );
    }
}
