//! The analyzer's verdict on the real workspace: zero errors within the
//! suppression budget, and the acceptance property that mutating an
//! existing WAL variant fails the build.

use std::path::Path;

use fremont_lint::{analyze, find_workspace_root, Config, Severity, SourceFile, Workspace};

fn real_workspace() -> (Workspace, Config) {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let ws = Workspace::load(&root).expect("workspace sources readable");
    let cfg = Config::for_root(root);
    (ws, cfg)
}

#[test]
fn workspace_is_clean_within_the_suppression_budget() {
    let (ws, cfg) = real_workspace();
    let (analysis, golden) = analyze(&ws, &cfg, false);
    assert!(golden.is_none());
    let errors: Vec<_> = analysis
        .violations
        .iter()
        .filter(|v| v.severity == Severity::Error)
        .collect();
    assert!(errors.is_empty(), "{errors:#?}");
    assert!(
        analysis.suppressions_total <= cfg.max_suppressions,
        "{} suppressions exceed the budget of {}",
        analysis.suppressions_total,
        cfg.max_suppressions
    );
    // Hygiene: every committed suppression still earns its keep.
    assert_eq!(analysis.suppressions_used, analysis.suppressions_total);
}

#[test]
fn mutating_an_existing_wal_variant_fails_the_build() {
    let (mut ws, cfg) = real_workspace();
    let path = "crates/journal/src/observation.rs";
    let idx = ws
        .files
        .iter()
        .position(|f| f.path == path)
        .expect("observation.rs is part of the schema scope");
    let content = std::fs::read_to_string(cfg.root.join(path)).expect("observation.rs readable");
    let mutated = content.replace("mask_assumed: bool", "mask_assumed: u8");
    assert_ne!(content, mutated, "the guarded field exists");
    ws.files[idx] = SourceFile::new(path.to_owned(), &mutated);

    let (analysis, _) = analyze(&ws, &cfg, false);
    assert!(
        analysis.violations.iter().any(|v| v.rule == "wal-schema"
            && v.severity == Severity::Error
            && v.message.contains("variant")),
        "mutated Fact variant must be an error: {:#?}",
        analysis.violations
    );
}

#[test]
fn an_inverted_shard_acquisition_fails_the_build() {
    // The static half of the acceptance criterion: seed a meta-after-
    // shard inversion into the real store and the `shard-lock-order`
    // rule must reject it (the sanitizer half lives in
    // crates/journal/tests/lock_sanitizer.rs).
    let (mut ws, cfg) = real_workspace();
    let path = "crates/journal/src/store/mod.rs";
    let idx = ws
        .files
        .iter()
        .position(|f| f.path == path)
        .expect("the sharded store is in the workspace");
    let content = std::fs::read_to_string(cfg.root.join(path)).expect("store readable");
    let mutated = format!(
        "{content}\nimpl ShardedStore {{\n    fn lint_probe_inverted(&self) -> u64 {{\n        \
         let shard = self.shards[0].read();\n        let gate = self.meta.write();\n        \
         gate.next_seq + shard.len() as u64\n    }}\n}}\n"
    );
    ws.files[idx] = SourceFile::new(path.to_owned(), &mutated);

    let (analysis, _) = analyze(&ws, &cfg, false);
    assert!(
        analysis
            .violations
            .iter()
            .any(|v| v.rule == "shard-lock-order"
                && v.severity == Severity::Error
                && v.message.contains("meta write gate must come before")),
        "inverted acquisition must be an error: {:#?}",
        analysis.violations
    );
}

#[test]
fn renaming_a_metric_fails_the_build() {
    let (mut ws, cfg) = real_workspace();
    let path = "crates/journal/src/server.rs";
    let idx = ws
        .files
        .iter()
        .position(|f| f.path == path)
        .expect("server.rs is in the workspace");
    let content = std::fs::read_to_string(cfg.root.join(path)).expect("server.rs readable");
    let mutated = content.replace(
        "fremont_journal_connections_total",
        "fremont_journal_sessions_total",
    );
    assert_ne!(content, mutated, "the guarded metric exists");
    ws.files[idx] = SourceFile::new(path.to_owned(), &mutated);

    let (analysis, _) = analyze(&ws, &cfg, false);
    assert!(
        analysis
            .violations
            .iter()
            .any(|v| v.rule == "metric-registry"
                && v.severity == Severity::Error
                && v.message.contains("fremont_journal_connections_total")),
        "renamed metric must be an error: {:#?}",
        analysis.violations
    );
    assert!(
        analysis
            .violations
            .iter()
            .any(|v| v.rule == "metric-registry"
                && v.severity == Severity::Warning
                && v.message.contains("fremont_journal_sessions_total")),
        "the new name stays a warning until registered: {:#?}",
        analysis.violations
    );
}

#[test]
fn appending_a_wal_variant_is_only_a_warning() {
    let (mut ws, cfg) = real_workspace();
    let path = "crates/journal/src/observation.rs";
    let idx = ws
        .files
        .iter()
        .position(|f| f.path == path)
        .expect("observation.rs is part of the schema scope");
    let content = std::fs::read_to_string(cfg.root.join(path)).expect("observation.rs readable");
    // Append a new variant after Fact's last (RipSource ends the enum).
    let marker = "        promiscuous: bool,\n    },\n}";
    assert!(content.contains(marker), "Fact ends with RipSource");
    let mutated = content.replacen(
        marker,
        "        promiscuous: bool,\n    },\n    FixtureAppended { tag: u32 },\n}",
        1,
    );
    ws.files[idx] = SourceFile::new(path.to_owned(), &mutated);

    let (analysis, _) = analyze(&ws, &cfg, false);
    let schema: Vec<_> = analysis
        .violations
        .iter()
        .filter(|v| v.rule == "wal-schema")
        .collect();
    assert!(!schema.is_empty(), "append is visible");
    assert!(
        schema.iter().all(|v| v.severity == Severity::Warning),
        "append stays a warning until the golden is refreshed: {schema:#?}"
    );
}
