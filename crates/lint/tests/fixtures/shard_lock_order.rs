//! Seeded `shard-lock-order` violations. Mounted at
//! `crates/journal/src/store/fixture.rs` (the rule's scope) by the
//! golden test; never compiled.

impl FixtureStore {
    /// Inverted: the meta gate taken while a shard guard is live.
    fn inverted(&self) -> u64 {
        let shard = self.shards[0].read();
        let meta = self.meta.write();
        meta.seq + shard.len() as u64
    }

    /// Write guards in descending index order (ascending multi-write
    /// acquisition is the grouped batch path's sanctioned shape).
    fn double_write(&self) {
        let a = self.shards[2].write();
        let b = self.shards[1].write();
        a.clear();
        b.clear();
    }

    /// Descending index order.
    fn descending(&self) -> usize {
        let hi = self.shards[3].read();
        let lo = self.shards[2].read();
        hi.len() + lo.len()
    }
}
