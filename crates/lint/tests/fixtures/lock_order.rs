//! Seeded `lock-order` violation: a lock held across file IO.

pub struct Store {
    state: parking_lot::Mutex<u64>,
    file: std::fs::File,
}

impl Store {
    pub fn persist(&self) -> std::io::Result<()> {
        let guard = self.state.lock();
        self.file.sync_all()?;
        drop(guard);
        Ok(())
    }
}
