//! Seeded `panic` violation: an unwrap in the storage hot path.

pub fn read_header(data: &[u8]) -> u32 {
    let bytes: [u8; 4] = data[0..4].try_into().unwrap();
    u32::from_le_bytes(bytes)
}
