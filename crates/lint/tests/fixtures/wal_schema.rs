//! Seeded `wal-schema` violation: variant 1 was `Named(u32)` when the
//! fixture golden was written; this version mutates it in place.

use serde::{Deserialize, Serialize};

/// The fixture's stand-in for a WAL record payload.
#[derive(Serialize, Deserialize)]
pub enum FixtureFact {
    Alive { ip: u32 },
    Named(String),
}
