//! Seeded `determinism` violation: wall-clock time in an explorer.

pub fn observe_stamp() -> u64 {
    let t = std::time::SystemTime::now();
    drop(t);
    0
}
