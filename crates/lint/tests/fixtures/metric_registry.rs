//! Seeded `metric-registry` violations. Mounted at
//! `crates/telemetry/src/fixture_metrics.rs` by the golden test; never
//! compiled. The fixture golden registers `fremont_fixture_renamed_total`
//! (no longer emitted here → error) but not
//! `fremont_fixture_appended_total` (→ warning at this span).

fn fixture_metrics(reg: &mut Registry) {
    reg.counter("fremont_fixture_appended_total", 1);
}
