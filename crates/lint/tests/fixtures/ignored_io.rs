//! Seeded `ignored-io` violation: a discarded flush result.

pub fn shutdown(w: &mut impl std::io::Write) {
    let _ = w.flush();
}
