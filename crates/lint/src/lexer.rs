//! A token-level Rust lexer, sufficient for pattern-based static
//! analysis.
//!
//! This is not a full parser: it produces a flat token stream with
//! source positions, handling exactly the constructs that make naive
//! text search on Rust unsound — string literals (including raw strings
//! with arbitrary `#` counts and byte/C-string prefixes), nested block
//! comments, char literals vs lifetimes (`'a'` vs `'a`), raw
//! identifiers (`r#match`), and numeric literals with exponents.
//! Everything a rule matches on is a real code token, never text inside
//! a string or comment.

/// What kind of token was lexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, without `r#`).
    Ident,
    /// A lifetime such as `'a` (text excludes the quote).
    Lifetime,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Any string literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// A numeric literal.
    Num,
    /// A single punctuation character.
    Punct,
    /// A line or block comment (text includes delimiters).
    Comment,
}

/// One lexed token with its source position (1-based line/column) and
/// byte span (`start..end` into the source, half-open).
///
/// Spans tile the file: every byte of the source is inside exactly one
/// token's span or inter-token whitespace — the conformance sweep in
/// `tests/lexer_conformance.rs` asserts this over every `.rs` file in
/// the repository. `text` equals the spanned bytes except for raw
/// identifiers, whose span includes the `r#` prefix that `text` strips.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
}

impl Tok {
    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for a punctuation token with exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes a whole source file into tokens (comments included).
///
/// The lexer never fails: malformed input degenerates into `Punct`
/// tokens rather than aborting, so a half-edited file still gets the
/// best-effort analysis.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = c.peek(0) {
        let (line, col, start) = (c.line, c.col, c.pos);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek(1) == Some(b'/') => {
                while let Some(nb) = c.peek(0) {
                    if nb == b'\n' {
                        break;
                    }
                    c.bump();
                }
                push(&mut out, TokKind::Comment, &c, start, line, col);
            }
            b'/' if c.peek(1) == Some(b'*') => {
                c.bump();
                c.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (c.peek(0), c.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
                push(&mut out, TokKind::Comment, &c, start, line, col);
            }
            b'"' => {
                lex_string(&mut c);
                push(&mut out, TokKind::Str, &c, start, line, col);
            }
            b'\'' => {
                let kind = lex_quote(&mut c);
                push(&mut out, kind, &c, start, line, col);
            }
            b'r' | b'b' | b'c' if string_prefix_len(&c).is_some() => {
                let hashes = string_prefix_len(&c).unwrap_or(0);
                let kind = lex_prefixed_string(&mut c, hashes);
                push(&mut out, kind, &c, start, line, col);
            }
            _ if is_ident_start(b) => {
                // Raw identifier r#name: skip the prefix, keep the name.
                if b == b'r' && c.peek(1) == Some(b'#') && c.peek(2).is_some_and(is_ident_start) {
                    c.bump();
                    c.bump();
                }
                let name_start = c.pos;
                while c.peek(0).is_some_and(is_ident_cont) {
                    c.bump();
                }
                out.push(Tok {
                    kind: TokKind::Ident,
                    text: String::from_utf8_lossy(&c.src[name_start..c.pos]).into_owned(),
                    line,
                    col,
                    start,
                    end: c.pos,
                });
            }
            _ if b.is_ascii_digit() => {
                lex_number(&mut c);
                push(&mut out, TokKind::Num, &c, start, line, col);
            }
            _ => {
                c.bump();
                push(&mut out, TokKind::Punct, &c, start, line, col);
            }
        }
    }
    out
}

fn push(out: &mut Vec<Tok>, kind: TokKind, c: &Cursor<'_>, start: usize, line: u32, col: u32) {
    out.push(Tok {
        kind,
        text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
        line,
        col,
        start,
        end: c.pos,
    });
}

/// If the cursor sits on a string prefix (`r"`, `r#"`, `br"`, `b"`,
/// `b'`, `c"`, `cr#"` …), returns the number of `#` marks; `None` when
/// this is a plain identifier like `r#match` or `bytes`.
fn string_prefix_len(c: &Cursor<'_>) -> Option<usize> {
    let mut i = 0usize;
    // Optional b/c, then optional r.
    match c.peek(i) {
        Some(b'b') | Some(b'c') => {
            i += 1;
            if c.peek(i) == Some(b'r') {
                i += 1;
            }
        }
        Some(b'r') => i += 1,
        _ => return None,
    }
    // b'x' byte-char literal: treated like a quote token downstream.
    if i == 1 && c.peek(0) == Some(b'b') && c.peek(1) == Some(b'\'') {
        return Some(0);
    }
    let mut hashes = 0usize;
    while c.peek(i) == Some(b'#') {
        i += 1;
        hashes += 1;
    }
    if c.peek(i) == Some(b'"') {
        Some(hashes)
    } else {
        None
    }
}

/// Lexes a prefixed string (`r…`, `b…`, `c…`) after [`string_prefix_len`]
/// confirmed one is present. Returns the token kind.
fn lex_prefixed_string(c: &mut Cursor<'_>, hashes: usize) -> TokKind {
    let mut raw = false;
    // Consume prefix letters and hashes up to the quote.
    while let Some(b) = c.peek(0) {
        match b {
            b'b' | b'c' => {
                c.bump();
            }
            b'r' => {
                raw = true;
                c.bump();
            }
            b'#' => {
                c.bump();
            }
            b'"' => break,
            b'\'' => {
                // b'x'
                return lex_quote(c);
            }
            _ => break,
        }
    }
    if !raw {
        lex_string(c);
        return TokKind::Str;
    }
    // Raw string: no escapes; ends at `"` followed by `hashes` hashes.
    c.bump(); // opening quote
    loop {
        match c.peek(0) {
            None => break,
            Some(b'"') => {
                let mut ok = true;
                for h in 0..hashes {
                    if c.peek(1 + h) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                c.bump();
                if ok {
                    for _ in 0..hashes {
                        c.bump();
                    }
                    break;
                }
            }
            Some(_) => {
                c.bump();
            }
        }
    }
    TokKind::Str
}

/// Lexes a normal (escaped) string starting at `"`.
fn lex_string(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    while let Some(b) = c.peek(0) {
        match b {
            b'\\' => {
                c.bump();
                c.bump();
            }
            b'"' => {
                c.bump();
                break;
            }
            _ => {
                c.bump();
            }
        }
    }
}

/// Lexes starting at `'`: either a char literal or a lifetime.
fn lex_quote(c: &mut Cursor<'_>) -> TokKind {
    if c.peek(0) == Some(b'b') {
        c.bump(); // b'…'
    }
    c.bump(); // opening quote
    match c.peek(0) {
        Some(b'\\') => {
            // Escaped char literal: consume to the closing quote.
            c.bump();
            c.bump();
            while let Some(b) = c.peek(0) {
                c.bump();
                if b == b'\'' {
                    break;
                }
            }
            TokKind::Char
        }
        Some(b) if is_ident_start(b) => {
            // `'a'` is a char; `'a` / `'static` is a lifetime.
            let mut i = 0usize;
            while c.peek(i).is_some_and(is_ident_cont) {
                i += 1;
            }
            let is_char = c.peek(i) == Some(b'\'');
            for _ in 0..i {
                c.bump();
            }
            if is_char {
                c.bump();
                TokKind::Char
            } else {
                TokKind::Lifetime
            }
        }
        Some(_) => {
            // '(' , '1' , ' ' …
            c.bump();
            if c.peek(0) == Some(b'\'') {
                c.bump();
            }
            TokKind::Char
        }
        None => TokKind::Punct,
    }
}

/// Lexes a numeric literal (ints, floats, radix prefixes, suffixes,
/// exponents). `1.min(x)` stays `1` `.` `min`; `1.0e-5` is one token.
fn lex_number(c: &mut Cursor<'_>) {
    loop {
        match c.peek(0) {
            Some(b) if b.is_ascii_alphanumeric() || b == b'_' => {
                c.bump();
                // Exponent sign: 1e-5, 2E+3.
                if (b == b'e' || b == b'E')
                    && matches!(c.peek(0), Some(b'+') | Some(b'-'))
                    && c.peek(1).is_some_and(|d| d.is_ascii_digit())
                {
                    c.bump();
                }
            }
            Some(b'.') if c.peek(1).is_some_and(|d| d.is_ascii_digit()) => {
                c.bump();
            }
            _ => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        // `unwrap()` inside the raw string must not surface as idents.
        let src = r##"let x = r#"call .unwrap() now "quoted" here"#; x.real()"##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "x", "real"]);
        let toks = kinds(src);
        assert!(
            toks.iter()
                .any(|(k, t)| *k == TokKind::Str && t.starts_with("r#\"")),
            "{toks:?}"
        );
    }

    #[test]
    fn raw_string_prefix_is_not_an_ident() {
        let ids = idents(r###"f(r##"nested "# inside"##) + g()"###);
        assert_eq!(ids, vec!["f", "g"]);
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let ids = idents("r#match + r#fn + bare");
        assert_eq!(ids, vec!["match", "fn", "bare"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let ids = idents(src);
        assert_eq!(ids, vec!["a", "b"]);
        let comments: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Comment)
            .collect();
        assert_eq!(comments.len(), 1);
        assert!(comments[0].text.contains("inner"));
    }

    #[test]
    fn unterminated_block_comment_consumes_rest() {
        let ids = idents("a /* never closed unwrap()");
        assert_eq!(ids, vec!["a"]);
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let d = '\\''; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert_eq!(chars.len(), 2, "{toks:?}");
    }

    #[test]
    fn static_lifetime_and_byte_char() {
        let toks = kinds("&'static str; b'x'; b\"bytes\"; '\\u{1F600}'");
        assert!(toks.contains(&(TokKind::Lifetime, "'static".to_owned())));
        assert!(toks.contains(&(TokKind::Char, "b'x'".to_owned())));
        assert!(toks.contains(&(TokKind::Str, "b\"bytes\"".to_owned())));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Char && t.contains("1F600")));
    }

    #[test]
    fn strings_with_escapes() {
        let ids = idents(r#"call("quoted \" unwrap() \\", other)"#);
        assert_eq!(ids, vec!["call", "other"]);
    }

    #[test]
    fn macro_bodies_still_tokenize() {
        let src = "macro_rules! m { ($x:expr) => { $x.unwrap() } } panic!(\"no {}\", 1);";
        let ids = idents(src);
        assert!(ids.contains(&"unwrap".to_owned()));
        assert!(ids.contains(&"panic".to_owned()));
        // The panic format string stays a string.
        assert!(lex(src)
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "\"no {}\""));
    }

    #[test]
    fn numbers_do_not_eat_method_calls() {
        let toks = kinds("1.min(2) + 1.0e-5 + 0xFF_u32 + 1_000");
        assert!(toks.contains(&(TokKind::Num, "1".to_owned())));
        assert!(toks.contains(&(TokKind::Ident, "min".to_owned())));
        assert!(toks.contains(&(TokKind::Num, "1.0e-5".to_owned())));
        assert!(toks.contains(&(TokKind::Num, "0xFF_u32".to_owned())));
        assert!(toks.contains(&(TokKind::Num, "1_000".to_owned())));
    }

    #[test]
    fn positions_are_one_based_and_line_accurate() {
        let toks = lex("a\n  bb\n\tccc");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!((toks[2].line, toks[2].col), (3, 2));
    }

    #[test]
    fn line_comment_variants() {
        let src = "/// doc\n//! inner\n// plain fremont-lint: allow(x) -- y\ncode";
        let comments: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Comment)
            .map(|t| t.text)
            .collect();
        assert_eq!(comments.len(), 3);
        assert!(comments[2].contains("fremont-lint"));
        assert_eq!(
            idents(src),
            vec!["code"],
            "comment words are not code idents"
        );
    }

    #[test]
    fn c_string_literals() {
        let ids = idents("f(c\"const char\", cr#\"raw c\"#)");
        assert_eq!(ids, vec!["f"]);
    }

    #[test]
    fn byte_spans_tile_the_source() {
        let src = "fn f<'a>(x: &'a str) -> u8 { r#match + 1.0e-5 /* c */ + b'x' }";
        let toks = lex(src);
        let mut pos = 0usize;
        for t in &toks {
            assert!(t.start >= pos, "overlap at {t:?}");
            assert!(
                src[pos..t.start].bytes().all(|b| b.is_ascii_whitespace()),
                "non-whitespace gap before {t:?}"
            );
            let spanned = &src[t.start..t.end];
            assert!(
                spanned == t.text || spanned == format!("r#{}", t.text),
                "span text mismatch: {spanned:?} vs {:?}",
                t.text
            );
            pos = t.end;
        }
        assert!(src[pos..].bytes().all(|b| b.is_ascii_whitespace()));
    }

    #[test]
    fn raw_identifier_span_includes_the_prefix() {
        let toks = lex("r#fn + g");
        assert_eq!(toks[0].text, "fn");
        assert_eq!((toks[0].start, toks[0].end), (0, 4));
    }
}
