//! Cross-crate symbol table and call graph.
//!
//! `fremont-lint`'s interprocedural rules (`lock-order`, `panic`,
//! `ignored-io`, `shard-lock-order`) follow call chains like
//! `DiscoveryDriver::run_for → Journal::apply_batch →
//! WalWriter::append_batch` that cross crate boundaries. This module
//! builds the workspace-wide view those rules share:
//!
//! * a **symbol table** of every non-test `fn` definition, keyed by
//!   `(crate, name)`;
//! * per-file **import maps** from `use fremont_*::…` statements
//!   (including `as` renames and `{…}` groups; globs are ignored);
//! * **call sites** with their path qualifier head, so
//!   `fremont_journal::store::f()` and `Journal::apply_batch()` (with
//!   `Journal` imported) resolve into the defining crate.
//!
//! Resolution keeps the one-definition precision guard *per resolved
//! crate*: a callee links only when its name has exactly one non-test
//! definition in the crate the qualifier/import selects (or, for bare
//! names, in the caller's own crate — falling back to a
//! workspace-unique definition). Ambiguous names — trait methods with
//! several impls, std lookalikes (`new`, `insert`, `get`) — never link:
//! a wrong edge would manufacture findings that force untrue
//! suppressions, while a missing edge at worst loses a chain the
//! direct-scan rules usually catch anyway.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Tok, TokKind};
use crate::rules::matching_close;
use crate::Workspace;

/// Keywords never treated as function calls.
pub(crate) const KEYWORDS: [&str; 14] = [
    "if", "else", "while", "for", "loop", "match", "return", "let", "fn", "move", "in", "as",
    "where", "unsafe",
];

/// Path heads that never select a workspace crate.
const PATH_KEYWORDS: [&str; 3] = ["self", "crate", "super"];

/// One `fn` definition (token extent of its body).
pub struct FnDef {
    pub name: String,
    /// Index into `Workspace::files`.
    pub file: usize,
    /// First token index inside the body `{…}`.
    pub body_start: usize,
    /// Token index of the body's closing `}`.
    pub body_end: usize,
    /// Line of the `fn` name token.
    pub line: u32,
    /// Defined inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
}

/// One call site inside a function body.
pub struct CallSite {
    /// The called name (last path segment).
    pub name: String,
    /// Head segment of a `::` path qualifier, if any:
    /// `fremont_journal::store::f()` → `fremont_journal`,
    /// `Journal::apply_batch()` → `Journal`; `None` for bare calls and
    /// method calls.
    pub qual: Option<String>,
    pub line: u32,
    pub col: u32,
}

/// The workspace-wide symbol table + resolved call graph.
pub struct CallGraph {
    /// Every `fn` found, test or not, in workspace file order.
    pub fns: Vec<FnDef>,
    /// Resolved call edges: `crate::name` → set of callee `crate::name`s
    /// (non-test functions only).
    pub calls: BTreeMap<String, BTreeSet<String>>,
    file_crate: Vec<String>,
    imports: Vec<BTreeMap<String, String>>,
    extern_to_key: BTreeMap<String, String>,
    def_count: BTreeMap<(String, String), usize>,
    /// name → (workspace-wide non-test definition count, sole crate).
    global: BTreeMap<String, (usize, String)>,
}

/// The crate a workspace-relative path belongs to (`crates/net/src/…` →
/// `net`; anything else is keyed by its top-level directory, so the root
/// `fremont` facade is `src`).
pub fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_owned(),
        (Some(top), _) => top.to_owned(),
        _ => String::new(),
    }
}

impl CallGraph {
    /// Builds the symbol table, import maps, and resolved call edges.
    pub fn build(ws: &Workspace) -> CallGraph {
        let file_crate: Vec<String> = ws.files.iter().map(|f| crate_of(&f.path)).collect();

        // Extern crate names: `crates/net` is `use fremont_net::…`; the
        // root facade package is `fremont` itself.
        let mut extern_to_key: BTreeMap<String, String> = BTreeMap::new();
        for key in file_crate.iter().collect::<BTreeSet<_>>() {
            let ext = if key == "src" {
                "fremont".to_owned()
            } else {
                format!("fremont_{}", key.replace('-', "_"))
            };
            extern_to_key.insert(ext, key.clone());
        }

        let mut fns = Vec::new();
        for (fi, file) in ws.files.iter().enumerate() {
            collect_functions(fi, &file.code, &mut fns);
        }
        for f in &mut fns {
            f.in_test = ws.files[f.file].in_test(f.line);
        }

        let mut def_count: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut global: BTreeMap<String, (usize, String)> = BTreeMap::new();
        for f in fns.iter().filter(|f| !f.in_test) {
            let krate = file_crate[f.file].clone();
            *def_count
                .entry((krate.clone(), f.name.clone()))
                .or_insert(0) += 1;
            let g = global.entry(f.name.clone()).or_insert((0, krate.clone()));
            g.0 += 1;
            g.1 = krate;
        }
        // `global` must point at a *sole* crate: names defined once each
        // in two crates are ambiguous, so spoil their entry.
        let mut per_crate_names: BTreeMap<&String, BTreeSet<&String>> = BTreeMap::new();
        for (krate, name) in def_count.keys() {
            per_crate_names.entry(name).or_default().insert(krate);
        }
        for (name, krates) in per_crate_names {
            if krates.len() > 1 {
                if let Some(g) = global.get_mut(name) {
                    g.0 = usize::MAX; // never equal to 1
                }
            }
        }

        let imports: Vec<BTreeMap<String, String>> = ws
            .files
            .iter()
            .map(|f| parse_imports(&f.code, &extern_to_key))
            .collect();

        let mut cg = CallGraph {
            fns,
            calls: BTreeMap::new(),
            file_crate,
            imports,
            extern_to_key,
            def_count,
            global,
        };

        let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for f in cg.fns.iter().filter(|f| !f.in_test) {
            let Some(qname) = cg.qname_of(f) else {
                continue;
            };
            let code = &ws.files[f.file].code;
            let callees = calls.entry(qname).or_default();
            for site in calls_in_range(code, f.body_start, f.body_end) {
                if let Some(q) = cg.resolve(f.file, &site) {
                    callees.insert(q);
                }
            }
        }
        cg.calls = calls;
        cg
    }

    /// The crate key of a workspace file.
    pub fn crate_of_file(&self, file: usize) -> &str {
        &self.file_crate[file]
    }

    /// The qualified name a definition contributes to the call graph,
    /// when its bare name is unambiguous in its own crate.
    pub fn qname_of(&self, f: &FnDef) -> Option<String> {
        if f.in_test {
            return None;
        }
        self.unique_in(&self.file_crate[f.file], &f.name)
    }

    /// Resolves a call site from `caller_file` to a defining
    /// `crate::name`, or `None` when ambiguous (see module docs).
    pub fn resolve(&self, caller_file: usize, site: &CallSite) -> Option<String> {
        if let Some(q) = &site.qual {
            if let Some(key) = self.extern_to_key.get(q) {
                return self.unique_in(key, &site.name);
            }
            if let Some(key) = self.imports[caller_file].get(q) {
                return self.unique_in(key, &site.name);
            }
            // `crate::`, `self::`, local module or type paths.
            return self.unique_in(&self.file_crate[caller_file], &site.name);
        }
        let home = &self.file_crate[caller_file];
        match self.count(home, &site.name) {
            1 => Some(format!("{home}::{}", site.name)),
            0 => {
                // A directly imported free function, else the workspace
                // fallback: exactly one definition anywhere.
                if let Some(key) = self.imports[caller_file].get(&site.name) {
                    return self.unique_in(key, &site.name);
                }
                match self.global.get(&site.name) {
                    Some((1, krate)) => Some(format!("{krate}::{}", site.name)),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    fn count(&self, krate: &str, name: &str) -> usize {
        self.def_count
            .get(&(krate.to_owned(), name.to_owned()))
            .copied()
            .unwrap_or(0)
    }

    fn unique_in(&self, krate: &str, name: &str) -> Option<String> {
        if self.count(krate, name) == 1 {
            Some(format!("{krate}::{name}"))
        } else {
            None
        }
    }
}

/// Finds `fn name … { body }` items (test flag filled in later).
fn collect_functions(file: usize, code: &[Tok], out: &mut Vec<FnDef>) {
    let mut i = 0usize;
    while i < code.len() {
        if !code[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = code.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Parameter list.
        let mut j = i + 2;
        while j < code.len() && !code[j].is_punct('(') {
            j += 1;
        }
        if j >= code.len() {
            break;
        }
        let params_close = matching_close(code, j);
        // Body `{` or declaration `;`.
        let mut k = params_close + 1;
        while k < code.len() && !code[k].is_punct('{') && !code[k].is_punct(';') {
            k += 1;
        }
        if k >= code.len() || code[k].is_punct(';') {
            i = k.max(i + 1);
            continue;
        }
        let body_end = matching_close(code, k);
        out.push(FnDef {
            name: name_tok.text.clone(),
            file,
            body_start: k + 1,
            body_end,
            line: name_tok.line,
            in_test: false,
        });
        // Continue *inside* the body so nested fns are found too; their
        // calls are attributed to both, which only over-reports.
        i = k + 1;
    }
}

/// Parses `use fremont_*::…` statements into an imported-name → crate
/// map. Handles simple paths, `{…}` groups (nested), and `as` renames;
/// `*` globs and `self` re-exports record nothing.
fn parse_imports(
    code: &[Tok],
    extern_to_key: &BTreeMap<String, String>,
) -> BTreeMap<String, String> {
    let mut imports = BTreeMap::new();
    let mut i = 0usize;
    while i < code.len() {
        if !code[i].is_ident("use") {
            i += 1;
            continue;
        }
        let stmt_ok = i == 0
            || code[i - 1].is_punct(';')
            || code[i - 1].is_punct('{')
            || code[i - 1].is_punct('}')
            || code[i - 1].is_ident("pub");
        let Some(head) = code.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        let Some(key) = extern_to_key.get(&head.text).filter(|_| stmt_ok) else {
            // Not a workspace crate: skip to the statement's `;`.
            while i < code.len() && !code[i].is_punct(';') {
                i += 1;
            }
            continue;
        };
        // Walk to `;`, recording each leaf name (an ident followed by
        // `,`, `}`, `;`) or `as` alias.
        let mut last: Option<String> = None;
        let mut t = i + 2;
        while t < code.len() && !code[t].is_punct(';') {
            let tok = &code[t];
            if tok.kind == TokKind::Ident {
                if tok.text == "as" {
                    if let Some(alias) = code.get(t + 1).filter(|a| a.kind == TokKind::Ident) {
                        imports.insert(alias.text.clone(), key.clone());
                        last = None;
                        t += 2;
                        continue;
                    }
                } else if PATH_KEYWORDS.contains(&tok.text.as_str()) {
                    last = None;
                } else {
                    last = Some(tok.text.clone());
                }
            } else if tok.is_punct(',') || tok.is_punct('}') {
                if let Some(l) = last.take() {
                    imports.insert(l, key.clone());
                }
            } else if tok.is_punct('{') || tok.is_punct('*') {
                last = None;
            }
            t += 1;
        }
        if let Some(l) = last {
            imports.insert(l, key.clone());
        }
        i = t;
    }
    imports
}

/// Function/method calls in `[start, end)` — an identifier directly
/// followed by `(`, excluding keywords, macros (`name!`), and the lock
/// methods (`lock`/`read`/`write`, which the lock rules handle as
/// acquisitions). Path qualifiers are walked back to their head segment.
pub fn calls_in_range(code: &[Tok], start: usize, end: usize) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in start..end.min(code.len()) {
        let t = &code[i];
        if t.kind != TokKind::Ident
            || KEYWORDS.contains(&t.text.as_str())
            || matches!(t.text.as_str(), "lock" | "read" | "write")
        {
            continue;
        }
        if i > 0 && code[i - 1].is_punct('!') {
            continue;
        }
        if !code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        // Walk back over `head :: … ::` to the path's first segment.
        let mut qual = None;
        let mut j = i;
        while j >= 3
            && code[j - 1].is_punct(':')
            && code[j - 2].is_punct(':')
            && code[j - 3].kind == TokKind::Ident
        {
            qual = Some(code[j - 3].text.clone());
            j -= 3;
        }
        out.push(CallSite {
            name: t.text.clone(),
            qual,
            line: t.line,
            col: t.col,
        });
    }
    out
}

/// Propagates a boolean property (e.g. "does file IO") backwards over
/// the call graph: the result contains every function that has it
/// directly (`seed`) or reaches one that does.
pub(crate) fn reach_flag(
    calls: &BTreeMap<String, BTreeSet<String>>,
    seed: &BTreeSet<String>,
) -> BTreeSet<String> {
    let mut hit = seed.clone();
    loop {
        let mut grew = false;
        for (name, callees) in calls {
            if !hit.contains(name) && callees.iter().any(|c| hit.contains(c)) {
                hit.insert(name.clone());
                grew = true;
            }
        }
        if !grew {
            return hit;
        }
    }
}

/// Propagates per-function sets (e.g. acquired lock labels) backwards
/// over the call graph.
pub(crate) fn reach_sets(
    calls: &BTreeMap<String, BTreeSet<String>>,
    own: &BTreeMap<String, BTreeSet<String>>,
) -> BTreeMap<String, BTreeSet<String>> {
    let mut reach = own.clone();
    loop {
        let mut grew = false;
        for (name, callees) in calls {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for c in callees {
                if let Some(ls) = reach.get(c) {
                    add.extend(ls.iter().cloned());
                }
            }
            let entry = reach.entry(name.clone()).or_default();
            let before = entry.len();
            entry.extend(add);
            grew |= entry.len() != before;
        }
        if !grew {
            return reach;
        }
    }
}

/// Propagates witness strings backwards: a function inherits the first
/// (in iteration order) witness among its callees, prefixed with the
/// call step, so findings can print the chain to the offending site.
pub(crate) fn reach_witness(
    calls: &BTreeMap<String, BTreeSet<String>>,
    seed: &BTreeMap<String, String>,
) -> BTreeMap<String, String> {
    let mut w = seed.clone();
    loop {
        let mut grew = false;
        let mut add: Vec<(String, String)> = Vec::new();
        for (name, callees) in calls {
            if w.contains_key(name) {
                continue;
            }
            if let Some(c) = callees.iter().find(|c| w.contains_key(*c)) {
                let tail = &w[c];
                let step = if tail.len() > 160 {
                    format!("via `{c}` (…)")
                } else {
                    format!("via `{c}` {tail}")
                };
                add.push((name.clone(), step));
            }
        }
        for (k, v) in add {
            w.insert(k, v);
            grew = true;
        }
        if !grew {
            return w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(sources: &[(&str, &str)]) -> (Workspace, CallGraph) {
        let ws = Workspace::from_sources(sources);
        let cg = CallGraph::build(&ws);
        (ws, cg)
    }

    fn resolve_first_call(ws: &Workspace, cg: &CallGraph, file: usize) -> Option<String> {
        let f = cg
            .fns
            .iter()
            .find(|f| f.file == file && f.name == "caller")
            .expect("caller fn");
        let sites = calls_in_range(&ws.files[file].code, f.body_start, f.body_end);
        sites.iter().find_map(|s| cg.resolve(file, s))
    }

    #[test]
    fn same_crate_unique_name_links() {
        let (ws, cg) = graph(&[(
            "crates/a/src/l.rs",
            "fn caller() { helper(); }\nfn helper() {}",
        )]);
        assert_eq!(
            resolve_first_call(&ws, &cg, 0).as_deref(),
            Some("a::helper")
        );
    }

    #[test]
    fn workspace_unique_name_links_across_crates() {
        let (ws, cg) = graph(&[
            ("crates/a/src/l.rs", "fn caller() { helper(); }"),
            ("crates/b/src/m.rs", "fn helper() {}"),
        ]);
        assert_eq!(
            resolve_first_call(&ws, &cg, 0).as_deref(),
            Some("b::helper")
        );
    }

    #[test]
    fn name_defined_in_two_crates_is_ambiguous() {
        let (ws, cg) = graph(&[
            ("crates/a/src/l.rs", "fn caller() { helper(); }"),
            ("crates/b/src/m.rs", "fn helper() {}"),
            ("crates/c/src/n.rs", "fn helper() {}"),
        ]);
        assert_eq!(resolve_first_call(&ws, &cg, 0), None);
    }

    #[test]
    fn qualified_path_selects_the_crate() {
        // `helper` also exists in the caller's crate, but the
        // fully-qualified path overrides the bare-name rule.
        let (ws, cg) = graph(&[
            (
                "crates/a/src/l.rs",
                "fn caller() { fremont_b::util::helper(); }\nfn helper() {}",
            ),
            ("crates/b/src/m.rs", "fn helper() {}"),
        ]);
        assert_eq!(
            resolve_first_call(&ws, &cg, 0).as_deref(),
            Some("b::helper")
        );
    }

    #[test]
    fn imported_type_method_selects_the_crate() {
        let (ws, cg) = graph(&[
            (
                "crates/a/src/l.rs",
                "use fremont_b::store::Journal;\nfn caller() { Journal::flush_all(); }",
            ),
            ("crates/b/src/m.rs", "fn flush_all() {}"),
            ("crates/c/src/n.rs", "fn flush_all() {}"),
        ]);
        assert_eq!(
            resolve_first_call(&ws, &cg, 0).as_deref(),
            Some("b::flush_all")
        );
    }

    #[test]
    fn import_groups_and_renames() {
        let (ws, cg) = graph(&[
            (
                "crates/a/src/l.rs",
                "use fremont_b::{store::{Journal as J, other}, x::Y};\nfn caller() { J::flush_all(); }",
            ),
            ("crates/b/src/m.rs", "fn flush_all() {}"),
            ("crates/c/src/n.rs", "fn flush_all() {}"),
        ]);
        assert_eq!(
            resolve_first_call(&ws, &cg, 0).as_deref(),
            Some("b::flush_all")
        );
    }

    #[test]
    fn ambiguous_in_selected_crate_does_not_link() {
        let (ws, cg) = graph(&[
            ("crates/a/src/l.rs", "fn caller() { fremont_b::helper(); }"),
            (
                "crates/b/src/m.rs",
                "fn helper() {}\nmod x { fn helper() {} }",
            ),
        ]);
        assert_eq!(resolve_first_call(&ws, &cg, 0), None);
    }

    #[test]
    fn test_definitions_do_not_pollute_the_table() {
        // The test-only `helper` must not make the real one ambiguous.
        let (ws, cg) = graph(&[
            ("crates/a/src/l.rs", "fn caller() { helper(); }"),
            ("crates/b/src/m.rs", "fn helper() {}"),
            (
                "crates/c/src/t.rs",
                "#[cfg(test)]\nmod tests { fn helper() {} }",
            ),
        ]);
        assert_eq!(
            resolve_first_call(&ws, &cg, 0).as_deref(),
            Some("b::helper")
        );
    }

    #[test]
    fn call_edges_cross_crates() {
        let (_ws, cg) = graph(&[
            (
                "crates/a/src/l.rs",
                "pub fn run_for() { fremont_b::store::apply_batch(); }",
            ),
            (
                "crates/b/src/m.rs",
                "pub fn apply_batch() { fremont_c::wal::append_batch(); }",
            ),
            ("crates/c/src/n.rs", "pub fn append_batch() {}"),
        ]);
        assert!(cg.calls["a::run_for"].contains("b::apply_batch"));
        assert!(cg.calls["b::apply_batch"].contains("c::append_batch"));
    }

    #[test]
    fn self_and_crate_paths_resolve_same_crate() {
        let (ws, cg) = graph(&[
            (
                "crates/a/src/l.rs",
                "fn caller() { crate::util::helper(); }\nfn helper() {}",
            ),
            ("crates/b/src/m.rs", "fn helper() {}"),
        ]);
        assert_eq!(
            resolve_first_call(&ws, &cg, 0).as_deref(),
            Some("a::helper")
        );
    }

    #[test]
    fn glob_imports_record_nothing() {
        let (ws, cg) = graph(&[
            (
                "crates/a/src/l.rs",
                "use fremont_b::util::*;\nfn caller() { helper(); }",
            ),
            ("crates/b/src/m.rs", "fn helper() {}"),
            ("crates/c/src/n.rs", "fn helper() {}"),
        ]);
        // Two crates define it and the glob gives no preference.
        assert_eq!(resolve_first_call(&ws, &cg, 0), None);
    }
}
