//! `fremont-lint`: in-tree static analysis for Fremont's whole-codebase
//! invariants.
//!
//! The Journal's value is cross-correlating timestamped observations,
//! which only holds if discovery runs are replayable and the durable WAL
//! never silently changes format or panics mid-append. Those are
//! properties no unit test can guard — one `SystemTime::now()` added to
//! an explorer breaks replay everywhere — so this crate walks every
//! `.rs` file in the workspace with its own token-level lexer
//! ([`lexer`]), builds a cross-crate symbol table and call graph
//! ([`callgraph`]), and enforces seven rules:
//!
//! | rule               | invariant |
//! |--------------------|-----------|
//! | `determinism`      | no wall-clock / unseeded RNG outside the clock module |
//! | `panic`            | no `unwrap`/`expect`/`panic!` reachable from hot/IO paths |
//! | `ignored-io`       | no `let _ =` discarding a (transitive) flush/sync result |
//! | `lock-order`       | no lock cycles; no lock held across file IO |
//! | `shard-lock-order` | the Journal store's meta-gate-then-ascending-shards discipline |
//! | `metric-registry`  | `fremont_*` metric names are append-only vs a golden |
//! | `wal-schema`       | serialized record types are append-only vs a golden |
//!
//! `panic`, `ignored-io`, and the lock rules follow call chains across
//! crate boundaries (resolved through `use` imports and qualified
//! paths, with a one-definition precision guard per resolved crate).
//! The acquired-while-held lock edges are exported to
//! `crates/lint/lock-order.golden`, the same DAG the runtime lock
//! sanitizer (`parking_lot`'s `tracked` feature) asserts on every test
//! run — static pass and dynamic sanitizer cross-validate one golden.
//!
//! Findings can be suppressed inline with
//! `// fremont-lint: allow(<rule>) -- <reason>` on the offending line or
//! the line above; suppressions are counted against a workspace budget
//! and unused or reasonless ones are themselves violations.

pub mod callgraph;
pub mod fix;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod suppress;

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

use lexer::{lex, Tok, TokKind};
use suppress::Suppression;

/// All rule names, in reporting order.
pub const RULES: [&str; 7] = [
    "determinism",
    "panic",
    "ignored-io",
    "lock-order",
    "shard-lock-order",
    "metric-registry",
    "wal-schema",
];

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory (does not affect the exit code): e.g. an appended WAL
    /// variant awaiting a golden refresh.
    Warning,
    /// An invariant violation: fails the build.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule fired (one of [`RULES`], or `suppression`).
    pub rule: &'static str,
    /// Workspace-relative path (unix separators).
    pub path: String,
    /// 1-based source line (0 when the finding is file-level).
    pub line: u32,
    /// 1-based source column (0 when unknown).
    pub col: u32,
    pub severity: Severity,
    pub message: String,
}

/// Analyzer configuration: which paths each rule covers.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root (where `Cargo.toml` with `[workspace]` lives).
    pub root: PathBuf,
    /// Path prefixes where wall-clock/RNG use is allowed (the clock
    /// module; `vendor/` and test code are always exempt).
    pub clock_allowlist: Vec<String>,
    /// Path prefixes the panic-freedom rule covers (hot/IO paths).
    pub panic_scope: Vec<String>,
    /// Path prefixes whose serialized types are schema-fingerprinted.
    pub schema_scope: Vec<String>,
    /// Workspace-relative path of the committed schema golden.
    pub golden_path: String,
    /// Path prefixes the `shard-lock-order` rule covers (the sharded
    /// Journal store).
    pub shard_lock_scope: Vec<String>,
    /// Workspace-relative path of the committed metric-name golden.
    pub metrics_golden_path: String,
    /// Path prefixes excluded from metric collection (the lint crate's
    /// own fixtures and matchers).
    pub metric_exclude: Vec<String>,
    /// Workspace-relative path of the committed lock-order DAG golden
    /// (also baked into the runtime sanitizer).
    pub lock_golden_path: String,
    /// Receiver-label → sanitizer-label map: lock fields whose runtime
    /// constructors carry a `labeled(…)` name. Only edges between
    /// mapped labels are exported to the lock-order golden.
    pub lock_labels: Vec<(String, String)>,
    /// Maximum `fremont-lint: allow` annotations tolerated workspace-wide.
    pub max_suppressions: usize,
}

impl Config {
    /// The Fremont workspace defaults.
    pub fn for_root(root: PathBuf) -> Self {
        Config {
            root,
            clock_allowlist: vec!["crates/journal/src/time.rs".to_owned()],
            panic_scope: vec![
                "crates/storage/".to_owned(),
                "crates/explorers/".to_owned(),
                "crates/core/src/driver.rs".to_owned(),
                "crates/telemetry/".to_owned(),
                "crates/journal/src/store/".to_owned(),
                "crates/netsim/src/faults.rs".to_owned(),
                "crates/netsim/src/sched.rs".to_owned(),
                "crates/mc/".to_owned(),
            ],
            schema_scope: vec![
                "crates/journal/src/".to_owned(),
                "crates/storage/src/".to_owned(),
                "crates/netsim/src/faults.rs".to_owned(),
            ],
            golden_path: "crates/lint/wal-schema.golden".to_owned(),
            shard_lock_scope: vec!["crates/journal/src/store/".to_owned()],
            metrics_golden_path: "crates/lint/metrics.golden".to_owned(),
            metric_exclude: vec!["crates/lint/".to_owned()],
            lock_golden_path: "crates/lint/lock-order.golden".to_owned(),
            lock_labels: vec![
                ("meta".to_owned(), "journal.meta".to_owned()),
                ("shards".to_owned(), "journal.shard".to_owned()),
                ("wal".to_owned(), "storage.wal".to_owned()),
                ("conns".to_owned(), "journal.conns".to_owned()),
            ],
            max_suppressions: 15,
        }
    }
}

/// One lexed source file.
pub struct SourceFile {
    /// Workspace-relative path, unix separators.
    pub path: String,
    /// Code tokens (comments stripped).
    pub code: Vec<Tok>,
    /// Suppression annotations parsed from comments.
    pub suppressions: Vec<Suppression>,
    /// Line ranges (inclusive) belonging to `#[cfg(test)]` / `#[test]`
    /// items; rules skip them.
    test_spans: Vec<(u32, u32)>,
    /// True when the whole file is test-only code: its out-of-line
    /// `mod` declaration in the parent module is `#[cfg(test)]`-gated.
    all_test: bool,
}

impl SourceFile {
    /// Lexes `content` as the file at `path`.
    pub fn new(path: String, content: &str) -> Self {
        let toks = lex(content);
        let code: Vec<Tok> = toks
            .iter()
            .filter(|t| t.kind != TokKind::Comment)
            .cloned()
            .collect();
        let suppressions = suppress::parse(&toks);
        let test_spans = find_test_spans(&code);
        SourceFile {
            path,
            code,
            suppressions,
            test_spans,
            all_test: false,
        }
    }

    /// True when `line` is inside test-only code.
    pub fn in_test(&self, line: u32) -> bool {
        self.all_test || self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// True when the path starts with any of the given prefixes.
    pub fn in_scope(&self, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| self.path.starts_with(p.as_str()))
    }
}

/// Finds line spans of items annotated `#[cfg(test)]` or `#[test]`
/// (attribute through the end of the item's `{…}` block or `;`).
fn find_test_spans(code: &[Tok]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !(code[i].is_punct('#') && code.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let attr_line = code[i].line;
        let (attr_end, is_test) = scan_attr(code, i + 1);
        if !is_test {
            i = attr_end;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut j = attr_end;
        while j < code.len()
            && code[j].is_punct('#')
            && code.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            let (e, _) = scan_attr(code, j + 1);
            j = e;
        }
        // The item runs to its first top-level `{…}` block or `;`.
        let mut depth = 0i32;
        let mut end_line = code.get(j).map_or(attr_line, |t| t.line);
        while j < code.len() {
            let t = &code[j];
            end_line = t.line;
            match t.text.as_str() {
                "{" if t.kind == TokKind::Punct => depth += 1,
                "}" if t.kind == TokKind::Punct => {
                    depth -= 1;
                    if depth <= 0 {
                        break;
                    }
                }
                ";" if t.kind == TokKind::Punct && depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        spans.push((attr_line, end_line));
        i = j + 1;
    }
    spans
}

/// Scans an attribute starting at its `[` index; returns (index after
/// the closing `]`, whether it marks test-only code).
fn scan_attr(code: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut has_test = false;
    let mut has_not = false;
    let mut j = open;
    while j < code.len() {
        let t = &code[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return (j + 1, has_test && !has_not);
                    }
                }
                _ => {}
            }
        } else if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "test" => has_test = true,
                "not" => has_not = true,
                _ => {}
            }
        }
        j += 1;
    }
    (code.len(), false)
}

/// The loaded workspace: every analyzable `.rs` file.
pub struct Workspace {
    pub files: Vec<SourceFile>,
}

/// Directory names never descended into. `tests/`, `benches/`,
/// `examples/`, and `fixtures/` hold test-only code (the same exemption
/// as `#[cfg(test)]` modules); `vendor/` is third-party.
const SKIP_DIRS: [&str; 7] = [
    "vendor", "target", "tests", "benches", "examples", "fixtures", ".git",
];

impl Workspace {
    /// Walks `root` collecting `.rs` files, skipping [`SKIP_DIRS`].
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut rel_paths = Vec::new();
        collect(root, root, &mut rel_paths)?;
        rel_paths.sort();
        let mut files = Vec::with_capacity(rel_paths.len());
        for rel in rel_paths {
            let content = std::fs::read_to_string(root.join(&rel))?;
            files.push(SourceFile::new(rel, &content));
        }
        mark_cfg_test_modules(&mut files);
        Ok(Workspace { files })
    }

    /// Builds a workspace from in-memory (path, content) pairs — the
    /// unit-test entry point.
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        let mut files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, c)| SourceFile::new((*p).to_owned(), c))
            .collect();
        mark_cfg_test_modules(&mut files);
        Workspace { files }
    }
}

/// The directory an out-of-line `mod foo;` in `path` resolves against:
/// `lib.rs`/`main.rs`/`mod.rs` own their directory, `bar.rs` owns `bar/`.
fn parent_module_dir(path: &str) -> String {
    let (dir, file) = match path.rsplit_once('/') {
        Some((d, f)) => (format!("{d}/"), f),
        None => (String::new(), path),
    };
    if matches!(file, "lib.rs" | "main.rs" | "mod.rs") {
        dir
    } else {
        format!("{dir}{}/", file.trim_end_matches(".rs"))
    }
}

/// Marks files test-only when their out-of-line `mod` declaration is
/// `#[cfg(test)]`-gated (e.g. `#[cfg(test)] mod testutil;`), iterating
/// so modules of test-only modules are covered too. `#[cfg(test)]` only
/// applies across files through this declaration, which per-file
/// `test_spans` cannot see.
fn mark_cfg_test_modules(files: &mut [SourceFile]) {
    loop {
        let mut test_files: BTreeSet<String> = BTreeSet::new();
        for f in files.iter() {
            for (i, t) in f.code.iter().enumerate() {
                if !(t.is_ident("mod")
                    && f.code.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
                    && f.code.get(i + 2).is_some_and(|n| n.is_punct(';'))
                    && f.in_test(t.line))
                {
                    continue;
                }
                let dir = parent_module_dir(&f.path);
                let name = &f.code[i + 1].text;
                test_files.insert(format!("{dir}{name}.rs"));
                test_files.insert(format!("{dir}{name}/mod.rs"));
            }
        }
        let mut changed = false;
        for f in files.iter_mut() {
            if !f.all_test && test_files.contains(&f.path) {
                f.all_test = true;
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// The full result of one analyzer run.
pub struct Analysis {
    /// Findings that survived suppression, sorted by position.
    pub violations: Vec<Violation>,
    /// Findings silenced by a matching suppression, sorted by position
    /// (surfaced in `--json` output so tooling can audit what the
    /// annotations are hiding).
    pub suppressed: Vec<Violation>,
    /// Suppression annotations that matched a finding.
    pub suppressions_used: usize,
    /// All suppression annotations seen.
    pub suppressions_total: usize,
    /// Files scanned.
    pub files: usize,
}

impl Analysis {
    /// Error-severity findings.
    pub fn errors(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Error)
            .count()
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Warning)
            .count()
    }
}

/// The three committed goldens, re-rendered. Returned from [`analyze`]
/// when `write_golden` is set, for the caller to persist.
pub struct Goldens {
    /// New content for `Config::golden_path` (WAL record fingerprints).
    pub wal_schema: String,
    /// New content for `Config::metrics_golden_path` (metric names).
    pub metrics: String,
    /// New content for `Config::lock_golden_path` (the acquired-while-
    /// held DAG the runtime sanitizer also asserts).
    pub lock_order: String,
}

/// Maps a receiver label (`meta`, `shards[idx]`) to its sanitizer label
/// via `Config::lock_labels`, ignoring any index expression.
fn sanitizer_label(cfg: &Config, label: &str) -> Option<String> {
    let base = label.split('[').next().unwrap_or(label);
    cfg.lock_labels
        .iter()
        .find(|(k, _)| k == base)
        .map(|(_, v)| v.clone())
}

/// Renders the lock-order DAG golden: one `held -> acquired` line per
/// edge, sorted, over sanitizer labels.
fn render_lock_golden(edges: &BTreeSet<(String, String)>) -> String {
    let mut out = String::from(
        "# fremont-lint lock-order golden: the acquired-while-held DAG over sanitizer\n\
         # labels. The tracked-lock runtime asserts exactly these edges at runtime.\n\
         # Regenerate: cargo run -p fremont-lint -- --write-golden\n",
    );
    for (a, b) in edges {
        out.push_str(a);
        out.push_str(" -> ");
        out.push_str(b);
        out.push('\n');
    }
    out
}

/// Parses a lock-order golden back into its edge set.
pub fn parse_lock_golden(text: &str) -> BTreeSet<(String, String)> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            l.split_once("->")
                .map(|(a, b)| (a.trim().to_owned(), b.trim().to_owned()))
        })
        .collect()
}

/// Runs every rule over the workspace and applies suppressions.
///
/// `write_golden` regenerates the three committed goldens (WAL schema,
/// metric registry, lock-order DAG) instead of checking against them;
/// the returned [`Goldens`] holds the new contents for the caller to
/// persist.
pub fn analyze(ws: &Workspace, cfg: &Config, write_golden: bool) -> (Analysis, Option<Goldens>) {
    let cg = callgraph::CallGraph::build(ws);
    let mut raw: Vec<Violation> = Vec::new();
    raw.extend(rules::determinism::check(ws, cfg));
    raw.extend(rules::panics::check(ws, cfg, &cg));
    raw.extend(rules::ignored_io::check(ws, cfg, &cg));
    let lock = rules::lock_order::check(ws, cfg, &cg);
    raw.extend(lock.violations);
    let shard = rules::shard_lock_order::check(ws, cfg, &cg, &lock.reach_locks);
    raw.extend(shard.violations);
    let (metric_violations, metrics_golden) = rules::metric_registry::check(ws, cfg, write_golden);
    raw.extend(metric_violations);
    let (schema_violations, wal_golden) = rules::schema::check(ws, cfg, write_golden);
    raw.extend(schema_violations);

    // The acquired-while-held DAG over sanitizer labels — the contract
    // shared with the runtime lock sanitizer. Only edges between
    // runtime-labeled locks are exported.
    let mut sanitizer_edges: BTreeSet<(String, String)> = BTreeSet::new();
    for (a, b) in lock.edges.iter().chain(shard.edges.iter()) {
        if let (Some(sa), Some(sb)) = (sanitizer_label(cfg, a), sanitizer_label(cfg, b)) {
            if sa != sb {
                sanitizer_edges.insert((sa, sb));
            }
        }
    }
    let goldens = if write_golden {
        Some(Goldens {
            wal_schema: wal_golden.unwrap_or_default(),
            metrics: metrics_golden.unwrap_or_default(),
            lock_order: render_lock_golden(&sanitizer_edges),
        })
    } else {
        match std::fs::read_to_string(cfg.root.join(&cfg.lock_golden_path)) {
            Err(_) => raw.push(Violation {
                rule: "lock-order",
                path: cfg.lock_golden_path.clone(),
                line: 0,
                col: 0,
                severity: Severity::Error,
                message: format!(
                    "lock-order golden `{}` is missing — the runtime sanitizer asserts \
                     this DAG; generate it with --write-golden",
                    cfg.lock_golden_path
                ),
            }),
            Ok(text) => {
                let committed = parse_lock_golden(&text);
                for (a, b) in sanitizer_edges.difference(&committed) {
                    raw.push(Violation {
                        rule: "lock-order",
                        path: cfg.lock_golden_path.clone(),
                        line: 0,
                        col: 0,
                        severity: Severity::Warning,
                        message: format!(
                            "new lock-order edge `{a} -> {b}` is absent from the committed \
                             golden — review the acquisition order, then refresh with \
                             --write-golden so the sanitizer learns it"
                        ),
                    });
                }
                for (a, b) in committed.difference(&sanitizer_edges) {
                    raw.push(Violation {
                        rule: "lock-order",
                        path: cfg.lock_golden_path.clone(),
                        line: 0,
                        col: 0,
                        severity: Severity::Warning,
                        message: format!(
                            "stale lock-order edge `{a} -> {b}` — no acquisition site \
                             produces it; refresh with --write-golden so the static pass \
                             and the sanitizer agree"
                        ),
                    });
                }
            }
        }
        None
    };

    // Apply suppressions: an annotation covers its own line and the
    // next line, for its listed rules only.
    let mut violations = Vec::new();
    let mut suppressed_out = Vec::new();
    for v in raw {
        let suppressed = ws
            .files
            .iter()
            .find(|f| f.path == v.path)
            .map(|f| {
                f.suppressions.iter().any(|s| {
                    s.covers(v.rule, v.line) && {
                        s.mark_used();
                        true
                    }
                })
            })
            .unwrap_or(false);
        if suppressed {
            suppressed_out.push(v);
        } else {
            violations.push(v);
        }
    }

    // Suppression hygiene: a reason is mandatory; unused annotations rot.
    let mut used = 0usize;
    let mut total = 0usize;
    for f in &ws.files {
        for s in &f.suppressions {
            total += 1;
            if s.used() {
                used += 1;
            }
            if let Some(problem) = s.problem() {
                violations.push(Violation {
                    rule: "suppression",
                    path: f.path.clone(),
                    line: s.line,
                    col: 1,
                    severity: Severity::Error,
                    message: problem,
                });
            } else if !s.used() {
                violations.push(Violation {
                    rule: "suppression",
                    path: f.path.clone(),
                    line: s.line,
                    col: 1,
                    severity: Severity::Warning,
                    message: format!(
                        "unused suppression for `{}` — the finding it silenced is gone; remove it",
                        s.rules.join(", ")
                    ),
                });
            }
        }
    }
    if total > cfg.max_suppressions {
        violations.push(Violation {
            rule: "suppression",
            path: String::new(),
            line: 0,
            col: 0,
            severity: Severity::Error,
            message: format!(
                "{total} suppression annotations exceed the workspace budget of {} — fix findings instead of silencing them",
                cfg.max_suppressions
            ),
        });
    }

    let by_pos = |a: &Violation, b: &Violation| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    };
    violations.sort_by(by_pos);
    suppressed_out.sort_by(by_pos);
    (
        Analysis {
            violations,
            suppressed: suppressed_out,
            suppressions_used: used,
            suppressions_total: total,
            files: ws.files.len(),
        },
        goldens,
    )
}

/// Locates the workspace root: walks up from `start` looking for a
/// `Cargo.toml` containing `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_declarations_mark_the_whole_child_file() {
        let ws = Workspace::from_sources(&[
            (
                "crates/explorers/src/lib.rs",
                "#[cfg(test)]\nmod testutil;\nmod ping;\n",
            ),
            ("crates/explorers/src/testutil.rs", "pub fn topo() {}\n"),
            ("crates/explorers/src/ping.rs", "pub fn run() {}\n"),
        ]);
        let by_path = |p: &str| ws.files.iter().find(|f| f.path == p).unwrap();
        assert!(by_path("crates/explorers/src/testutil.rs").in_test(1));
        assert!(!by_path("crates/explorers/src/ping.rs").in_test(1));
    }

    #[test]
    fn test_only_marking_is_transitive_through_mod_rs() {
        let ws = Workspace::from_sources(&[
            ("src/lib.rs", "#[cfg(test)]\nmod harness;\n"),
            ("src/harness/mod.rs", "mod fixtures;\n"),
            ("src/harness/fixtures.rs", "pub fn all() {}\n"),
        ]);
        let fixtures = ws
            .files
            .iter()
            .find(|f| f.path == "src/harness/fixtures.rs")
            .unwrap();
        assert!(fixtures.in_test(1));
    }

    #[test]
    fn module_dirs_resolve_like_rustc() {
        assert_eq!(parent_module_dir("crates/x/src/lib.rs"), "crates/x/src/");
        assert_eq!(
            parent_module_dir("crates/x/src/a/mod.rs"),
            "crates/x/src/a/"
        );
        assert_eq!(parent_module_dir("crates/x/src/a.rs"), "crates/x/src/a/");
        assert_eq!(parent_module_dir("main.rs"), "");
    }
}
