//! `fremont-lint`: in-tree static analysis for Fremont's whole-codebase
//! invariants.
//!
//! The Journal's value is cross-correlating timestamped observations,
//! which only holds if discovery runs are replayable and the durable WAL
//! never silently changes format or panics mid-append. Those are
//! properties no unit test can guard — one `SystemTime::now()` added to
//! an explorer breaks replay everywhere — so this crate walks every
//! `.rs` file in the workspace with its own token-level lexer
//! ([`lexer`]) and enforces five rules:
//!
//! | rule          | invariant |
//! |---------------|-----------|
//! | `determinism` | no wall-clock / unseeded RNG outside the clock module |
//! | `panic`       | no `unwrap`/`expect`/`panic!` in hot/IO paths |
//! | `ignored-io`  | no `let _ =` discarding a flush/sync result |
//! | `lock-order`  | no lock cycles; no lock held across file IO |
//! | `wal-schema`  | serialized record types are append-only vs a golden |
//!
//! Findings can be suppressed inline with
//! `// fremont-lint: allow(<rule>) -- <reason>` on the offending line or
//! the line above; suppressions are counted against a workspace budget
//! and unused or reasonless ones are themselves violations.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod suppress;

use std::fmt;
use std::path::{Path, PathBuf};

use lexer::{lex, Tok, TokKind};
use suppress::Suppression;

/// All rule names, in reporting order.
pub const RULES: [&str; 5] = [
    "determinism",
    "panic",
    "ignored-io",
    "lock-order",
    "wal-schema",
];

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory (does not affect the exit code): e.g. an appended WAL
    /// variant awaiting a golden refresh.
    Warning,
    /// An invariant violation: fails the build.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule fired (one of [`RULES`], or `suppression`).
    pub rule: &'static str,
    /// Workspace-relative path (unix separators).
    pub path: String,
    /// 1-based source line (0 when the finding is file-level).
    pub line: u32,
    /// 1-based source column (0 when unknown).
    pub col: u32,
    pub severity: Severity,
    pub message: String,
}

/// Analyzer configuration: which paths each rule covers.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root (where `Cargo.toml` with `[workspace]` lives).
    pub root: PathBuf,
    /// Path prefixes where wall-clock/RNG use is allowed (the clock
    /// module; `vendor/` and test code are always exempt).
    pub clock_allowlist: Vec<String>,
    /// Path prefixes the panic-freedom rule covers (hot/IO paths).
    pub panic_scope: Vec<String>,
    /// Path prefixes whose serialized types are schema-fingerprinted.
    pub schema_scope: Vec<String>,
    /// Workspace-relative path of the committed schema golden.
    pub golden_path: String,
    /// Maximum `fremont-lint: allow` annotations tolerated workspace-wide.
    pub max_suppressions: usize,
}

impl Config {
    /// The Fremont workspace defaults.
    pub fn for_root(root: PathBuf) -> Self {
        Config {
            root,
            clock_allowlist: vec!["crates/journal/src/time.rs".to_owned()],
            panic_scope: vec![
                "crates/storage/".to_owned(),
                "crates/explorers/".to_owned(),
                "crates/core/src/driver.rs".to_owned(),
                "crates/telemetry/".to_owned(),
                "crates/journal/src/store/".to_owned(),
                "crates/netsim/src/faults.rs".to_owned(),
                "crates/mc/".to_owned(),
            ],
            schema_scope: vec![
                "crates/journal/src/".to_owned(),
                "crates/storage/src/".to_owned(),
                "crates/netsim/src/faults.rs".to_owned(),
            ],
            golden_path: "crates/lint/wal-schema.golden".to_owned(),
            max_suppressions: 15,
        }
    }
}

/// One lexed source file.
pub struct SourceFile {
    /// Workspace-relative path, unix separators.
    pub path: String,
    /// Code tokens (comments stripped).
    pub code: Vec<Tok>,
    /// Suppression annotations parsed from comments.
    pub suppressions: Vec<Suppression>,
    /// Line ranges (inclusive) belonging to `#[cfg(test)]` / `#[test]`
    /// items; rules skip them.
    test_spans: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lexes `content` as the file at `path`.
    pub fn new(path: String, content: &str) -> Self {
        let toks = lex(content);
        let code: Vec<Tok> = toks
            .iter()
            .filter(|t| t.kind != TokKind::Comment)
            .cloned()
            .collect();
        let suppressions = suppress::parse(&toks);
        let test_spans = find_test_spans(&code);
        SourceFile {
            path,
            code,
            suppressions,
            test_spans,
        }
    }

    /// True when `line` is inside test-only code.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// True when the path starts with any of the given prefixes.
    pub fn in_scope(&self, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| self.path.starts_with(p.as_str()))
    }
}

/// Finds line spans of items annotated `#[cfg(test)]` or `#[test]`
/// (attribute through the end of the item's `{…}` block or `;`).
fn find_test_spans(code: &[Tok]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !(code[i].is_punct('#') && code.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let attr_line = code[i].line;
        let (attr_end, is_test) = scan_attr(code, i + 1);
        if !is_test {
            i = attr_end;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut j = attr_end;
        while j < code.len()
            && code[j].is_punct('#')
            && code.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            let (e, _) = scan_attr(code, j + 1);
            j = e;
        }
        // The item runs to its first top-level `{…}` block or `;`.
        let mut depth = 0i32;
        let mut end_line = code.get(j).map_or(attr_line, |t| t.line);
        while j < code.len() {
            let t = &code[j];
            end_line = t.line;
            match t.text.as_str() {
                "{" if t.kind == TokKind::Punct => depth += 1,
                "}" if t.kind == TokKind::Punct => {
                    depth -= 1;
                    if depth <= 0 {
                        break;
                    }
                }
                ";" if t.kind == TokKind::Punct && depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        spans.push((attr_line, end_line));
        i = j + 1;
    }
    spans
}

/// Scans an attribute starting at its `[` index; returns (index after
/// the closing `]`, whether it marks test-only code).
fn scan_attr(code: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut has_test = false;
    let mut has_not = false;
    let mut j = open;
    while j < code.len() {
        let t = &code[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return (j + 1, has_test && !has_not);
                    }
                }
                _ => {}
            }
        } else if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "test" => has_test = true,
                "not" => has_not = true,
                _ => {}
            }
        }
        j += 1;
    }
    (code.len(), false)
}

/// The loaded workspace: every analyzable `.rs` file.
pub struct Workspace {
    pub files: Vec<SourceFile>,
}

/// Directory names never descended into. `tests/`, `benches/`,
/// `examples/`, and `fixtures/` hold test-only code (the same exemption
/// as `#[cfg(test)]` modules); `vendor/` is third-party.
const SKIP_DIRS: [&str; 7] = [
    "vendor", "target", "tests", "benches", "examples", "fixtures", ".git",
];

impl Workspace {
    /// Walks `root` collecting `.rs` files, skipping [`SKIP_DIRS`].
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut rel_paths = Vec::new();
        collect(root, root, &mut rel_paths)?;
        rel_paths.sort();
        let mut files = Vec::with_capacity(rel_paths.len());
        for rel in rel_paths {
            let content = std::fs::read_to_string(root.join(&rel))?;
            files.push(SourceFile::new(rel, &content));
        }
        Ok(Workspace { files })
    }

    /// Builds a workspace from in-memory (path, content) pairs — the
    /// unit-test entry point.
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: sources
                .iter()
                .map(|(p, c)| SourceFile::new((*p).to_owned(), c))
                .collect(),
        }
    }
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// The full result of one analyzer run.
pub struct Analysis {
    /// Findings that survived suppression, sorted by position.
    pub violations: Vec<Violation>,
    /// Suppression annotations that matched a finding.
    pub suppressions_used: usize,
    /// All suppression annotations seen.
    pub suppressions_total: usize,
    /// Files scanned.
    pub files: usize,
}

impl Analysis {
    /// Error-severity findings.
    pub fn errors(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Error)
            .count()
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Warning)
            .count()
    }
}

/// Runs every rule over the workspace and applies suppressions.
///
/// `write_golden` regenerates the WAL-schema golden instead of checking
/// against it (the returned string is the new golden content for the
/// caller to persist).
pub fn analyze(ws: &Workspace, cfg: &Config, write_golden: bool) -> (Analysis, Option<String>) {
    let mut raw: Vec<Violation> = Vec::new();
    raw.extend(rules::determinism::check(ws, cfg));
    raw.extend(rules::panics::check(ws, cfg));
    raw.extend(rules::ignored_io::check(ws, cfg));
    raw.extend(rules::lock_order::check(ws, cfg));
    let (schema_violations, new_golden) = rules::schema::check(ws, cfg, write_golden);
    raw.extend(schema_violations);

    // Apply suppressions: an annotation covers its own line and the
    // next line, for its listed rules only.
    let mut violations = Vec::new();
    for v in raw {
        let suppressed = ws
            .files
            .iter()
            .find(|f| f.path == v.path)
            .map(|f| {
                f.suppressions.iter().any(|s| {
                    s.covers(v.rule, v.line) && {
                        s.mark_used();
                        true
                    }
                })
            })
            .unwrap_or(false);
        if !suppressed {
            violations.push(v);
        }
    }

    // Suppression hygiene: a reason is mandatory; unused annotations rot.
    let mut used = 0usize;
    let mut total = 0usize;
    for f in &ws.files {
        for s in &f.suppressions {
            total += 1;
            if s.used() {
                used += 1;
            }
            if let Some(problem) = s.problem() {
                violations.push(Violation {
                    rule: "suppression",
                    path: f.path.clone(),
                    line: s.line,
                    col: 1,
                    severity: Severity::Error,
                    message: problem,
                });
            } else if !s.used() {
                violations.push(Violation {
                    rule: "suppression",
                    path: f.path.clone(),
                    line: s.line,
                    col: 1,
                    severity: Severity::Warning,
                    message: format!(
                        "unused suppression for `{}` — the finding it silenced is gone; remove it",
                        s.rules.join(", ")
                    ),
                });
            }
        }
    }
    if total > cfg.max_suppressions {
        violations.push(Violation {
            rule: "suppression",
            path: String::new(),
            line: 0,
            col: 0,
            severity: Severity::Error,
            message: format!(
                "{total} suppression annotations exceed the workspace budget of {} — fix findings instead of silencing them",
                cfg.max_suppressions
            ),
        });
    }

    violations.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    (
        Analysis {
            violations,
            suppressions_used: used,
            suppressions_total: total,
            files: ws.files.len(),
        },
        new_golden,
    )
}

/// Locates the workspace root: walks up from `start` looking for a
/// `Cargo.toml` containing `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
