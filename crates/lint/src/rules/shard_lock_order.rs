//! Rule `shard-lock-order`: the sharded Journal store's lock discipline.
//!
//! `crates/journal/src/store/` partitions interface records into
//! id-hashed shards, each behind its own `RwLock`, with a `meta` RwLock
//! gating the global slabs and sequences. The documented discipline
//! (DESIGN.md § 3.3) that keeps writers deadlock-free while queries run
//! concurrently is:
//!
//! 1. the `meta` write gate is acquired **before** any shard lock —
//!    never while a shard guard is live (directly or through a call
//!    chain);
//! 2. shard locks — reads *and* writes — are taken in **ascending index
//!    order** when more than one is held. The grouped batch path
//!    (`store/grouped.rs`) acquires every shard's write lock ascending
//!    under the meta gate and holds them across plan and commit; any
//!    ascending multi-write acquisition is sanctioned, a descending or
//!    same-index one is flagged.
//!
//! The rule fires on the scope `cfg.shard_lock_scope`, using the same
//! acquisition extraction as `lock-order` (so `self.shards[idx].read()`
//! labels as `shards[idx]`) and the cross-crate call graph for
//! transitive meta acquisitions. Violations here are exactly the ones
//! the runtime sanitizer (`parking_lot` `tracked` feature) would panic
//! on, with the shard ranks carrying the ascending-index requirement.

use std::collections::BTreeSet;

use crate::callgraph::{self, CallGraph};
use crate::rules::lock_order::{acquisitions_of, Acq};
use crate::{Config, Severity, Violation, Workspace};

/// What a shard-scope acquisition is.
enum Kind<'a> {
    /// The `meta` gate.
    Meta,
    /// A shard lock with its index expression text. Reads and writes
    /// follow the same ascending-index discipline, so the access mode
    /// does not matter here.
    Shard {
        index: &'a str,
    },
    Other,
}

fn classify(a: &Acq) -> Kind<'_> {
    if a.label == "meta" {
        return Kind::Meta;
    }
    if let Some(rest) = a.label.strip_prefix("shards[") {
        if let Some(index) = rest.strip_suffix(']') {
            return Kind::Shard { index };
        }
    }
    Kind::Other
}

/// The report: violations plus the label edges the golden exporter
/// needs (`meta` before `shards[…]` is the sanctioned direction).
pub struct ShardReport {
    pub violations: Vec<Violation>,
    pub edges: BTreeSet<(String, String)>,
}

pub fn check(
    ws: &Workspace,
    cfg: &Config,
    cg: &CallGraph,
    reach_locks: &std::collections::BTreeMap<String, BTreeSet<String>>,
) -> ShardReport {
    let mut out = Vec::new();
    let mut edges = BTreeSet::new();
    for (fi, acqs) in acquisitions_of(ws, cg) {
        let f = &cg.fns[fi];
        let file = &ws.files[f.file];
        if !file.in_scope(&cfg.shard_lock_scope) {
            continue;
        }
        for a in &acqs {
            let Kind::Shard { index: a_idx } = classify(a) else {
                continue;
            };
            // Overlapping acquisitions while this shard guard is live.
            for b in &acqs {
                if !(b.start > a.start && b.start < a.end) {
                    continue;
                }
                match classify(b) {
                    Kind::Meta => {
                        edges.insert((a.label.clone(), b.label.clone()));
                        out.push(Violation {
                            rule: "shard-lock-order",
                            path: file.path.clone(),
                            line: b.line,
                            col: b.col,
                            severity: Severity::Error,
                            message: format!(
                                "`meta` acquired while shard lock `{}` is held (in `{}`) — \
                                 the meta write gate must come before any shard lock",
                                a.label, f.name
                            ),
                        });
                    }
                    Kind::Shard { index: b_idx, .. } => {
                        edges.insert((a.label.clone(), b.label.clone()));
                        if let (Ok(ai), Ok(bi)) = (a_idx.parse::<u64>(), b_idx.parse::<u64>()) {
                            if bi <= ai {
                                out.push(Violation {
                                    rule: "shard-lock-order",
                                    path: file.path.clone(),
                                    line: b.line,
                                    col: b.col,
                                    severity: Severity::Error,
                                    message: format!(
                                        "shard lock `{}` acquired while `{}` is held (in `{}`) — \
                                         shard locks must be taken in ascending index order",
                                        b.label, a.label, f.name
                                    ),
                                });
                            }
                        } else if a_idx == b_idx {
                            out.push(Violation {
                                rule: "shard-lock-order",
                                path: file.path.clone(),
                                line: b.line,
                                col: b.col,
                                severity: Severity::Error,
                                message: format!(
                                    "shard `{}` re-acquired while already held (in `{}`) — \
                                     parking_lot locks are not reentrant; this self-deadlocks",
                                    a.label, f.name
                                ),
                            });
                        }
                    }
                    Kind::Other => {}
                }
            }
            // Transitive: a callee that (eventually) takes the meta gate
            // while this shard guard is live inverts the discipline.
            for site in callgraph::calls_in_range(&file.code, a.start, a.end) {
                let Some(q) = cg.resolve(f.file, &site) else {
                    continue;
                };
                if reach_locks.get(&q).is_some_and(|ls| ls.contains("meta")) {
                    out.push(Violation {
                        rule: "shard-lock-order",
                        path: file.path.clone(),
                        line: site.line,
                        col: site.col,
                        severity: Severity::Error,
                        message: format!(
                            "shard lock `{}` held while calling `{}`, which acquires the \
                             `meta` gate — the meta write gate must come first",
                            a.label, site.name
                        ),
                    });
                }
            }
        }
    }
    ShardReport {
        violations: out,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::lock_order;
    use crate::Workspace;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Violation> {
        let ws = Workspace::from_sources(&[("crates/journal/src/store/x.rs", src)]);
        let cfg = Config::for_root(PathBuf::from("."));
        let cg = CallGraph::build(&ws);
        let lock = lock_order::check(&ws, &cfg, &cg);
        check(&ws, &cfg, &cg, &lock.reach_locks).violations
    }

    #[test]
    fn meta_after_shard_is_inverted() {
        let v = run("fn f(&self) { let s = self.shards[0].read(); let m = self.meta.write(); }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("meta write gate"), "{v:?}");
    }

    #[test]
    fn meta_before_shard_is_sanctioned() {
        assert!(
            run("fn f(&self) { let m = self.meta.write(); let s = self.shards[0].write(); }")
                .is_empty()
        );
    }

    #[test]
    fn ascending_shard_writes_are_sanctioned() {
        // The grouped batch path's acquisition shape: every shard's
        // write lock, ascending, under the meta gate.
        assert!(run(
            "fn f(&self) { let m = self.meta.write(); let a = self.shards[0].write(); let b = self.shards[1].write(); }"
        )
        .is_empty());
    }

    #[test]
    fn descending_shard_writes_flag() {
        let v =
            run("fn f(&self) { let a = self.shards[1].write(); let b = self.shards[0].write(); }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("ascending index order"), "{v:?}");
    }

    #[test]
    fn descending_shard_reads_flag() {
        let v =
            run("fn f(&self) { let a = self.shards[2].read(); let b = self.shards[1].read(); }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("ascending index order"), "{v:?}");
    }

    #[test]
    fn ascending_shard_reads_are_fine() {
        assert!(run(
            "fn f(&self) { let a = self.shards[0].read(); let b = self.shards[1].read(); }"
        )
        .is_empty());
    }

    #[test]
    fn dynamic_same_index_reacquire_flags() {
        let v = run("fn f(&self, i: usize) { let a = self.shards[i].read(); let b = self.shards[i].read(); }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("re-acquired"), "{v:?}");
    }

    #[test]
    fn transitive_meta_while_shard_held_flags() {
        let v = run(
            "fn f(&self) { let s = self.shards[0].read(); tally(); }\nfn tally(&self) { let m = self.meta.read(); }",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("which acquires the"), "{v:?}");
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        let ws = Workspace::from_sources(&[(
            "crates/storage/src/x.rs",
            "fn f(&self) { let s = self.shards[0].read(); let m = self.meta.write(); }",
        )]);
        let cfg = Config::for_root(PathBuf::from("."));
        let cg = CallGraph::build(&ws);
        let lock = lock_order::check(&ws, &cfg, &cg);
        assert!(check(&ws, &cfg, &cg, &lock.reach_locks)
            .violations
            .is_empty());
    }
}
