//! Rule `wal-schema`: serialized record types are append-only.
//!
//! Every serde-derived type under the schema scope
//! (`crates/journal/src/`, `crates/storage/src/`) is fingerprinted —
//! enum variants and struct fields in declaration order — and compared
//! against a committed golden (`crates/lint/wal-schema.golden`).
//! Variant *order* is load-bearing twice over: `SourceSet` packs
//! `Source` discriminants into bit positions, and any positional
//! encoding of a WAL record breaks replay of existing journals if a
//! variant is reordered, retyped, or removed. So:
//!
//! * reordering / retyping / removing an existing enum variant → error;
//! * changing a struct's fields in any way → error (structs have no
//!   append-safe position);
//! * appending a new enum variant or adding a whole new type → warning,
//!   cleared by regenerating the golden with `--write-golden` in the
//!   same change (CI runs `--deny`, so the warning still blocks a PR
//!   that forgets the refresh).

use std::collections::BTreeMap;

use crate::lexer::{Tok, TokKind};
use crate::rules::matching_close;
use crate::{Config, Severity, Violation, Workspace};

/// One fingerprinted item: its kind, where it lives, and its ordered
/// entries (variants or fields) as normalized token text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    pub kind: ItemKind,
    pub name: String,
    /// Where the item was found (empty for golden-parsed entries).
    pub path: String,
    pub line: u32,
    pub entries: Vec<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Enum,
    Struct,
}

impl ItemKind {
    fn word(self) -> &'static str {
        match self {
            ItemKind::Enum => "enum",
            ItemKind::Struct => "struct",
        }
    }
}

pub fn check(ws: &Workspace, cfg: &Config, write_golden: bool) -> (Vec<Violation>, Option<String>) {
    let mut current: BTreeMap<String, Fingerprint> = BTreeMap::new();
    for file in &ws.files {
        if !file.in_scope(&cfg.schema_scope) {
            continue;
        }
        for fp in fingerprint_file(&file.path, &file.code) {
            if file.in_test(fp.line) {
                continue;
            }
            current.insert(fp.name.clone(), fp);
        }
    }

    if write_golden {
        return (Vec::new(), Some(render_golden(&current)));
    }

    let golden_abs = cfg.root.join(&cfg.golden_path);
    let golden_text = match std::fs::read_to_string(&golden_abs) {
        Ok(t) => t,
        Err(_) => {
            return (
                vec![Violation {
                    rule: "wal-schema",
                    path: cfg.golden_path.clone(),
                    line: 0,
                    col: 0,
                    severity: Severity::Error,
                    message: format!(
                        "schema golden `{}` is missing — generate and commit it with \
                         `cargo run -p fremont-lint -- --write-golden`",
                        cfg.golden_path
                    ),
                }],
                None,
            );
        }
    };
    let golden = parse_golden(&golden_text);
    (compare(&current, &golden, cfg), None)
}

/// Diffs the workspace fingerprints against the golden ones.
fn compare(
    current: &BTreeMap<String, Fingerprint>,
    golden: &BTreeMap<String, Fingerprint>,
    cfg: &Config,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (name, old) in golden {
        let Some(new) = current.get(name) else {
            out.push(Violation {
                rule: "wal-schema",
                path: cfg.golden_path.clone(),
                line: 0,
                col: 0,
                severity: Severity::Error,
                message: format!(
                    "serialized {} `{name}` was removed (or moved out of the schema scope) — \
                     existing journals still contain its records",
                    old.kind.word()
                ),
            });
            continue;
        };
        if new.kind != old.kind {
            out.push(err(
                new,
                format!(
                    "`{name}` changed from {} to {} — existing journals encode it as a {}",
                    old.kind.word(),
                    new.kind.word(),
                    old.kind.word()
                ),
            ));
            continue;
        }
        match old.kind {
            ItemKind::Enum => {
                let shared = old.entries.len().min(new.entries.len());
                for i in 0..shared {
                    if old.entries[i] != new.entries[i] {
                        out.push(err(
                            new,
                            format!(
                                "enum `{name}` variant {i} changed from `{}` to `{}` — \
                             variants are positional (SourceSet bit indices, WAL \
                             discriminants); append new variants at the end instead",
                                old.entries[i], new.entries[i]
                            ),
                        ));
                    }
                }
                if new.entries.len() < old.entries.len() {
                    out.push(err(
                        new,
                        format!(
                            "enum `{name}` lost {} trailing variant(s) (`{}` …) — \
                         existing journals still use those discriminants",
                            old.entries.len() - new.entries.len(),
                            old.entries[new.entries.len()]
                        ),
                    ));
                }
                for i in old.entries.len()..new.entries.len() {
                    out.push(warn(
                        new,
                        format!(
                            "enum `{name}` gained variant `{}` (appended, position {i}) — \
                         refresh the golden with `--write-golden` to accept it",
                            new.entries[i]
                        ),
                    ));
                }
            }
            ItemKind::Struct => {
                if old.entries != new.entries {
                    out.push(err(
                        new,
                        format!(
                            "struct `{name}` fields changed (`{}` → `{}`) — any field \
                         change breaks decoding of existing journals; add a new \
                         record type instead",
                            old.entries.join(", "),
                            new.entries.join(", ")
                        ),
                    ));
                }
            }
        }
    }
    for (name, new) in current {
        if !golden.contains_key(name) {
            out.push(warn(
                new,
                format!(
                    "new serialized {} `{name}` is not in the golden — refresh it with \
                 `--write-golden` to accept the addition",
                    new.kind.word()
                ),
            ));
        }
    }
    out
}

fn err(fp: &Fingerprint, message: String) -> Violation {
    Violation {
        rule: "wal-schema",
        path: fp.path.clone(),
        line: fp.line,
        col: 1,
        severity: Severity::Error,
        message,
    }
}

fn warn(fp: &Fingerprint, message: String) -> Violation {
    Violation {
        rule: "wal-schema",
        path: fp.path.clone(),
        line: fp.line,
        col: 1,
        severity: Severity::Warning,
        message,
    }
}

/// Extracts fingerprints for every serde-derived enum/struct in a file.
pub fn fingerprint_file(path: &str, code: &[Tok]) -> Vec<Fingerprint> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !(code[i].is_punct('#') && code.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let (mut j, mut serde) = scan_derive(code, i + 1);
        // Collect any further attributes on the same item.
        while j < code.len()
            && code[j].is_punct('#')
            && code.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            let (e, s) = scan_derive(code, j + 1);
            serde |= s;
            j = e;
        }
        if !serde {
            i = j;
            continue;
        }
        // Optional visibility: `pub` or `pub(crate)` etc.
        if code.get(j).is_some_and(|t| t.is_ident("pub")) {
            j += 1;
            if code.get(j).is_some_and(|t| t.is_punct('(')) {
                j = matching_close(code, j) + 1;
            }
        }
        let kind = match code.get(j) {
            Some(t) if t.is_ident("enum") => ItemKind::Enum,
            Some(t) if t.is_ident("struct") => ItemKind::Struct,
            _ => {
                i = j;
                continue;
            }
        };
        let Some(name_tok) = code.get(j + 1) else {
            break;
        };
        let name = name_tok.text.clone();
        let line = name_tok.line;
        // Body: first `{` / `(` / `;` after the name (generics skipped by
        // the scan — `<`/`>` are plain puncts that we step over).
        let mut k = j + 2;
        while k < code.len()
            && !code[k].is_punct('{')
            && !code[k].is_punct('(')
            && !code[k].is_punct(';')
        {
            k += 1;
        }
        let entries = match code.get(k) {
            Some(t) if t.is_punct(';') => Vec::new(), // unit struct
            Some(t) if t.is_punct('{') || t.is_punct('(') => {
                let close = matching_close(code, k);
                let items = split_body(&code[k + 1..close]);
                i = close + 1;
                match kind {
                    ItemKind::Enum => items.iter().map(|v| variant_text(v)).collect(),
                    ItemKind::Struct => items.iter().map(|f| field_text(f)).collect(),
                }
            }
            _ => break,
        };
        out.push(Fingerprint {
            kind,
            name,
            path: path.to_owned(),
            line,
            entries,
        });
        i = i.max(k + 1);
    }
    out
}

/// Scans an attribute at its `[`; returns (index past `]`, whether it is
/// a serde derive — `derive(… Serialize/Deserialize …)`).
fn scan_derive(code: &[Tok], open: usize) -> (usize, bool) {
    let is_derive = code.get(open + 1).is_some_and(|t| t.is_ident("derive"));
    let mut depth = 0i32;
    let mut serde = false;
    let mut j = open;
    while j < code.len() {
        let t = &code[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return (j + 1, is_derive && serde);
                    }
                }
                _ => {}
            }
        } else if t.kind == TokKind::Ident && matches!(t.text.as_str(), "Serialize" | "Deserialize")
        {
            serde = true;
        }
        j += 1;
    }
    (code.len(), false)
}

/// Splits a `{…}`/`(…)` body into top-level comma-separated chunks.
fn split_body(body: &[Tok]) -> Vec<Vec<Tok>> {
    let mut items: Vec<Vec<Tok>> = Vec::new();
    let mut cur: Vec<Tok> = Vec::new();
    let mut depth = 0i32;
    for t in body {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => {
                    if !cur.is_empty() {
                        items.push(std::mem::take(&mut cur));
                    }
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        items.push(cur);
    }
    items
}

/// Drops leading `#[…]` attributes from an entry's tokens.
fn strip_attrs(toks: &[Tok]) -> &[Tok] {
    let mut i = 0usize;
    while i + 1 < toks.len() && toks[i].is_punct('#') && toks[i + 1].is_punct('[') {
        let close = matching_close(toks, i + 1);
        i = close + 1;
    }
    &toks[i..]
}

/// Normalized text of an enum variant: `Name`, `Name ( types )`, or
/// `Name { fields }`.
fn variant_text(toks: &[Tok]) -> String {
    join(strip_attrs(toks))
}

/// Normalized text of a struct field, `pub` stripped: `name : Type`.
fn field_text(toks: &[Tok]) -> String {
    let mut toks = strip_attrs(toks);
    if toks.first().is_some_and(|t| t.is_ident("pub")) {
        toks = &toks[1..];
        if toks.first().is_some_and(|t| t.is_punct('(')) {
            let close = matching_close(toks, 0);
            toks = &toks[close + 1..];
        }
    }
    join(toks)
}

fn join(toks: &[Tok]) -> String {
    toks.iter()
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Renders fingerprints in the committed golden format.
pub fn render_golden(items: &BTreeMap<String, Fingerprint>) -> String {
    let mut s = String::from(
        "# fremont-lint WAL schema golden — serialized type shapes, in declaration order.\n\
         # Do not edit by hand; regenerate with: cargo run -p fremont-lint -- --write-golden\n",
    );
    for fp in items.values() {
        s.push_str(&format!("{} {}\n", fp.kind.word(), fp.name));
        for (i, e) in fp.entries.iter().enumerate() {
            s.push_str(&format!("  {i}: {e}\n"));
        }
    }
    s
}

/// Parses the golden format back into fingerprints.
pub fn parse_golden(text: &str) -> BTreeMap<String, Fingerprint> {
    let mut out: BTreeMap<String, Fingerprint> = BTreeMap::new();
    let mut cur: Option<Fingerprint> = None;
    for line in text.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("enum ") {
            if let Some(fp) = cur.take() {
                out.insert(fp.name.clone(), fp);
            }
            cur = Some(Fingerprint {
                kind: ItemKind::Enum,
                name: rest.trim().to_owned(),
                path: String::new(),
                line: 0,
                entries: Vec::new(),
            });
        } else if let Some(rest) = line.strip_prefix("struct ") {
            if let Some(fp) = cur.take() {
                out.insert(fp.name.clone(), fp);
            }
            cur = Some(Fingerprint {
                kind: ItemKind::Struct,
                name: rest.trim().to_owned(),
                path: String::new(),
                line: 0,
                entries: Vec::new(),
            });
        } else if let Some((_, entry)) = line.trim_start().split_once(": ") {
            if let Some(fp) = cur.as_mut() {
                fp.entries.push(entry.to_owned());
            }
        }
    }
    if let Some(fp) = cur.take() {
        out.insert(fp.name.clone(), fp);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workspace;

    const SRC: &str = "#[derive(Debug, Serialize, Deserialize)]\n\
        pub enum Source { Icmp, Dns(u16), Rip { hops: u8 } }\n\
        #[derive(Serialize, Deserialize)]\n\
        pub struct Obs { pub src: Source, pub at: u64 }\n\
        #[derive(Debug, Clone)]\n\
        pub enum NotSerialized { A, B }\n";

    fn fps(src: &str) -> BTreeMap<String, Fingerprint> {
        let ws = Workspace::from_sources(&[("crates/journal/src/x.rs", src)]);
        fingerprint_file(&ws.files[0].path, &ws.files[0].code)
            .into_iter()
            .map(|f| (f.name.clone(), f))
            .collect()
    }

    #[test]
    fn fingerprints_only_serde_types() {
        let m = fps(SRC);
        assert_eq!(m.len(), 2, "{m:?}");
        assert_eq!(
            m["Source"].entries,
            vec!["Icmp", "Dns ( u16 )", "Rip { hops : u8 }"]
        );
        assert_eq!(m["Obs"].entries, vec!["src : Source", "at : u64"]);
    }

    #[test]
    fn golden_roundtrips() {
        let m = fps(SRC);
        let text = render_golden(&m);
        let back = parse_golden(&text);
        assert_eq!(back.len(), 2);
        assert_eq!(back["Source"].entries, m["Source"].entries);
        assert_eq!(back["Obs"].entries, m["Obs"].entries);
    }

    fn diff(old_src: &str, new_src: &str) -> Vec<Violation> {
        let cfg = Config::for_root(std::path::PathBuf::from("."));
        compare(&fps(new_src), &fps(old_src), &cfg)
    }

    #[test]
    fn append_is_a_warning() {
        let v = diff(
            "#[derive(Serialize)] pub enum E { A, B }",
            "#[derive(Serialize)] pub enum E { A, B, C }",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].severity, Severity::Warning);
        assert!(v[0].message.contains("appended"));
    }

    #[test]
    fn reorder_and_retype_are_errors() {
        let v = diff(
            "#[derive(Serialize)] pub enum E { A, B(u16) }",
            "#[derive(Serialize)] pub enum E { B(u32), A }",
        );
        assert!(v.iter().all(|v| v.severity == Severity::Error), "{v:?}");
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn removal_is_an_error() {
        let v = diff(
            "#[derive(Serialize)] pub enum E { A, B }",
            "#[derive(Serialize)] pub enum E { A }",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].severity, Severity::Error);
    }

    #[test]
    fn struct_field_change_is_an_error() {
        let v = diff(
            "#[derive(Serialize)] pub struct S { a: u32 }",
            "#[derive(Serialize)] pub struct S { a: u64 }",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].severity, Severity::Error);
    }

    #[test]
    fn new_type_is_a_warning() {
        let v = diff(
            "#[derive(Serialize)] pub enum E { A }",
            "#[derive(Serialize)] pub enum E { A }\n#[derive(Serialize)] pub struct S { a: u32 }",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].severity, Severity::Warning);
        assert!(v[0].message.contains("new serialized struct"));
    }
}
