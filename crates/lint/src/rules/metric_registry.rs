//! Rule `metric-registry`: every `fremont_*` metric name is fingerprinted.
//!
//! The telemetry layer's byte-identical exposition guarantee (same-seed
//! runs emit the same Prometheus text) is also a *naming* contract:
//! dashboards, the CI byte-diff jobs, and EXPERIMENTS.md recipes all
//! grep for `fremont_…` metric names. A rename silently breaks every
//! one of them while the test suite stays green.
//!
//! This rule collects every string literal in non-test workspace code
//! that is a metric name — `fremont_` followed by `[a-z0-9_]` — and
//! fingerprints the set against the committed
//! `crates/lint/metrics.golden`, with the wal-schema semantics: a name
//! that disappears is an **error** (rename or removal), a new name is a
//! **warning** until `--write-golden` registers it.

use std::collections::BTreeMap;

use crate::lexer::TokKind;
use crate::{Config, Severity, Violation, Workspace};

/// True for a string-literal *content* that is a metric name.
fn is_metric_name(content: &str) -> bool {
    match content.strip_prefix("fremont_") {
        Some(rest) => {
            !rest.is_empty()
                && rest
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        }
        None => false,
    }
}

/// Strips quotes (and any `r#`/`b` prefix) off a `Str` token's text.
fn literal_content(text: &str) -> Option<&str> {
    let open = text.find('"')?;
    let inner = &text[open + 1..];
    let close = inner.rfind('"')?;
    Some(&inner[..close])
}

/// Collects `name → first (path, line, col)` over the workspace.
fn collect(ws: &Workspace, cfg: &Config) -> BTreeMap<String, (String, u32, u32)> {
    let mut names: BTreeMap<String, (String, u32, u32)> = BTreeMap::new();
    for file in &ws.files {
        if file.in_scope(&cfg.metric_exclude) {
            continue;
        }
        for t in &file.code {
            if t.kind != TokKind::Str || file.in_test(t.line) {
                continue;
            }
            let Some(content) = literal_content(&t.text) else {
                continue;
            };
            if is_metric_name(content) {
                names
                    .entry(content.to_owned())
                    .or_insert((file.path.clone(), t.line, t.col));
            }
        }
    }
    names
}

/// Renders the golden file content for a collected name set.
fn render_golden(names: &BTreeMap<String, (String, u32, u32)>) -> String {
    let mut out = String::new();
    out.push_str("# fremont-lint metric-registry golden: every `fremont_*` metric name\n");
    out.push_str("# in the workspace. Regenerate: cargo run -p fremont-lint -- --write-golden\n");
    for name in names.keys() {
        out.push_str(name);
        out.push('\n');
    }
    out
}

/// Parses a committed golden back into its name list.
fn parse_golden(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_owned)
        .collect()
}

/// Checks the workspace against the committed golden; in `write_golden`
/// mode returns the fresh content instead of violations.
pub fn check(ws: &Workspace, cfg: &Config, write_golden: bool) -> (Vec<Violation>, Option<String>) {
    let names = collect(ws, cfg);
    if write_golden {
        return (Vec::new(), Some(render_golden(&names)));
    }
    let golden_abs = cfg.root.join(&cfg.metrics_golden_path);
    let committed = match std::fs::read_to_string(&golden_abs) {
        Ok(text) => parse_golden(&text),
        Err(_) => {
            return (
                vec![Violation {
                    rule: "metric-registry",
                    path: cfg.metrics_golden_path.clone(),
                    line: 0,
                    col: 0,
                    severity: Severity::Error,
                    message: format!(
                        "metric-registry golden missing at `{}` — generate it with \
                         `cargo run -p fremont-lint -- --write-golden`",
                        cfg.metrics_golden_path
                    ),
                }],
                None,
            );
        }
    };
    let mut out = Vec::new();
    for name in &committed {
        if !names.contains_key(name) {
            out.push(Violation {
                rule: "metric-registry",
                path: cfg.metrics_golden_path.clone(),
                line: 0,
                col: 0,
                severity: Severity::Error,
                message: format!(
                    "metric `{name}` was removed or renamed — dashboards and CI byte-diffs \
                     reference it; restore the name or refresh the golden with --write-golden"
                ),
            });
        }
    }
    for (name, (path, line, col)) in &names {
        if !committed.iter().any(|c| c == name) {
            out.push(Violation {
                rule: "metric-registry",
                path: path.clone(),
                line: *line,
                col: *col,
                severity: Severity::Warning,
                message: format!(
                    "new metric `{name}` is not in the registry golden — register it with \
                     `cargo run -p fremont-lint -- --write-golden`"
                ),
            });
        }
    }
    (out, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workspace;
    use std::path::PathBuf;

    #[test]
    fn metric_name_shape() {
        assert!(is_metric_name("fremont_wal_appends_total"));
        assert!(is_metric_name("fremont_depth"));
        assert!(!is_metric_name("fremont_"));
        assert!(!is_metric_name("fremont_Wal"));
        assert!(!is_metric_name("fremont-wal"));
        assert!(!is_metric_name("prefix fremont_x"));
    }

    #[test]
    fn collects_first_site_and_skips_tests_and_excluded_paths() {
        let ws = Workspace::from_sources(&[
            (
                "crates/storage/src/a.rs",
                "fn f() { c(\"fremont_wal_appends_total\"); }\nfn g() { c(\"fremont_wal_appends_total\"); }",
            ),
            (
                "crates/storage/src/b.rs",
                "#[cfg(test)]\nmod tests { fn t() { c(\"fremont_test_only\"); } }",
            ),
            (
                "crates/lint/src/c.rs",
                "fn f() { c(\"fremont_self_match\"); }",
            ),
        ]);
        let cfg = Config::for_root(PathBuf::from("."));
        let names = collect(&ws, &cfg);
        assert_eq!(names.len(), 1, "{names:?}");
        assert_eq!(
            names["fremont_wal_appends_total"],
            ("crates/storage/src/a.rs".to_owned(), 1, 12)
        );
    }

    #[test]
    fn golden_round_trips() {
        let ws = Workspace::from_sources(&[(
            "crates/storage/src/a.rs",
            "fn f() { c(\"fremont_b\"); c(\"fremont_a\"); }",
        )]);
        let cfg = Config::for_root(PathBuf::from("."));
        let (v, golden) = check(&ws, &cfg, true);
        assert!(v.is_empty());
        let golden = golden.unwrap();
        assert_eq!(parse_golden(&golden), vec!["fremont_a", "fremont_b"]);
    }
}
