//! The seven Fremont invariant rules.

pub mod determinism;
pub mod ignored_io;
pub mod lock_order;
pub mod metric_registry;
pub mod panics;
pub mod schema;
pub mod shard_lock_order;

use crate::lexer::{Tok, TokKind};

/// True when `code[i]` opens any bracket.
fn opens(t: &Tok) -> bool {
    t.kind == TokKind::Punct && matches!(t.text.as_str(), "(" | "[" | "{")
}

/// True when `code[i]` closes any bracket.
fn closes(t: &Tok) -> bool {
    t.kind == TokKind::Punct && matches!(t.text.as_str(), ")" | "]" | "}")
}

/// Index of the token matching the opening bracket at `open` (or the
/// end of the stream when unbalanced).
pub(crate) fn matching_close(code: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < code.len() {
        if opens(&code[i]) {
            depth += 1;
        } else if closes(&code[i]) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    code.len().saturating_sub(1)
}

/// Index of the `;` ending the statement containing `start` (brackets
/// respected), or the index where the enclosing block closes.
pub(crate) fn statement_end(code: &[Tok], start: usize) -> usize {
    let mut depth = 0i64;
    let mut i = start;
    while i < code.len() {
        let t = &code[i];
        if opens(t) {
            depth += 1;
        } else if closes(t) {
            depth -= 1;
            if depth < 0 {
                return i;
            }
        } else if depth == 0 && t.is_punct(';') {
            return i;
        }
        i += 1;
    }
    code.len().saturating_sub(1)
}
