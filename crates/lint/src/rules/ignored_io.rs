//! Rule `ignored-io`: `let _ =` must not discard a flush/sync result.
//!
//! `let _ = file.sync_all();` acknowledges durability that may not
//! exist: the kernel reported the flush failed and the program threw
//! the report away. PR 1's crash tests cannot see this — fault
//! injection only proves the happy path fsyncs, not that a failing
//! fsync reaches the `SyncPolicy` caller — so it is enforced
//! statically. Test code is exempt (cleanup `let _ =` is idiomatic
//! there).

use crate::lexer::TokKind;
use crate::rules::statement_end;
use crate::{Config, Severity, Violation, Workspace};

/// Names whose discarded `Result` means lost durability.
const SYNC_FNS: [&str; 6] = [
    "flush",
    "sync_all",
    "sync_data",
    "sync_now",
    "fsync",
    "sync",
];

pub fn check(ws: &Workspace, _cfg: &Config) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in &ws.files {
        let code = &file.code;
        for i in 0..code.len() {
            if !(code[i].is_ident("let")
                && code.get(i + 1).is_some_and(|t| t.is_ident("_"))
                && code.get(i + 2).is_some_and(|t| t.is_punct('=')))
                || file.in_test(code[i].line)
            {
                continue;
            }
            let end = statement_end(code, i + 3);
            // The first sync-class call in the discarded expression.
            for j in i + 3..end {
                let t = &code[j];
                if t.kind == TokKind::Ident
                    && SYNC_FNS.contains(&t.text.as_str())
                    && code.get(j + 1).is_some_and(|n| n.is_punct('('))
                {
                    out.push(Violation {
                        rule: "ignored-io",
                        path: file.path.clone(),
                        line: code[i].line,
                        col: code[i].col,
                        severity: Severity::Error,
                        message: format!(
                            "`let _ =` discards the result of `{}` — a failed \
                             flush/sync must propagate or durability is a lie",
                            t.text
                        ),
                    });
                    break;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workspace;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Violation> {
        let ws = Workspace::from_sources(&[("crates/storage/src/x.rs", src)]);
        check(&ws, &Config::for_root(PathBuf::from(".")))
    }

    #[test]
    fn flags_discarded_sync() {
        let v = run("fn f() { let _ = file.sync_all(); let _ = w.flush(); }");
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].message.contains("sync_all"));
    }

    #[test]
    fn propagated_sync_is_fine() {
        assert!(run("fn f() -> io::Result<()> { file.sync_all()?; w.flush() }").is_empty());
    }

    #[test]
    fn discarding_non_sync_calls_is_fine() {
        assert!(run("fn f() { let _ = listener.join(); let _ = send(x); }").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        assert!(run("#[cfg(test)]\nmod t { fn f() { let _ = file.sync_all(); } }").is_empty());
    }
}
