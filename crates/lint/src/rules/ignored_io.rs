//! Rule `ignored-io`: `let _ =` must not discard a flush/sync result.
//!
//! `let _ = file.sync_all();` acknowledges durability that may not
//! exist: the kernel reported the flush failed and the program threw
//! the report away. PR 1's crash tests cannot see this — fault
//! injection only proves the happy path fsyncs, not that a failing
//! fsync reaches the `SyncPolicy` caller — so it is enforced
//! statically. Test code is exempt (cleanup `let _ =` is idiomatic
//! there).
//!
//! The rule is interprocedural: discarding the result of a function
//! that (transitively, through the cross-crate call graph) performs a
//! flush/sync is the same lie one hop removed, so
//! `let _ = journal.flush_to_disk();` is flagged with the chain to the
//! sync site in the message.

use std::collections::BTreeMap;

use crate::callgraph::{self, CallGraph};
use crate::lexer::TokKind;
use crate::rules::statement_end;
use crate::{Config, Severity, Violation, Workspace};

/// Names whose discarded `Result` means lost durability.
const SYNC_FNS: [&str; 6] = [
    "flush",
    "sync_all",
    "sync_data",
    "sync_now",
    "fsync",
    "sync",
];

/// The first direct sync-class call in `[start, end)`, as `(name, line)`.
fn scan_range_for_sync(
    code: &[crate::lexer::Tok],
    start: usize,
    end: usize,
) -> Option<(String, u32)> {
    for i in start..end.min(code.len()) {
        let t = &code[i];
        if t.kind == TokKind::Ident
            && SYNC_FNS.contains(&t.text.as_str())
            && code.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            return Some((t.text.clone(), t.line));
        }
    }
    None
}

pub fn check(ws: &Workspace, _cfg: &Config, cg: &CallGraph) -> Vec<Violation> {
    // Functions that (transitively) flush or sync, with the chain to
    // the first sync site.
    let mut witness_seed: BTreeMap<String, String> = BTreeMap::new();
    for f in &cg.fns {
        let Some(qname) = cg.qname_of(f) else {
            continue;
        };
        let file = &ws.files[f.file];
        if let Some((name, line)) = scan_range_for_sync(&file.code, f.body_start, f.body_end) {
            witness_seed
                .entry(qname)
                .or_insert_with(|| format!("`{name}` at {}:{line}", file.path));
        }
    }
    let witness = callgraph::reach_witness(&cg.calls, &witness_seed);

    let mut out = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        let code = &file.code;
        for i in 0..code.len() {
            if !(code[i].is_ident("let")
                && code.get(i + 1).is_some_and(|t| t.is_ident("_"))
                && code.get(i + 2).is_some_and(|t| t.is_punct('=')))
                || file.in_test(code[i].line)
            {
                continue;
            }
            let end = statement_end(code, i + 3);
            // The first sync-class call in the discarded expression…
            if let Some((name, _)) = scan_range_for_sync(code, i + 3, end) {
                out.push(Violation {
                    rule: "ignored-io",
                    path: file.path.clone(),
                    line: code[i].line,
                    col: code[i].col,
                    severity: Severity::Error,
                    message: format!(
                        "`let _ =` discards the result of `{name}` — a failed \
                         flush/sync must propagate or durability is a lie"
                    ),
                });
                continue;
            }
            // …else the first resolved call that reaches one.
            for site in callgraph::calls_in_range(code, i + 3, end) {
                let Some(q) = cg.resolve(fi, &site) else {
                    continue;
                };
                if let Some(w) = witness.get(&q) {
                    out.push(Violation {
                        rule: "ignored-io",
                        path: file.path.clone(),
                        line: code[i].line,
                        col: code[i].col,
                        severity: Severity::Error,
                        message: format!(
                            "`let _ =` discards the result of `{q}`, which flushes \
                             ({w}) — a failed flush/sync must propagate or \
                             durability is a lie"
                        ),
                    });
                    break;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workspace;
    use std::path::PathBuf;

    fn check_ws(ws: &Workspace) -> Vec<Violation> {
        let cg = CallGraph::build(ws);
        check(ws, &Config::for_root(PathBuf::from(".")), &cg)
    }

    fn run(src: &str) -> Vec<Violation> {
        check_ws(&Workspace::from_sources(&[(
            "crates/storage/src/x.rs",
            src,
        )]))
    }

    #[test]
    fn flags_discarded_sync() {
        let v = run("fn f() { let _ = file.sync_all(); let _ = w.flush(); }");
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].message.contains("sync_all"));
    }

    #[test]
    fn propagated_sync_is_fine() {
        assert!(run("fn f() -> io::Result<()> { file.sync_all()?; w.flush() }").is_empty());
    }

    #[test]
    fn discarding_non_sync_calls_is_fine() {
        assert!(run("fn f() { let _ = listener.join(); let _ = send(x); }").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        assert!(run("#[cfg(test)]\nmod t { fn f() { let _ = file.sync_all(); } }").is_empty());
    }

    #[test]
    fn discarding_a_function_that_flushes_flags() {
        let v = run("fn f() { let _ = persist(); }\nfn persist() -> io::Result<()> { w.flush() }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("storage::persist"), "{v:?}");
        assert!(v[0].message.contains("crates/storage/src/x.rs:2"), "{v:?}");
    }

    #[test]
    fn cross_crate_discarded_flush_flags() {
        let ws = Workspace::from_sources(&[
            (
                "crates/core/src/d.rs",
                "fn f() { let _ = fremont_storage::wal::persist(); }",
            ),
            (
                "crates/storage/src/w.rs",
                "pub fn persist() -> io::Result<()> { w.flush() }",
            ),
        ]);
        let v = check_ws(&ws);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].path, "crates/core/src/d.rs");
    }

    #[test]
    fn discarding_a_sync_free_function_is_fine() {
        assert!(run("fn f() { let _ = tally(); }\nfn tally() -> u8 { 1 }").is_empty());
    }
}
