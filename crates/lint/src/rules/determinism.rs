//! Rule `determinism`: no wall-clock or unseeded-RNG use outside the
//! allowlisted clock module.
//!
//! Discovery runs must be replayable: the Journal stamps observations
//! with simulation time ([`crates/journal/src/time.rs`]), and every
//! explorer draws randomness from the simulator's seeded RNG. One
//! `SystemTime::now()` in an explorer makes WAL replay diverge from the
//! original run on every machine and every rerun — a whole-codebase
//! property no unit test can see, which is exactly why it is enforced
//! here.

use crate::lexer::TokKind;
use crate::{Config, Severity, Violation, Workspace};

/// Type names whose *any* mention is non-deterministic time.
const CLOCK_TYPES: [&str; 2] = ["SystemTime", "Instant"];

/// Function names that draw from ambient entropy.
const ENTROPY_FNS: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "getrandom"];

pub fn check(ws: &Workspace, cfg: &Config) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.in_scope(&cfg.clock_allowlist) {
            continue;
        }
        for (i, t) in file.code.iter().enumerate() {
            if t.kind != TokKind::Ident || file.in_test(t.line) {
                continue;
            }
            let name = t.text.as_str();
            let message = if CLOCK_TYPES.contains(&name) {
                format!(
                    "non-deterministic clock `{name}` — use the journal clock \
                     ({}) or the simulator's time so runs stay replayable",
                    cfg.clock_allowlist
                        .first()
                        .map(String::as_str)
                        .unwrap_or("clock module")
                )
            } else if ENTROPY_FNS.contains(&name) {
                format!(
                    "unseeded randomness `{name}` — thread a seeded RNG from the \
                     simulation config so runs stay replayable"
                )
            } else if name == "random"
                && i >= 2
                && file.code[i - 1].is_punct(':')
                && file.code[i - 2].is_punct(':')
            {
                "unseeded `rand::random` — thread a seeded RNG from the simulation config"
                    .to_owned()
            } else {
                continue;
            };
            out.push(Violation {
                rule: "determinism",
                path: file.path.clone(),
                line: t.line,
                col: t.col,
                severity: Severity::Error,
                message,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workspace;
    use std::path::PathBuf;

    fn run(path: &str, src: &str) -> Vec<Violation> {
        let ws = Workspace::from_sources(&[(path, src)]);
        check(&ws, &Config::for_root(PathBuf::from(".")))
    }

    #[test]
    fn flags_wall_clock_and_entropy() {
        let v = run(
            "crates/explorers/src/x.rs",
            "fn f() { let t = std::time::SystemTime::now(); let r = thread_rng(); }",
        );
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].message.contains("SystemTime"));
    }

    #[test]
    fn allowlisted_clock_module_is_exempt() {
        assert!(run(
            "crates/journal/src/time.rs",
            "fn f() { let t = SystemTime::now(); }"
        )
        .is_empty());
    }

    #[test]
    fn strings_and_tests_are_exempt() {
        assert!(run(
            "crates/core/src/y.rs",
            "fn f() { log(\"SystemTime::now\"); }\n#[cfg(test)]\nmod t { fn g() { Instant::now(); } }"
        )
        .is_empty());
    }
}
