//! Rule `lock-order`: no lock cycles, no locks held across file IO.
//!
//! The analyzer extracts every `parking_lot`-style acquisition site
//! (`.lock()`, zero-arg `.read()` / `.write()`, and the closure-passing
//! wrappers `x.read(|j| …)` / `x.write(|j| …)` that hold the guard for
//! the closure body), computes each guard's token extent (binding until
//! `drop(guard)` or end of the enclosing block; temporaries until the
//! end of the statement; wrappers until the closure's call closes), and
//! then:
//!
//! 1. builds the inter-function *acquired-while-held* graph over lock
//!    labels — nested acquisitions plus, transitively through the call
//!    graph, locks taken inside called functions — and flags every cycle
//!    (including re-acquiring the same label, which self-deadlocks with
//!    non-reentrant `parking_lot` locks);
//! 2. flags any guard whose extent reaches file IO (directly, or via a
//!    call chain to a function that does file IO) — holding the journal
//!    lock across an fsync turns every reader into a disk-latency
//!    victim, so the sites that do it on purpose (the WAL serialization
//!    point) must say so with a suppression.
//!
//! Calls are resolved by name, with two precision guards: a callee name
//! only links to a function defined in the *same crate*, and only when
//! that name has exactly *one* definition there. Ambiguous names —
//! trait methods with several impls (`stats`), std-trait lookalikes
//! (`new`, `collect`, `default`) — are not linked at all: a wrong link
//! would manufacture findings that force untrue suppressions, while a
//! skipped link at worst misses a chain the direct-IO scan usually
//! catches anyway.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Tok, TokKind};
use crate::rules::{matching_close, statement_end};
use crate::{Config, Severity, Violation, Workspace};

/// Method names performing file IO directly.
const IO_METHODS: [&str; 10] = [
    "sync_all",
    "sync_data",
    "sync_now",
    "flush",
    "write_all",
    "read_to_end",
    "read_exact",
    "set_len",
    "seek",
    "rename",
];

/// Path heads whose associated functions are file IO (`fs::…`,
/// `File::…`, `OpenOptions::…`).
const IO_PATHS: [&str; 3] = ["fs", "File", "OpenOptions"];

/// Keywords never treated as function calls.
const KEYWORDS: [&str; 14] = [
    "if", "else", "while", "for", "loop", "match", "return", "let", "fn", "move", "in", "as",
    "where", "unsafe",
];

/// One lock acquisition with its guard extent (token index range).
struct Acq {
    /// Graph label: receiver chain with a leading `self.` stripped.
    label: String,
    line: u32,
    col: u32,
    /// First token index inside the guard's live range.
    start: usize,
    /// Token index one past the guard's live range.
    end: usize,
}

/// A function body and what it contains.
struct FnInfo {
    name: String,
    file: usize,
    body_start: usize,
    body_end: usize,
    acqs: Vec<Acq>,
}

/// The crate a workspace-relative path belongs to (`crates/net/src/…` →
/// `net`; anything else is keyed by its top-level directory).
fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_owned(),
        (Some(top), _) => top.to_owned(),
        _ => String::new(),
    }
}

pub fn check(ws: &Workspace, _cfg: &Config) -> Vec<Violation> {
    // Pass 1: functions, acquisitions, per-function calls and direct IO.
    let mut fns: Vec<FnInfo> = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        collect_functions(fi, &file.code, &mut fns);
    }
    // Filter acquisitions inside test code.
    for f in &mut fns {
        let file = &ws.files[f.file];
        f.acqs.retain(|a| !file.in_test(a.line));
    }

    // How many definitions each (crate, name) has — only unique names
    // participate in call linking (see module docs).
    let mut def_count: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in &fns {
        let key = (crate_of(&ws.files[f.file].path), f.name.clone());
        *def_count.entry(key).or_insert(0) += 1;
    }
    let resolve = |caller_file: usize, name: &str| -> Option<String> {
        let krate = crate_of(&ws.files[caller_file].path);
        let key = (krate, name.to_owned());
        if def_count.get(&key).copied() == Some(1) {
            Some(format!("{}::{}", key.0, key.1))
        } else {
            None
        }
    };

    // Crate-qualified summaries.
    let mut does_io: BTreeMap<String, bool> = BTreeMap::new();
    let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut own_locks: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in &fns {
        let Some(qname) = resolve(f.file, &f.name) else {
            continue;
        };
        let code = &ws.files[f.file].code;
        let io = scan_range_for_io(code, f.body_start, f.body_end).is_some();
        *does_io.entry(qname.clone()).or_insert(false) |= io;
        let callees = calls.entry(qname.clone()).or_default();
        for (name, _) in calls_in_range(code, f.body_start, f.body_end) {
            if let Some(q) = resolve(f.file, &name) {
                callees.insert(q);
            }
        }
        let locks = own_locks.entry(qname).or_default();
        for a in &f.acqs {
            locks.insert(a.label.clone());
        }
    }
    // Fixpoint: IO-reachability and lock-reachability through calls.
    let io_fns = fixpoint(&calls, &does_io);
    let reach_locks = lock_fixpoint(&calls, &own_locks);

    let mut out = Vec::new();
    // Edges of the acquired-while-held graph, with a witness site.
    let mut edges: BTreeMap<(String, String), (usize, u32, u32, String)> = BTreeMap::new();

    for f in &fns {
        let code = &ws.files[f.file].code;
        for a in &f.acqs {
            // (2) IO while the guard is live — direct, or via a callee.
            let io_site = scan_range_for_io(code, a.start, a.end).or_else(|| {
                calls_in_range(code, a.start, a.end)
                    .into_iter()
                    .find(|(name, _)| resolve(f.file, name).is_some_and(|q| io_fns.contains(&q)))
            });
            if let Some((callee, line)) = io_site {
                out.push(Violation {
                    rule: "lock-order",
                    path: ws.files[f.file].path.clone(),
                    line: a.line,
                    col: a.col,
                    severity: Severity::Error,
                    message: format!(
                        "lock `{}` held across file IO (`{}` at line {line}) — \
                         readers stall on disk latency; move the IO out or \
                         document the serialization point with a suppression",
                        a.label, callee
                    ),
                });
            }
            // (1) Locks acquired while this guard is live.
            for b in &f.acqs {
                if b.start > a.start && b.start < a.end {
                    edges.entry((a.label.clone(), b.label.clone())).or_insert((
                        f.file,
                        a.line,
                        a.col,
                        format!("`{}` then `{}` in `{}`", a.label, b.label, f.name),
                    ));
                }
            }
            for (callee, _) in calls_in_range(code, a.start, a.end) {
                let Some(q) = resolve(f.file, &callee) else {
                    continue;
                };
                if let Some(locks) = reach_locks.get(&q) {
                    for l in locks {
                        edges.entry((a.label.clone(), l.clone())).or_insert((
                            f.file,
                            a.line,
                            a.col,
                            format!("`{}` held while `{}` locks `{}`", a.label, callee, l),
                        ));
                    }
                }
            }
        }
    }

    // Cycle detection over the label graph.
    let graph: BTreeMap<&String, Vec<&String>> = {
        let mut g: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
        for (a, b) in edges.keys() {
            g.entry(a).or_default().push(b);
        }
        g
    };
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for ((a, b), (file, line, col, via)) in &edges {
        let cyclic = a == b || reaches(&graph, b, a);
        if !cyclic {
            continue;
        }
        let key = if a <= b {
            format!("{a}\u{0}{b}")
        } else {
            format!("{b}\u{0}{a}")
        };
        if !reported.insert(key) {
            continue;
        }
        let message = if a == b {
            format!(
                "lock `{a}` re-acquired while already held ({via}) — \
                 parking_lot locks are not reentrant; this self-deadlocks"
            )
        } else {
            format!(
                "potential lock cycle between `{a}` and `{b}` ({via}, and a \
                 path back from `{b}` to `{a}`) — pick one acquisition order"
            )
        };
        out.push(Violation {
            rule: "lock-order",
            path: ws.files[*file].path.clone(),
            line: *line,
            col: *col,
            severity: Severity::Error,
            message,
        });
    }
    out
}

/// DFS reachability over the label graph.
fn reaches(graph: &BTreeMap<&String, Vec<&String>>, from: &String, to: &String) -> bool {
    let mut stack = vec![from];
    let mut seen: BTreeSet<&String> = BTreeSet::new();
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n) {
            continue;
        }
        if let Some(next) = graph.get(n) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// Propagates `does_io` backwards over the call graph.
fn fixpoint(
    calls: &BTreeMap<String, BTreeSet<String>>,
    seed: &BTreeMap<String, bool>,
) -> BTreeSet<String> {
    let mut io: BTreeSet<String> = seed
        .iter()
        .filter(|(_, v)| **v)
        .map(|(k, _)| k.clone())
        .collect();
    loop {
        let mut grew = false;
        for (name, callees) in calls {
            if !io.contains(name) && callees.iter().any(|c| io.contains(c)) {
                io.insert(name.clone());
                grew = true;
            }
        }
        if !grew {
            return io;
        }
    }
}

/// Propagates acquired-lock sets backwards over the call graph.
fn lock_fixpoint(
    calls: &BTreeMap<String, BTreeSet<String>>,
    own: &BTreeMap<String, BTreeSet<String>>,
) -> BTreeMap<String, BTreeSet<String>> {
    let mut reach = own.clone();
    loop {
        let mut grew = false;
        for (name, callees) in calls {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for c in callees {
                if let Some(ls) = reach.get(c) {
                    add.extend(ls.iter().cloned());
                }
            }
            let entry = reach.entry(name.clone()).or_default();
            let before = entry.len();
            entry.extend(add);
            grew |= entry.len() != before;
        }
        if !grew {
            return reach;
        }
    }
}

/// Finds `fn name … { body }` items and their acquisitions.
fn collect_functions(file: usize, code: &[Tok], out: &mut Vec<FnInfo>) {
    let mut i = 0usize;
    while i < code.len() {
        if !code[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = code.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Parameter list.
        let mut j = i + 2;
        while j < code.len() && !code[j].is_punct('(') {
            j += 1;
        }
        if j >= code.len() {
            break;
        }
        let params_close = matching_close(code, j);
        // Body `{` or declaration `;`.
        let mut k = params_close + 1;
        while k < code.len() && !code[k].is_punct('{') && !code[k].is_punct(';') {
            k += 1;
        }
        if k >= code.len() || code[k].is_punct(';') {
            i = k.max(i + 1);
            continue;
        }
        let body_end = matching_close(code, k);
        let mut info = FnInfo {
            name: name_tok.text.clone(),
            file,
            body_start: k + 1,
            body_end,
            acqs: Vec::new(),
        };
        find_acquisitions(code, k + 1, body_end, &mut info.acqs);
        out.push(info);
        // Continue *inside* the body so nested fns are found too; their
        // acquisitions will be attributed to both, which only over-reports.
        i = k + 1;
    }
}

/// Scans `[start, end)` for lock acquisitions and computes guard extents.
fn find_acquisitions(code: &[Tok], start: usize, end: usize, out: &mut Vec<Acq>) {
    for i in start..end {
        if !code[i].is_punct('.') {
            continue;
        }
        let Some(m) = code.get(i + 1) else { continue };
        if !(m.is_ident("lock") || m.is_ident("read") || m.is_ident("write")) {
            continue;
        }
        if !code.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let after_paren = code.get(i + 3);
        let zero_arg = after_paren.is_some_and(|t| t.is_punct(')'));
        let wrapper = after_paren.is_some_and(|t| t.is_punct('|') || t.is_ident("move"));
        if !(zero_arg || wrapper) {
            continue;
        }
        let label = receiver_label(code, i);
        let (ext_start, ext_end) = if wrapper {
            // Guard lives for the closure call: until the `(` closes.
            (i + 3, matching_close(code, i + 2))
        } else {
            guard_extent(code, i, end)
        };
        out.push(Acq {
            label,
            line: m.line,
            col: m.col,
            start: ext_start,
            end: ext_end,
        });
    }
}

/// Walks the receiver chain backwards from the `.` at `dot`:
/// `self . wal . lock` → `wal`; `journal . inner . read` → `journal.inner`.
fn receiver_label(code: &[Tok], dot: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut i = dot;
    loop {
        if i == 0 {
            break;
        }
        let prev = &code[i - 1];
        if prev.kind == TokKind::Ident {
            parts.push(prev.text.clone());
            if i >= 2 && code[i - 2].is_punct('.') {
                i -= 2;
                continue;
            }
        }
        break;
    }
    parts.reverse();
    if parts.first().is_some_and(|p| p == "self") {
        parts.remove(0);
    }
    if parts.is_empty() {
        "<expr>".to_owned()
    } else {
        parts.join(".")
    }
}

/// Extent of a zero-arg acquisition's guard.
///
/// `let g = x.lock();` → until `drop(g)` or the enclosing block closes;
/// a temporary (`x.lock().field…`) → until the statement's `;`.
fn guard_extent(code: &[Tok], dot: usize, fn_end: usize) -> (usize, usize) {
    // Find the binding: statement start is after the previous `;`/`{`/`}`.
    let mut s = dot;
    while s > 0 {
        let t = &code[s - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        s -= 1;
    }
    let bound_name = if code.get(s).is_some_and(|t| t.is_ident("let")) {
        let mut n = s + 1;
        if code.get(n).is_some_and(|t| t.is_ident("mut")) {
            n += 1;
        }
        match code.get(n) {
            Some(t)
                if t.kind == TokKind::Ident && code.get(n + 1).is_some_and(|e| e.is_punct('=')) =>
            {
                Some(t.text.clone())
            }
            _ => None,
        }
    } else {
        None
    };
    let acq_end = dot + 4; // past `. name ( )`
    match bound_name {
        None => (acq_end, statement_end(code, acq_end).min(fn_end) + 1),
        Some(name) => {
            // Until `drop ( name )` or the enclosing block closes.
            let mut depth = 0i64;
            let mut i = acq_end;
            while i < fn_end {
                let t = &code[i];
                if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                    if depth < 0 {
                        return (acq_end, i);
                    }
                } else if t.is_ident("drop")
                    && code.get(i + 1).is_some_and(|p| p.is_punct('('))
                    && code.get(i + 2).is_some_and(|n| n.is_ident(&name))
                    && code.get(i + 3).is_some_and(|p| p.is_punct(')'))
                {
                    return (acq_end, i);
                }
                i += 1;
            }
            (acq_end, fn_end)
        }
    }
}

/// Direct file-IO tokens in `[start, end)`: returns the first as
/// `(name, line)`.
fn scan_range_for_io(code: &[Tok], start: usize, end: usize) -> Option<(String, u32)> {
    for i in start..end.min(code.len()) {
        let t = &code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        let called = code.get(i + 1).is_some_and(|n| n.is_punct('('));
        let pathy = code.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && code.get(i + 2).is_some_and(|n| n.is_punct(':'));
        if (IO_METHODS.contains(&name) && called) || (IO_PATHS.contains(&name) && pathy) {
            return Some((t.text.clone(), t.line));
        }
    }
    None
}

/// Function/method calls in `[start, end)` as `(name, line)` —
/// identifier directly followed by `(`, excluding keywords, macros
/// (`name!`), and the lock methods themselves.
fn calls_in_range(code: &[Tok], start: usize, end: usize) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for i in start..end.min(code.len()) {
        let t = &code[i];
        if t.kind != TokKind::Ident
            || KEYWORDS.contains(&t.text.as_str())
            || matches!(t.text.as_str(), "lock" | "read" | "write")
        {
            continue;
        }
        if i > 0 && code[i - 1].is_punct('!') {
            continue;
        }
        if code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            out.push((t.text.clone(), t.line));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workspace;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Violation> {
        let ws = Workspace::from_sources(&[("crates/x/src/a.rs", src)]);
        check(&ws, &Config::for_root(PathBuf::from(".")))
    }

    #[test]
    fn lock_held_across_direct_io() {
        let v = run("fn f(&self) { let g = self.state.lock(); self.file.sync_all(); }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("held across file IO"));
        assert!(v[0].message.contains("state"));
    }

    #[test]
    fn drop_releases_the_guard() {
        assert!(run(
            "fn f(&self) { let g = self.state.lock(); use_it(&g); drop(g); self.file.sync_all(); }"
        )
        .is_empty());
    }

    #[test]
    fn wrapper_closure_holds_for_its_body_only() {
        let v =
            run("fn f(&self) { self.j.read(|x| save(x)); }\nfn save(x: &X) { fs::write(p, x); }");
        assert_eq!(v.len(), 1, "{v:?}");
        let ok = run("fn f(&self) { let s = self.j.read(|x| x.clone()); save(&s); }\nfn save(x: &X) { fs::write(p, x); }");
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn io_through_call_chain() {
        let v = run(
            "fn f(&self) { let g = self.state.lock(); step(); }\nfn step() { inner(); }\nfn inner() { file.write_all(buf); }",
        );
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn cycle_between_two_locks() {
        let v = run(
            "fn f(&self) { let a = self.a.lock(); let b = self.b.lock(); }\nfn g(&self) { let b = self.b.lock(); let a = self.a.lock(); }",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("cycle"), "{v:?}");
    }

    #[test]
    fn self_reacquire_flags() {
        let v = run("fn f(&self) { let a = self.m.lock(); helper(); }\nfn helper(&self) { let b = self.m.lock(); }");
        assert!(v.iter().any(|v| v.message.contains("re-acquired")), "{v:?}");
    }

    #[test]
    fn consistent_order_is_fine() {
        assert!(run(
            "fn f(&self) { let a = self.a.lock(); let b = self.b.lock(); }\nfn g(&self) { let a = self.a.lock(); let b = self.b.lock(); }"
        )
        .is_empty());
    }

    #[test]
    fn io_read_write_with_args_is_not_a_lock() {
        assert!(run("fn f(file: &mut File) { file.write(buf); r.read(buf); }").is_empty());
    }

    #[test]
    fn ambiguous_callee_names_are_not_linked() {
        // Two `stats` definitions (a trait with two impls): holding a
        // lock while calling `stats()` must not inherit either body.
        let ws = Workspace::from_sources(&[
            (
                "crates/x/src/a.rs",
                "fn caller(&self) { let g = self.inner.lock(); self.j.stats(); }\nfn stats(&self) -> S { S::pure() }",
            ),
            ("crates/x/src/b.rs", "fn stats(&self) -> S { self.file.sync_all() }"),
        ]);
        let v = check(&ws, &Config::for_root(PathBuf::from(".")));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cross_crate_names_are_not_linked() {
        let ws = Workspace::from_sources(&[
            (
                "crates/a/src/l.rs",
                "fn caller(&self) { let g = self.inner.lock(); helper(); }",
            ),
            ("crates/b/src/m.rs", "fn helper() { fs::write(p, d); }"),
        ]);
        let v = check(&ws, &Config::for_root(PathBuf::from(".")));
        assert!(v.is_empty(), "{v:?}");
    }
}
