//! Rule `lock-order`: no lock cycles, no locks held across file IO.
//!
//! The analyzer extracts every `parking_lot`-style acquisition site
//! (`.lock()`, zero-arg `.read()` / `.write()`, and the closure-passing
//! wrappers `x.read(|j| …)` / `x.write(|j| …)` that hold the guard for
//! the closure body), computes each guard's token extent (binding until
//! `drop(guard)` or end of the enclosing block; temporaries until the
//! end of the statement; wrappers until the closure's call closes), and
//! then:
//!
//! 1. builds the inter-function *acquired-while-held* graph over lock
//!    labels — nested acquisitions plus, transitively through the
//!    cross-crate call graph ([`crate::callgraph`]), locks taken inside
//!    called functions — and flags every cycle (including re-acquiring
//!    the same label, which self-deadlocks with non-reentrant
//!    `parking_lot` locks);
//! 2. flags any guard whose extent reaches file IO (directly, or via a
//!    call chain to a function that does file IO) — holding the journal
//!    lock across an fsync turns every reader into a disk-latency
//!    victim, so the sites that do it on purpose (the WAL serialization
//!    point) must say so with a suppression.
//!
//! Calls resolve through `use` imports and fully-qualified paths across
//! crates, with the one-definition precision guard per resolved crate
//! (see the call-graph module docs). The acquired-while-held edges are
//! also the source of `crates/lint/lock-order.golden`, the acquisition
//! DAG the runtime sanitizer (`parking_lot` `tracked` feature) asserts
//! on every test run — the static pass and the dynamic sanitizer
//! cross-validate the same golden.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{self, CallGraph};
use crate::lexer::{Tok, TokKind};
use crate::rules::{matching_close, statement_end};
use crate::{Config, Severity, Violation, Workspace};

/// Method names performing file IO directly.
const IO_METHODS: [&str; 10] = [
    "sync_all",
    "sync_data",
    "sync_now",
    "flush",
    "write_all",
    "read_to_end",
    "read_exact",
    "set_len",
    "seek",
    "rename",
];

/// Path heads whose associated functions are file IO (`fs::…`,
/// `File::…`, `OpenOptions::…`).
const IO_PATHS: [&str; 3] = ["fs", "File", "OpenOptions"];

/// One lock acquisition with its guard extent (token index range).
pub(crate) struct Acq {
    /// Graph label: receiver chain with a leading `self.` stripped;
    /// indexed receivers keep their index expression
    /// (`self.shards[idx].read()` → `shards[idx]`).
    pub(crate) label: String,
    pub(crate) line: u32,
    pub(crate) col: u32,
    /// First token index inside the guard's live range.
    pub(crate) start: usize,
    /// Token index one past the guard's live range.
    pub(crate) end: usize,
}

/// What the `lock-order` pass learned, shared with `shard-lock-order`
/// and the golden exporter in `lib.rs`.
pub struct LockReport {
    pub violations: Vec<Violation>,
    /// Acquired-while-held edges over receiver labels.
    pub edges: BTreeSet<(String, String)>,
    /// Lock labels each function (transitively) acquires.
    pub reach_locks: BTreeMap<String, BTreeSet<String>>,
}

/// Per-function acquisitions, exposed so `shard-lock-order` reuses the
/// same extraction.
pub(crate) fn acquisitions_of(
    ws: &Workspace,
    cg: &CallGraph,
) -> Vec<(usize /* fn index */, Vec<Acq>)> {
    let mut out = Vec::new();
    for (i, f) in cg.fns.iter().enumerate() {
        let file = &ws.files[f.file];
        let mut acqs = Vec::new();
        find_acquisitions(&file.code, f.body_start, f.body_end, &mut acqs);
        acqs.retain(|a| !file.in_test(a.line));
        if !acqs.is_empty() {
            out.push((i, acqs));
        }
    }
    out
}

pub fn check(ws: &Workspace, _cfg: &Config, cg: &CallGraph) -> LockReport {
    let fn_acqs = acquisitions_of(ws, cg);

    // Crate-qualified summaries over the shared call graph.
    let mut io_seed: BTreeSet<String> = BTreeSet::new();
    let mut own_locks: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in &cg.fns {
        let Some(qname) = cg.qname_of(f) else {
            continue;
        };
        let code = &ws.files[f.file].code;
        if scan_range_for_io(code, f.body_start, f.body_end).is_some() {
            io_seed.insert(qname.clone());
        }
    }
    for (fi, acqs) in &fn_acqs {
        let f = &cg.fns[*fi];
        let Some(qname) = cg.qname_of(f) else {
            continue;
        };
        let locks = own_locks.entry(qname).or_default();
        for a in acqs {
            locks.insert(a.label.clone());
        }
    }
    // Fixpoint: IO-reachability and lock-reachability through calls.
    let io_fns = callgraph::reach_flag(&cg.calls, &io_seed);
    let reach_locks = callgraph::reach_sets(&cg.calls, &own_locks);

    let mut out = Vec::new();
    // Edges of the acquired-while-held graph, with a witness site.
    let mut edges: BTreeMap<(String, String), (usize, u32, u32, String)> = BTreeMap::new();

    for (fi, acqs) in &fn_acqs {
        let f = &cg.fns[*fi];
        let code = &ws.files[f.file].code;
        for a in acqs {
            // (2) IO while the guard is live — direct, or via a callee.
            let io_site = scan_range_for_io(code, a.start, a.end).or_else(|| {
                callgraph::calls_in_range(code, a.start, a.end)
                    .into_iter()
                    .find(|site| {
                        cg.resolve(f.file, site)
                            .is_some_and(|q| io_fns.contains(&q))
                    })
                    .map(|site| (site.name, site.line))
            });
            if let Some((callee, line)) = io_site {
                out.push(Violation {
                    rule: "lock-order",
                    path: ws.files[f.file].path.clone(),
                    line: a.line,
                    col: a.col,
                    severity: Severity::Error,
                    message: format!(
                        "lock `{}` held across file IO (`{}` at line {line}) — \
                         readers stall on disk latency; move the IO out or \
                         document the serialization point with a suppression",
                        a.label, callee
                    ),
                });
            }
            // (1) Locks acquired while this guard is live.
            for b in acqs {
                if b.start > a.start && b.start < a.end {
                    edges.entry((a.label.clone(), b.label.clone())).or_insert((
                        f.file,
                        a.line,
                        a.col,
                        format!("`{}` then `{}` in `{}`", a.label, b.label, f.name),
                    ));
                }
            }
            for site in callgraph::calls_in_range(code, a.start, a.end) {
                let Some(q) = cg.resolve(f.file, &site) else {
                    continue;
                };
                if let Some(locks) = reach_locks.get(&q) {
                    for l in locks {
                        edges.entry((a.label.clone(), l.clone())).or_insert((
                            f.file,
                            a.line,
                            a.col,
                            format!("`{}` held while `{}` locks `{}`", a.label, site.name, l),
                        ));
                    }
                }
            }
        }
    }

    // Cycle detection over the label graph.
    let graph: BTreeMap<&String, Vec<&String>> = {
        let mut g: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
        for (a, b) in edges.keys() {
            g.entry(a).or_default().push(b);
        }
        g
    };
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for ((a, b), (file, line, col, via)) in &edges {
        let cyclic = a == b || reaches(&graph, b, a);
        if !cyclic {
            continue;
        }
        let key = if a <= b {
            format!("{a}\u{0}{b}")
        } else {
            format!("{b}\u{0}{a}")
        };
        if !reported.insert(key) {
            continue;
        }
        let message = if a == b {
            format!(
                "lock `{a}` re-acquired while already held ({via}) — \
                 parking_lot locks are not reentrant; this self-deadlocks"
            )
        } else {
            format!(
                "potential lock cycle between `{a}` and `{b}` ({via}, and a \
                 path back from `{b}` to `{a}`) — pick one acquisition order"
            )
        };
        out.push(Violation {
            rule: "lock-order",
            path: ws.files[*file].path.clone(),
            line: *line,
            col: *col,
            severity: Severity::Error,
            message,
        });
    }
    LockReport {
        violations: out,
        edges: edges.into_keys().collect(),
        reach_locks,
    }
}

/// DFS reachability over the label graph.
fn reaches(graph: &BTreeMap<&String, Vec<&String>>, from: &String, to: &String) -> bool {
    let mut stack = vec![from];
    let mut seen: BTreeSet<&String> = BTreeSet::new();
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n) {
            continue;
        }
        if let Some(next) = graph.get(n) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// Scans `[start, end)` for lock acquisitions and computes guard extents.
pub(crate) fn find_acquisitions(code: &[Tok], start: usize, end: usize, out: &mut Vec<Acq>) {
    for i in start..end {
        if !code[i].is_punct('.') {
            continue;
        }
        let Some(m) = code.get(i + 1) else { continue };
        if !(m.is_ident("lock") || m.is_ident("read") || m.is_ident("write")) {
            continue;
        }
        if !code.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let after_paren = code.get(i + 3);
        let zero_arg = after_paren.is_some_and(|t| t.is_punct(')'));
        let wrapper = after_paren.is_some_and(|t| t.is_punct('|') || t.is_ident("move"));
        if !(zero_arg || wrapper) {
            continue;
        }
        let label = receiver_label(code, i);
        let (ext_start, ext_end) = if wrapper {
            // Guard lives for the closure call: until the `(` closes.
            (i + 3, matching_close(code, i + 2))
        } else {
            guard_extent(code, i, end)
        };
        out.push(Acq {
            label,
            line: m.line,
            col: m.col,
            start: ext_start,
            end: ext_end,
        });
    }
}

/// Walks the receiver chain backwards from the `.` at `dot`:
/// `self . wal . lock` → `wal`; `journal . inner . read` →
/// `journal.inner`; indexed receivers keep the index expression, so
/// `self . shards [ idx ] . read` → `shards[idx]`.
pub(crate) fn receiver_label(code: &[Tok], dot: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut i = dot;
    loop {
        if i == 0 {
            break;
        }
        let prev = &code[i - 1];
        if prev.kind == TokKind::Ident {
            parts.push(prev.text.clone());
            if i >= 2 && code[i - 2].is_punct('.') {
                i -= 2;
                continue;
            }
        } else if prev.is_punct(']') {
            // Indexing: match back to the `[`, then the indexed name.
            let mut depth = 1i64;
            let mut q = i - 1;
            while q > 0 && depth > 0 {
                q -= 1;
                if code[q].is_punct(']') {
                    depth += 1;
                } else if code[q].is_punct('[') {
                    depth -= 1;
                }
            }
            if depth == 0 && q > 0 && code[q - 1].kind == TokKind::Ident {
                let idx: String = code[q + 1..i - 1]
                    .iter()
                    .map(|t| t.text.as_str())
                    .collect::<Vec<_>>()
                    .join("");
                parts.push(format!("{}[{idx}]", code[q - 1].text));
                if q >= 2 && code[q - 2].is_punct('.') {
                    i = q - 1;
                    continue;
                }
            }
        }
        break;
    }
    parts.reverse();
    if parts.first().is_some_and(|p| p == "self") {
        parts.remove(0);
    }
    if parts.is_empty() {
        "<expr>".to_owned()
    } else {
        parts.join(".")
    }
}

/// Extent of a zero-arg acquisition's guard.
///
/// `let g = x.lock();` → until `drop(g)` or the enclosing block closes;
/// a temporary (`x.lock().field…`) → until the statement's `;`.
fn guard_extent(code: &[Tok], dot: usize, fn_end: usize) -> (usize, usize) {
    // Find the binding: statement start is after the previous `;`/`{`/`}`.
    let mut s = dot;
    while s > 0 {
        let t = &code[s - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        s -= 1;
    }
    let bound_name = if code.get(s).is_some_and(|t| t.is_ident("let")) {
        let mut n = s + 1;
        if code.get(n).is_some_and(|t| t.is_ident("mut")) {
            n += 1;
        }
        match code.get(n) {
            Some(t)
                if t.kind == TokKind::Ident && code.get(n + 1).is_some_and(|e| e.is_punct('=')) =>
            {
                Some(t.text.clone())
            }
            _ => None,
        }
    } else {
        None
    };
    let acq_end = dot + 4; // past `. name ( )`
    match bound_name {
        None => (acq_end, statement_end(code, acq_end).min(fn_end) + 1),
        Some(name) => {
            // Until `drop ( name )` or the enclosing block closes.
            let mut depth = 0i64;
            let mut i = acq_end;
            while i < fn_end {
                let t = &code[i];
                if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                    if depth < 0 {
                        return (acq_end, i);
                    }
                } else if t.is_ident("drop")
                    && code.get(i + 1).is_some_and(|p| p.is_punct('('))
                    && code.get(i + 2).is_some_and(|n| n.is_ident(&name))
                    && code.get(i + 3).is_some_and(|p| p.is_punct(')'))
                {
                    return (acq_end, i);
                }
                i += 1;
            }
            (acq_end, fn_end)
        }
    }
}

/// Direct file-IO tokens in `[start, end)`: returns the first as
/// `(name, line)`.
fn scan_range_for_io(code: &[Tok], start: usize, end: usize) -> Option<(String, u32)> {
    for i in start..end.min(code.len()) {
        let t = &code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        let called = code.get(i + 1).is_some_and(|n| n.is_punct('('));
        let pathy = code.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && code.get(i + 2).is_some_and(|n| n.is_punct(':'));
        if (IO_METHODS.contains(&name) && called) || (IO_PATHS.contains(&name) && pathy) {
            return Some((t.text.clone(), t.line));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workspace;
    use std::path::PathBuf;

    fn check_ws(ws: &Workspace) -> Vec<Violation> {
        let cg = CallGraph::build(ws);
        check(ws, &Config::for_root(PathBuf::from(".")), &cg).violations
    }

    fn run(src: &str) -> Vec<Violation> {
        check_ws(&Workspace::from_sources(&[("crates/x/src/a.rs", src)]))
    }

    #[test]
    fn lock_held_across_direct_io() {
        let v = run("fn f(&self) { let g = self.state.lock(); self.file.sync_all(); }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("held across file IO"));
        assert!(v[0].message.contains("state"));
    }

    #[test]
    fn drop_releases_the_guard() {
        assert!(run(
            "fn f(&self) { let g = self.state.lock(); use_it(&g); drop(g); self.file.sync_all(); }"
        )
        .is_empty());
    }

    #[test]
    fn wrapper_closure_holds_for_its_body_only() {
        let v =
            run("fn f(&self) { self.j.read(|x| save(x)); }\nfn save(x: &X) { fs::write(p, x); }");
        assert_eq!(v.len(), 1, "{v:?}");
        let ok = run("fn f(&self) { let s = self.j.read(|x| x.clone()); save(&s); }\nfn save(x: &X) { fs::write(p, x); }");
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn io_through_call_chain() {
        let v = run(
            "fn f(&self) { let g = self.state.lock(); step(); }\nfn step() { inner(); }\nfn inner() { file.write_all(buf); }",
        );
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn cycle_between_two_locks() {
        let v = run(
            "fn f(&self) { let a = self.a.lock(); let b = self.b.lock(); }\nfn g(&self) { let b = self.b.lock(); let a = self.a.lock(); }",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("cycle"), "{v:?}");
    }

    #[test]
    fn self_reacquire_flags() {
        let v = run("fn f(&self) { let a = self.m.lock(); helper(); }\nfn helper(&self) { let b = self.m.lock(); }");
        assert!(v.iter().any(|v| v.message.contains("re-acquired")), "{v:?}");
    }

    #[test]
    fn consistent_order_is_fine() {
        assert!(run(
            "fn f(&self) { let a = self.a.lock(); let b = self.b.lock(); }\nfn g(&self) { let a = self.a.lock(); let b = self.b.lock(); }"
        )
        .is_empty());
    }

    #[test]
    fn io_read_write_with_args_is_not_a_lock() {
        assert!(run("fn f(file: &mut File) { file.write(buf); r.read(buf); }").is_empty());
    }

    #[test]
    fn indexed_receivers_keep_their_index() {
        let ws = Workspace::from_sources(&[(
            "crates/x/src/a.rs",
            "fn f(&self) { let g = self.shards[idx].read(); self.file.sync_all(); }",
        )]);
        let v = check_ws(&ws);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("`shards[idx]`"), "{v:?}");
    }

    #[test]
    fn ambiguous_callee_names_are_not_linked() {
        // Two `stats` definitions (a trait with two impls): holding a
        // lock while calling `stats()` must not inherit either body.
        let ws = Workspace::from_sources(&[
            (
                "crates/x/src/a.rs",
                "fn caller(&self) { let g = self.inner.lock(); self.j.stats(); }\nfn stats(&self) -> S { S::pure() }",
            ),
            ("crates/x/src/b.rs", "fn stats(&self) -> S { self.file.sync_all() }"),
        ]);
        assert!(check_ws(&ws).is_empty());
    }

    #[test]
    fn unique_cross_crate_names_link() {
        // `helper` has exactly one definition anywhere in the workspace,
        // so the chain crosses the crate boundary.
        let ws = Workspace::from_sources(&[
            (
                "crates/a/src/l.rs",
                "fn caller(&self) { let g = self.inner.lock(); helper(); }",
            ),
            ("crates/b/src/m.rs", "fn helper() { fs::write(p, d); }"),
        ]);
        let v = check_ws(&ws);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("held across file IO"), "{v:?}");
    }

    #[test]
    fn ambiguous_cross_crate_names_are_not_linked() {
        let ws = Workspace::from_sources(&[
            (
                "crates/a/src/l.rs",
                "fn caller(&self) { let g = self.inner.lock(); helper(); }",
            ),
            ("crates/b/src/m.rs", "fn helper() { fs::write(p, d); }"),
            ("crates/c/src/n.rs", "fn helper() {}"),
        ]);
        assert!(check_ws(&ws).is_empty());
    }

    #[test]
    fn qualified_cross_crate_call_links() {
        // A clean same-crate `helper` exists, but the fully-qualified
        // path selects crate `b`'s IO-doing one.
        let ws = Workspace::from_sources(&[
            (
                "crates/a/src/l.rs",
                "fn caller(&self) { let g = self.inner.lock(); fremont_b::util::helper(); }\nfn helper() {}",
            ),
            ("crates/b/src/m.rs", "fn helper() { fs::write(p, d); }"),
        ]);
        let v = check_ws(&ws);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn imported_name_selects_its_crate() {
        // Without the import, `helper` (two crates define it) would be
        // ambiguous; the `use` pins it to crate `b`.
        let ws = Workspace::from_sources(&[
            (
                "crates/a/src/l.rs",
                "use fremont_b::util::helper;\nfn caller(&self) { let g = self.inner.lock(); helper(); }",
            ),
            ("crates/b/src/m.rs", "fn helper() { fs::write(p, d); }"),
            ("crates/c/src/n.rs", "fn helper() {}"),
        ]);
        let v = check_ws(&ws);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn cross_crate_lock_cycle_is_found() {
        let ws = Workspace::from_sources(&[
            (
                "crates/a/src/l.rs",
                "fn f(&self) { let a = self.alpha.lock(); fremont_b::take_beta(); }",
            ),
            (
                "crates/b/src/m.rs",
                "pub fn take_beta() { let b = BETA.lock(); fremont_a::take_alpha(); }",
            ),
            (
                "crates/a/src/n.rs",
                "pub fn take_alpha() { let a2 = ALPHA2.lock(); }",
            ),
        ]);
        // a holds `alpha` then b locks `BETA`… the edge set crosses
        // crates; no cycle here, so only assert the chain linked by
        // checking the io-free run stays violation-free.
        assert!(check_ws(&ws).is_empty());
        // Now a genuine cycle: b re-enters alpha.
        let ws = Workspace::from_sources(&[
            (
                "crates/a/src/l.rs",
                "fn f(&self) { let a = self.alpha.lock(); fremont_b::take_beta(); }\npub fn take_alpha() { let g = self.beta.lock(); let a = self.alpha.lock(); }",
            ),
            (
                "crates/b/src/m.rs",
                "pub fn take_beta() { let b = self.beta.lock(); }",
            ),
        ]);
        let v = check_ws(&ws);
        assert!(v.iter().any(|v| v.message.contains("cycle")), "{v:?}");
    }
}
