//! Rule `panic`: no panicking constructs in hot/IO paths.
//!
//! A panic mid-append can tear a WAL frame while the process still
//! believes the record was acknowledged, and a panic in an explorer
//! kills a whole discovery run. Inside the configured hot paths
//! (`crates/storage`, `crates/explorers`, the driver) `unwrap`,
//! `expect`, `panic!`, `todo!`, `unimplemented!`, and `unreachable!`
//! are forbidden; errors must travel the existing `Result` paths.
//! Test code is exempt — a panicking assertion is what a test is.
//!
//! The rule is interprocedural: a hot-path function calling an
//! *out-of-scope* function that (transitively, through the cross-crate
//! call graph) reaches a panicking construct is flagged at the call
//! site, with the chain to the offending token in the message. Only
//! boundary crossings are reported — a chain that stays inside the
//! panic scope is already flagged where the construct sits.

use std::collections::BTreeMap;

use crate::callgraph::{self, CallGraph};
use crate::lexer::TokKind;
use crate::{Config, Severity, Violation, Workspace};

/// Methods that panic on the error/None arm.
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Macros that abort the thread outright.
const PANIC_MACROS: [&str; 4] = ["panic", "unimplemented", "todo", "unreachable"];

/// The first panicking construct in `[start, end)` outside test lines,
/// as `(construct, line)`.
fn scan_range_for_panic(
    file: &crate::SourceFile,
    start: usize,
    end: usize,
) -> Option<(String, u32)> {
    let code = &file.code;
    for i in start..end.min(code.len()) {
        let t = &code[i];
        if t.kind != TokKind::Ident || file.in_test(t.line) {
            continue;
        }
        let name = t.text.as_str();
        let prev_dot = i > 0 && code[i - 1].is_punct('.');
        let next_bang = code.get(i + 1).is_some_and(|n| n.is_punct('!'));
        if PANIC_METHODS.contains(&name) && prev_dot {
            return Some((format!(".{name}()"), t.line));
        }
        if PANIC_MACROS.contains(&name) && next_bang {
            return Some((format!("{name}!"), t.line));
        }
    }
    None
}

pub fn check(ws: &Workspace, cfg: &Config, cg: &CallGraph) -> Vec<Violation> {
    let mut out = Vec::new();
    // Direct constructs inside the scope.
    for file in &ws.files {
        if !file.in_scope(&cfg.panic_scope) {
            continue;
        }
        for (i, t) in file.code.iter().enumerate() {
            if t.kind != TokKind::Ident || file.in_test(t.line) {
                continue;
            }
            let name = t.text.as_str();
            let prev_dot = i > 0 && file.code[i - 1].is_punct('.');
            let next_bang = file.code.get(i + 1).is_some_and(|n| n.is_punct('!'));
            let message = if PANIC_METHODS.contains(&name) && prev_dot {
                format!(
                    "`.{name}()` in a hot/IO path can abort mid-append — \
                     propagate through the existing Result path instead"
                )
            } else if PANIC_MACROS.contains(&name) && next_bang {
                format!("`{name}!` in a hot/IO path — return an error instead")
            } else {
                continue;
            };
            out.push(Violation {
                rule: "panic",
                path: file.path.clone(),
                line: t.line,
                col: t.col,
                severity: Severity::Error,
                message,
            });
        }
    }

    // Interprocedural: calls from the scope to out-of-scope functions
    // that reach a panic.
    let mut fn_file: BTreeMap<String, usize> = BTreeMap::new();
    let mut witness_seed: BTreeMap<String, String> = BTreeMap::new();
    for f in &cg.fns {
        let Some(qname) = cg.qname_of(f) else {
            continue;
        };
        let file = &ws.files[f.file];
        fn_file.entry(qname.clone()).or_insert(f.file);
        if let Some((construct, line)) = scan_range_for_panic(file, f.body_start, f.body_end) {
            witness_seed
                .entry(qname)
                .or_insert_with(|| format!("`{construct}` at {}:{line}", file.path));
        }
    }
    let witness = callgraph::reach_witness(&cg.calls, &witness_seed);

    for f in &cg.fns {
        let file = &ws.files[f.file];
        if f.in_test || !file.in_scope(&cfg.panic_scope) {
            continue;
        }
        for site in callgraph::calls_in_range(&file.code, f.body_start, f.body_end) {
            if file.in_test(site.line) {
                continue;
            }
            let Some(q) = cg.resolve(f.file, &site) else {
                continue;
            };
            let Some(w) = witness.get(&q) else {
                continue;
            };
            // Only boundary crossings: in-scope callees carry their own
            // direct findings.
            let callee_in_scope = fn_file
                .get(&q)
                .is_some_and(|fi| ws.files[*fi].in_scope(&cfg.panic_scope));
            if callee_in_scope {
                continue;
            }
            out.push(Violation {
                rule: "panic",
                path: file.path.clone(),
                line: site.line,
                col: site.col,
                severity: Severity::Error,
                message: format!(
                    "call to `{q}` from a hot/IO path can panic ({w}) — \
                     handle the error in the callee or keep it off this path"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workspace;
    use std::path::PathBuf;

    fn check_ws(ws: &Workspace) -> Vec<Violation> {
        let cg = CallGraph::build(ws);
        check(ws, &Config::for_root(PathBuf::from(".")), &cg)
    }

    fn run(path: &str, src: &str) -> Vec<Violation> {
        check_ws(&Workspace::from_sources(&[(path, src)]))
    }

    #[test]
    fn flags_unwrap_expect_and_macros_in_scope() {
        let v = run(
            "crates/storage/src/x.rs",
            "fn f() { a.unwrap(); b.expect(\"msg\"); panic!(\"boom\"); todo!(); }",
        );
        assert_eq!(v.len(), 4, "{v:?}");
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        assert!(run(
            "crates/storage/src/x.rs",
            "fn f() { a.unwrap_or(0); b.unwrap_or_else(g); c.unwrap_or_default(); }"
        )
        .is_empty());
    }

    #[test]
    fn out_of_scope_paths_are_exempt() {
        assert!(run("crates/net/src/x.rs", "fn f() { a.unwrap(); }").is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        assert!(run(
            "crates/explorers/src/x.rs",
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n fn f() { a.unwrap(); panic!(); }\n}"
        )
        .is_empty());
    }

    #[test]
    fn suppression_does_not_hide_from_raw_check() {
        // Raw rule output includes the finding; lib::analyze applies
        // the suppression (covered by integration tests).
        let v = run(
            "crates/storage/src/x.rs",
            "// fremont-lint: allow(panic) -- infallible by construction\nfn f() { a.unwrap(); }",
        );
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn cross_crate_panic_chain_flags_the_call_site() {
        let ws = Workspace::from_sources(&[
            ("crates/storage/src/x.rs", "fn hot() { helper(); }"),
            (
                "crates/net/src/m.rs",
                "pub fn helper() { inner(); }\nfn inner() { v.unwrap(); }",
            ),
        ]);
        let v = check_ws(&ws);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].path, "crates/storage/src/x.rs");
        assert!(v[0].message.contains("net::helper"), "{v:?}");
        assert!(v[0].message.contains("crates/net/src/m.rs:2"), "{v:?}");
    }

    #[test]
    fn in_scope_callees_are_not_double_reported() {
        // `step` is itself in scope: its own `unwrap` is the (single)
        // finding; the call site adds nothing.
        let v = run(
            "crates/storage/src/x.rs",
            "fn hot() { step(); }\nfn step() { v.unwrap(); }",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn panic_free_cross_crate_chains_are_fine() {
        let ws = Workspace::from_sources(&[
            ("crates/storage/src/x.rs", "fn hot() { helper(); }"),
            ("crates/net/src/m.rs", "pub fn helper() -> u8 { 0 }"),
        ]);
        assert!(check_ws(&ws).is_empty());
    }
}
