//! Rule `panic`: no panicking constructs in hot/IO paths.
//!
//! A panic mid-append can tear a WAL frame while the process still
//! believes the record was acknowledged, and a panic in an explorer
//! kills a whole discovery run. Inside the configured hot paths
//! (`crates/storage`, `crates/explorers`, the driver) `unwrap`,
//! `expect`, `panic!`, `todo!`, `unimplemented!`, and `unreachable!`
//! are forbidden; errors must travel the existing `Result` paths.
//! Test code is exempt — a panicking assertion is what a test is.

use crate::lexer::TokKind;
use crate::{Config, Severity, Violation, Workspace};

/// Methods that panic on the error/None arm.
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Macros that abort the thread outright.
const PANIC_MACROS: [&str; 4] = ["panic", "unimplemented", "todo", "unreachable"];

pub fn check(ws: &Workspace, cfg: &Config) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in &ws.files {
        if !file.in_scope(&cfg.panic_scope) {
            continue;
        }
        for (i, t) in file.code.iter().enumerate() {
            if t.kind != TokKind::Ident || file.in_test(t.line) {
                continue;
            }
            let name = t.text.as_str();
            let prev_dot = i > 0 && file.code[i - 1].is_punct('.');
            let next_bang = file.code.get(i + 1).is_some_and(|n| n.is_punct('!'));
            let message = if PANIC_METHODS.contains(&name) && prev_dot {
                format!(
                    "`.{name}()` in a hot/IO path can abort mid-append — \
                     propagate through the existing Result path instead"
                )
            } else if PANIC_MACROS.contains(&name) && next_bang {
                format!("`{name}!` in a hot/IO path — return an error instead")
            } else {
                continue;
            };
            out.push(Violation {
                rule: "panic",
                path: file.path.clone(),
                line: t.line,
                col: t.col,
                severity: Severity::Error,
                message,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workspace;
    use std::path::PathBuf;

    fn run(path: &str, src: &str) -> Vec<Violation> {
        let ws = Workspace::from_sources(&[(path, src)]);
        check(&ws, &Config::for_root(PathBuf::from(".")))
    }

    #[test]
    fn flags_unwrap_expect_and_macros_in_scope() {
        let v = run(
            "crates/storage/src/x.rs",
            "fn f() { a.unwrap(); b.expect(\"msg\"); panic!(\"boom\"); todo!(); }",
        );
        assert_eq!(v.len(), 4, "{v:?}");
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        assert!(run(
            "crates/storage/src/x.rs",
            "fn f() { a.unwrap_or(0); b.unwrap_or_else(g); c.unwrap_or_default(); }"
        )
        .is_empty());
    }

    #[test]
    fn out_of_scope_paths_are_exempt() {
        assert!(run("crates/net/src/x.rs", "fn f() { a.unwrap(); }").is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        assert!(run(
            "crates/explorers/src/x.rs",
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n fn f() { a.unwrap(); panic!(); }\n}"
        )
        .is_empty());
    }

    #[test]
    fn suppression_does_not_hide_from_raw_check() {
        // Raw rule output includes the finding; lib::analyze applies
        // the suppression (covered by integration tests).
        let v = run(
            "crates/storage/src/x.rs",
            "// fremont-lint: allow(panic) -- infallible by construction\nfn f() { a.unwrap(); }",
        );
        assert_eq!(v.len(), 1);
    }
}
