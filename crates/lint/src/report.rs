//! Rendering an [`Analysis`] for humans and for machines.
//!
//! The JSON emitter is hand-rolled (this crate is dependency-free by
//! design — it must build even when the analyzer itself has found the
//! workspace wanting) and emits a stable, versioned shape — schema 2:
//!
//! ```json
//! {
//!   "schema": 2,
//!   "files": 110,
//!   "violations": [
//!     {"rule": "panic", "severity": "error",
//!      "path": "crates/storage/src/wal.rs",
//!      "span": {"line": 265, "col": 60},
//!      "suppressed": false, "message": "…"}
//!   ],
//!   "errors": 1, "warnings": 0,
//!   "suppressions": {"used": 8, "total": 8, "budget": 15}
//! }
//! ```
//!
//! Contract, byte-for-byte pinned by `tests/golden.rs`:
//! - `schema` bumps on any key change; consumers must check it.
//! - `violations` merges active and suppressed findings, sorted by
//!   (path, line, col, rule); `suppressed: true` marks findings an
//!   inline `allow(...)` silenced. `errors`/`warnings` count only
//!   active findings — a suppressed error does not fail the build.
//! - `span.line`/`span.col` are 1-based; 0 means file-level (the
//!   whole-golden findings) or unknown.

use std::fmt::Write as _;

use crate::{Analysis, Severity, Violation};

/// The current `--json` schema version.
pub const JSON_SCHEMA: u32 = 2;

/// `file:line:col: severity[rule]: message` lines plus a summary —
/// the shape editors and CI log scrapers already understand.
pub fn human(a: &Analysis, budget: usize) -> String {
    let mut s = String::new();
    for v in &a.violations {
        if v.path.is_empty() {
            let _ = writeln!(s, "{}[{}]: {}", v.severity, v.rule, v.message);
        } else {
            let _ = writeln!(
                s,
                "{}:{}:{}: {}[{}]: {}",
                v.path, v.line, v.col, v.severity, v.rule, v.message
            );
        }
    }
    let _ = writeln!(
        s,
        "fremont-lint: {} files, {} error(s), {} warning(s), {}/{} suppression(s) used (budget {})",
        a.files,
        a.errors(),
        a.warnings(),
        a.suppressions_used,
        a.suppressions_total,
        budget
    );
    s
}

/// Machine-readable report (see module docs for the schema contract).
pub fn json(a: &Analysis, budget: usize) -> String {
    // Merge active and suppressed findings into one position-sorted
    // stream; both inputs are already sorted.
    let mut merged: Vec<(&Violation, bool)> = a
        .violations
        .iter()
        .map(|v| (v, false))
        .chain(a.suppressed.iter().map(|v| (v, true)))
        .collect();
    merged.sort_by(|(x, _), (y, _)| {
        (x.path.as_str(), x.line, x.col, x.rule).cmp(&(y.path.as_str(), y.line, y.col, y.rule))
    });

    let mut s = String::from("{\n");
    let _ = write!(
        s,
        "  \"schema\": {JSON_SCHEMA},\n  \"files\": {},\n  \"violations\": [",
        a.files
    );
    for (i, (v, suppressed)) in merged.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(
            s,
            "{sep}    {{\"rule\": {}, \"severity\": {}, \"path\": {}, \
             \"span\": {{\"line\": {}, \"col\": {}}}, \"suppressed\": {suppressed}, \
             \"message\": {}}}",
            quote(v.rule),
            quote(match v.severity {
                Severity::Warning => "warning",
                Severity::Error => "error",
            }),
            quote(&v.path),
            v.line,
            v.col,
            quote(&v.message)
        );
    }
    if !merged.is_empty() {
        s.push_str("\n  ");
    }
    let _ = write!(
        s,
        "],\n  \"errors\": {},\n  \"warnings\": {},\n  \"suppressions\": \
         {{\"used\": {}, \"total\": {}, \"budget\": {}}}\n}}\n",
        a.errors(),
        a.warnings(),
        a.suppressions_used,
        a.suppressions_total,
        budget
    );
    s
}

/// JSON string escaping per RFC 8259 (quotes, backslashes, control chars).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Analysis, Severity, Violation};

    fn sample() -> Analysis {
        Analysis {
            violations: vec![Violation {
                rule: "panic",
                path: "crates/storage/src/wal.rs".to_owned(),
                line: 265,
                col: 60,
                severity: Severity::Error,
                message: "`.unwrap()` says \"boom\"".to_owned(),
            }],
            suppressed: vec![Violation {
                rule: "determinism",
                path: "crates/core/src/a.rs".to_owned(),
                line: 4,
                col: 9,
                severity: Severity::Error,
                message: "wall clock".to_owned(),
            }],
            suppressions_used: 1,
            suppressions_total: 2,
            files: 3,
        }
    }

    #[test]
    fn human_has_grep_able_lines() {
        let out = human(&sample(), 15);
        assert!(out.contains("crates/storage/src/wal.rs:265:60: error[panic]:"));
        assert!(out.contains("1 error(s), 0 warning(s), 1/2 suppression(s)"));
    }

    #[test]
    fn human_omits_suppressed_findings() {
        assert!(!human(&sample(), 15).contains("crates/core/src/a.rs"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let out = json(&sample(), 15);
        assert!(out.contains("\\\"boom\\\""), "{out}");
        assert!(out.contains("\"schema\": 2"), "{out}");
        assert!(out.contains("\"errors\": 1"));
        assert!(out.contains("\"budget\": 15"));
    }

    #[test]
    fn json_merges_suppressed_findings_in_position_order() {
        let out = json(&sample(), 15);
        let active = out.find("crates/storage/src/wal.rs").unwrap();
        let silenced = out.find("crates/core/src/a.rs").unwrap();
        assert!(silenced < active, "sorted by path:\n{out}");
        assert!(out.contains("\"suppressed\": true"), "{out}");
        assert!(
            out.contains("\"span\": {\"line\": 265, \"col\": 60}"),
            "{out}"
        );
        // A suppressed error is not an error.
        assert!(out.contains("\"errors\": 1"), "{out}");
    }

    #[test]
    fn empty_violations_render_empty_array() {
        let a = Analysis {
            violations: vec![],
            suppressed: vec![],
            suppressions_used: 0,
            suppressions_total: 0,
            files: 0,
        };
        assert!(json(&a, 15).contains("\"violations\": []"));
    }
}
