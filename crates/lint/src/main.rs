//! `fremont-lint` CLI.
//!
//! ```text
//! cargo run -p fremont-lint                 # human report, exit 1 on errors
//! cargo run -p fremont-lint -- --deny       # warnings are fatal too (CI)
//! cargo run -p fremont-lint -- --json       # machine-readable report (schema 2)
//! cargo run -p fremont-lint -- --write-golden   # regenerate all three goldens
//! cargo run -p fremont-lint -- --fix        # preview stale-suppression deletions
//! cargo run -p fremont-lint -- --fix --apply    # delete them in place
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use fremont_lint::{analyze, find_workspace_root, fix, report, Config, Workspace};

const USAGE: &str = "usage: fremont-lint [--json] [--deny] [--write-golden] \
                     [--fix [--apply]] [--root <dir>] [--max-suppressions <n>]";

fn main() -> ExitCode {
    let mut json = false;
    let mut deny = false;
    let mut write_golden = false;
    let mut do_fix = false;
    let mut apply = false;
    let mut root: Option<PathBuf> = None;
    let mut max_suppressions: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny" => deny = true,
            "--write-golden" => write_golden = true,
            "--fix" => do_fix = true,
            "--apply" => apply = true,
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage_error("--root needs a directory"),
            },
            "--max-suppressions" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => max_suppressions = Some(n),
                None => return usage_error("--max-suppressions needs a number"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown flag `{other}`")),
        }
    }

    // Root: explicit flag, else walk up from the current directory, else
    // from this crate's own manifest (so `cargo run -p fremont-lint`
    // works from anywhere inside the workspace).
    let root = root
        .or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|d| find_workspace_root(&d))
        })
        .or_else(|| find_workspace_root(&PathBuf::from(env!("CARGO_MANIFEST_DIR"))));
    let Some(root) = root else {
        eprintln!("fremont-lint: no workspace root found (no Cargo.toml with [workspace])");
        return ExitCode::from(2);
    };

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "fremont-lint: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    let mut cfg = Config::for_root(root);
    if let Some(n) = max_suppressions {
        cfg.max_suppressions = n;
    }

    if apply && !do_fix {
        return usage_error("--apply only makes sense with --fix");
    }

    let (analysis, goldens) = analyze(&ws, &cfg, write_golden);
    if let Some(g) = goldens {
        for (rel, content) in [
            (&cfg.golden_path, &g.wal_schema),
            (&cfg.metrics_golden_path, &g.metrics),
            (&cfg.lock_golden_path, &g.lock_order),
        ] {
            let path = cfg.root.join(rel);
            if let Err(e) = std::fs::write(&path, content) {
                eprintln!("fremont-lint: failed to write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!("fremont-lint: wrote {rel}");
        }
        return ExitCode::SUCCESS;
    }

    if do_fix {
        let fixes = fix::plan(&analysis);
        if fixes.is_empty() {
            println!("fremont-lint: no stale suppressions to fix");
            return ExitCode::SUCCESS;
        }
        match fix::apply(&cfg.root, &fixes, !apply) {
            Ok(lines) => {
                let verb = if apply { "removed" } else { "would remove" };
                for l in &lines {
                    println!("fremont-lint: {verb} stale suppression at {l}");
                }
                if !apply {
                    println!("fremont-lint: dry run — pass --apply to rewrite files");
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("fremont-lint: --fix failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let out = if json {
        report::json(&analysis, cfg.max_suppressions)
    } else {
        report::human(&analysis, cfg.max_suppressions)
    };
    print!("{out}");

    let failing = analysis.errors() > 0 || (deny && analysis.warnings() > 0);
    if failing {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("fremont-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
