//! `fremont-lint` CLI.
//!
//! ```text
//! cargo run -p fremont-lint                 # human report, exit 1 on errors
//! cargo run -p fremont-lint -- --deny       # warnings are fatal too (CI)
//! cargo run -p fremont-lint -- --json       # machine-readable report
//! cargo run -p fremont-lint -- --write-golden   # regenerate the WAL-schema golden
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use fremont_lint::{analyze, find_workspace_root, report, Config, Workspace};

const USAGE: &str = "usage: fremont-lint [--json] [--deny] [--write-golden] \
                     [--root <dir>] [--max-suppressions <n>]";

fn main() -> ExitCode {
    let mut json = false;
    let mut deny = false;
    let mut write_golden = false;
    let mut root: Option<PathBuf> = None;
    let mut max_suppressions: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny" => deny = true,
            "--write-golden" => write_golden = true,
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage_error("--root needs a directory"),
            },
            "--max-suppressions" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => max_suppressions = Some(n),
                None => return usage_error("--max-suppressions needs a number"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown flag `{other}`")),
        }
    }

    // Root: explicit flag, else walk up from the current directory, else
    // from this crate's own manifest (so `cargo run -p fremont-lint`
    // works from anywhere inside the workspace).
    let root = root
        .or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|d| find_workspace_root(&d))
        })
        .or_else(|| find_workspace_root(&PathBuf::from(env!("CARGO_MANIFEST_DIR"))));
    let Some(root) = root else {
        eprintln!("fremont-lint: no workspace root found (no Cargo.toml with [workspace])");
        return ExitCode::from(2);
    };

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "fremont-lint: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    let mut cfg = Config::for_root(root);
    if let Some(n) = max_suppressions {
        cfg.max_suppressions = n;
    }

    let (analysis, new_golden) = analyze(&ws, &cfg, write_golden);
    if let Some(content) = new_golden {
        let path = cfg.root.join(&cfg.golden_path);
        if let Err(e) = std::fs::write(&path, content) {
            eprintln!("fremont-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("fremont-lint: wrote {}", cfg.golden_path);
        return ExitCode::SUCCESS;
    }

    let out = if json {
        report::json(&analysis, cfg.max_suppressions)
    } else {
        report::human(&analysis, cfg.max_suppressions)
    };
    print!("{out}");

    let failing = analysis.errors() > 0 || (deny && analysis.warnings() > 0);
    if failing {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("fremont-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
