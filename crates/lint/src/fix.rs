//! `--fix`: delete stale `// fremont-lint: allow(...)` annotations.
//!
//! An unused suppression is a finding (`suppression` rule, warning
//! severity): the violation it silenced is gone and the annotation now
//! only hides future regressions. The fix is mechanical — remove the
//! annotation — so the CLI can do it. Dry-run is the default; `--apply`
//! rewrites files in place.
//!
//! Only the annotation is removed: when it sits on its own line the
//! whole line goes; when it trails code, the line is truncated at the
//! comment and trailing whitespace is trimmed.

use std::collections::BTreeMap;
use std::path::Path;

use crate::{Analysis, Violation};

/// The comment marker that introduces a suppression annotation.
const MARKER: &str = "// fremont-lint:";

/// One planned deletion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fix {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line holding the stale annotation.
    pub line: u32,
}

/// Plans fixes from an analysis: every unused-suppression warning
/// becomes a deletion. Malformed suppressions (missing reason, unknown
/// rule) are *not* auto-fixed — they need a human to decide whether the
/// annotation should exist at all.
pub fn plan(analysis: &Analysis) -> Vec<Fix> {
    analysis
        .violations
        .iter()
        .filter(|v| v.rule == "suppression" && v.message.starts_with("unused suppression"))
        .map(|v: &Violation| Fix {
            path: v.path.clone(),
            line: v.line,
        })
        .collect()
}

/// Removes the annotations on `lines` (1-based) from `content`.
/// Comment-only lines are deleted outright; trailing annotations are
/// truncated at the marker.
pub fn fix_content(content: &str, lines: &[u32]) -> String {
    let mut out = String::with_capacity(content.len());
    for (idx, line) in content.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        if lines.contains(&lineno) {
            if let Some(at) = line.find(MARKER) {
                let head = line[..at].trim_end();
                if head.is_empty() {
                    continue; // annotation-only line: drop it entirely
                }
                out.push_str(head);
                out.push('\n');
                continue;
            }
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Applies `fixes` under `root`. With `dry_run` nothing is written;
/// either way the return value lists `path:line` for each planned
/// deletion, grouped by file in path order.
pub fn apply(root: &Path, fixes: &[Fix], dry_run: bool) -> std::io::Result<Vec<String>> {
    let mut by_file: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
    for f in fixes {
        by_file.entry(f.path.as_str()).or_default().push(f.line);
    }
    let mut described = Vec::new();
    for (path, lines) in &by_file {
        for l in lines {
            described.push(format!("{path}:{l}"));
        }
        if !dry_run {
            let full = root.join(path);
            let content = std::fs::read_to_string(&full)?;
            std::fs::write(&full, fix_content(&content, lines))?;
        }
    }
    Ok(described)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_only_lines_are_deleted() {
        let src = "fn a() {}\n// fremont-lint: allow(panic) -- old\nfn b() {}\n";
        assert_eq!(fix_content(src, &[2]), "fn a() {}\nfn b() {}\n");
    }

    #[test]
    fn trailing_annotations_are_truncated() {
        let src = "let x = 1; // fremont-lint: allow(determinism) -- seed\n";
        assert_eq!(fix_content(src, &[1]), "let x = 1;\n");
    }

    #[test]
    fn untargeted_lines_survive() {
        let src = "// fremont-lint: allow(panic) -- live\nx.unwrap();\n";
        assert_eq!(fix_content(src, &[9]), src);
    }

    #[test]
    fn marker_free_target_lines_survive() {
        // Defensive: a stale plan pointing at a rewritten line must not
        // delete code.
        let src = "fn a() {}\n";
        assert_eq!(fix_content(src, &[1]), src);
    }

    #[test]
    fn plan_selects_only_unused_suppressions() {
        use crate::{Severity, Violation};
        let analysis = Analysis {
            violations: vec![
                Violation {
                    rule: "suppression",
                    path: "a.rs".into(),
                    line: 3,
                    col: 1,
                    severity: Severity::Warning,
                    message: "unused suppression for `panic` — the finding it silenced is gone; remove it".into(),
                },
                Violation {
                    rule: "suppression",
                    path: "a.rs".into(),
                    line: 7,
                    col: 1,
                    severity: Severity::Error,
                    message: "suppression has no reason".into(),
                },
                Violation {
                    rule: "panic",
                    path: "b.rs".into(),
                    line: 1,
                    col: 1,
                    severity: Severity::Error,
                    message: "`.unwrap()`".into(),
                },
            ],
            suppressed: Vec::new(),
            suppressions_used: 0,
            suppressions_total: 2,
            files: 2,
        };
        assert_eq!(
            plan(&analysis),
            vec![Fix {
                path: "a.rs".into(),
                line: 3
            }]
        );
    }
}
