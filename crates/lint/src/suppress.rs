//! Inline suppression annotations.
//!
//! The contract (documented in DESIGN.md §Static invariants): a finding
//! may be silenced with a comment on the offending line or the line
//! directly above it, naming the rule(s) and giving a reason:
//!
//! ```text
//! // fremont-lint: allow(lock-order) -- WAL append must be ordered with apply
//! let mut wal = self.wal.lock();
//! ```
//!
//! A missing reason or an annotation that no longer matches anything is
//! itself reported, and the total count is checked against a
//! workspace-wide budget — suppressions are meant to document deliberate
//! exceptions, not to hide debt.

use std::cell::Cell;

use crate::lexer::{Tok, TokKind};

/// One parsed `fremont-lint:` annotation.
pub struct Suppression {
    /// Line the comment sits on.
    pub line: u32,
    /// Rule names listed in `allow(…)`.
    pub rules: Vec<String>,
    /// Justification after `--` (may be empty when malformed).
    pub reason: String,
    /// Parse problem, if the annotation is malformed.
    malformed: Option<String>,
    used: Cell<bool>,
}

impl Suppression {
    /// Whether this annotation silences `rule` at `line`.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.malformed.is_none()
            && (line == self.line || line == self.line + 1)
            && self.rules.iter().any(|r| r == rule)
    }

    /// Marks the annotation as having matched a finding.
    pub fn mark_used(&self) {
        self.used.set(true);
    }

    /// True once a finding matched.
    pub fn used(&self) -> bool {
        self.used.get()
    }

    /// A description of why the annotation is malformed, if it is.
    pub fn problem(&self) -> Option<String> {
        self.malformed.clone()
    }
}

/// Extracts annotations from a file's token stream (comments included).
///
/// Only plain `//` comments carry annotations — doc comments (`///`,
/// `//!`) and block comments are documentation, so the contract can be
/// *described* there (as this module does) without being parsed.
pub fn parse(toks: &[Tok]) -> Vec<Suppression> {
    toks.iter()
        .filter(|t| t.kind == TokKind::Comment)
        .filter(|t| {
            t.text.starts_with("//") && !t.text.starts_with("///") && !t.text.starts_with("//!")
        })
        .filter_map(|t| {
            let idx = t.text.find("fremont-lint:")?;
            Some(parse_one(
                t.line,
                t.text[idx + "fremont-lint:".len()..].trim(),
            ))
        })
        .collect()
}

fn parse_one(line: u32, body: &str) -> Suppression {
    let mut sup = Suppression {
        line,
        rules: Vec::new(),
        reason: String::new(),
        malformed: None,
        used: Cell::new(false),
    };
    let rest = match body.strip_prefix("allow") {
        Some(r) => r.trim_start(),
        None => {
            sup.malformed = Some(
                "malformed suppression: expected `fremont-lint: allow(<rule>) -- <reason>`"
                    .to_owned(),
            );
            return sup;
        }
    };
    let Some(close) = rest.find(')') else {
        sup.malformed = Some("malformed suppression: unclosed `allow(`".to_owned());
        return sup;
    };
    let inside = rest
        .strip_prefix('(')
        .map(|r| &r[..close - 1])
        .unwrap_or("");
    sup.rules = inside
        .split(',')
        .map(|r| r.trim().to_owned())
        .filter(|r| !r.is_empty())
        .collect();
    if sup.rules.is_empty() {
        sup.malformed = Some("malformed suppression: no rule named in `allow(…)`".to_owned());
        return sup;
    }
    for r in &sup.rules {
        if !crate::RULES.contains(&r.as_str()) {
            sup.malformed = Some(format!(
                "unknown rule `{r}` in suppression (known: {})",
                crate::RULES.join(", ")
            ));
            return sup;
        }
    }
    match rest[close + 1..].trim().strip_prefix("--") {
        Some(reason) if !reason.trim().is_empty() => sup.reason = reason.trim().to_owned(),
        _ => {
            sup.malformed =
                Some("suppression without a reason: append ` -- <why this is sound>`".to_owned());
        }
    }
    sup
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn one(src: &str) -> Suppression {
        let mut v = parse(&lex(src));
        assert_eq!(v.len(), 1, "{src}");
        v.remove(0)
    }

    #[test]
    fn well_formed() {
        let s = one("// fremont-lint: allow(lock-order) -- WAL ordering requires it\nx();");
        assert!(s.problem().is_none());
        assert_eq!(s.rules, vec!["lock-order"]);
        assert_eq!(s.reason, "WAL ordering requires it");
        assert!(s.covers("lock-order", 1));
        assert!(s.covers("lock-order", 2), "covers the next line");
        assert!(!s.covers("lock-order", 3));
        assert!(!s.covers("panic", 2), "other rules stay live");
    }

    #[test]
    fn multiple_rules() {
        let s = one("// fremont-lint: allow(panic, ignored-io) -- last-gasp drop path");
        assert!(s.problem().is_none());
        assert_eq!(s.rules, vec!["panic", "ignored-io"]);
    }

    #[test]
    fn missing_reason_is_malformed() {
        let s = one("// fremont-lint: allow(panic)");
        assert!(s.problem().unwrap().contains("without a reason"));
        assert!(
            !s.covers("panic", 1),
            "malformed annotations silence nothing"
        );
    }

    #[test]
    fn unknown_rule_is_malformed() {
        let s = one("// fremont-lint: allow(speling) -- oops");
        assert!(s.problem().unwrap().contains("unknown rule"));
    }

    #[test]
    fn non_annotation_comments_ignored() {
        assert!(parse(&lex("// plain comment\n/* block */\ncode();")).is_empty());
    }
}
