//! Property tests for the wire codecs.
//!
//! Two invariants, per the crate contract:
//! 1. **Roundtrip**: encode → decode is the identity for any valid packet.
//! 2. **Totality**: decode never panics on arbitrary bytes.

use bytes::Bytes;
use proptest::prelude::*;
use std::net::Ipv4Addr;

use fremont_net::dns::{DnsName, DnsQuestion, DnsRecord, RData, RecordType};
use fremont_net::{
    ArpOp, ArpPacket, DnsMessage, EtherType, EthernetFrame, IcmpMessage, IpProtocol, Ipv4Packet,
    MacAddr, Rcode, RipCommand, RipEntry, RipPacket, Subnet, SubnetMask, UdpDatagram,
    UnreachableCode,
};

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9-]{1,12}").expect("valid regex")
}

fn arb_name() -> impl Strategy<Value = DnsName> {
    proptest::collection::vec(arb_label(), 0..6)
        .prop_map(|ls| DnsName::from_labels(ls).expect("labels fit"))
}

proptest! {
    #[test]
    fn ethernet_roundtrip(dst in arb_mac(), src in arb_mac(), et in any::<u16>(),
                          payload in proptest::collection::vec(any::<u8>(), 46..200)) {
        let f = EthernetFrame::new(dst, src, EtherType::from_value(et), Bytes::from(payload));
        let back = EthernetFrame::decode(&f.encode()).unwrap();
        prop_assert_eq!(back, f);
    }

    #[test]
    fn ethernet_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..100)) {
        let _ = EthernetFrame::decode(&bytes);
    }

    #[test]
    fn arp_roundtrip(op in prop_oneof![Just(ArpOp::Request), Just(ArpOp::Reply)],
                     sm in arb_mac(), si in arb_ip(), tm in arb_mac(), ti in arb_ip()) {
        let p = ArpPacket { op, sender_mac: sm, sender_ip: si, target_mac: tm, target_ip: ti };
        prop_assert_eq!(ArpPacket::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn arp_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = ArpPacket::decode(&bytes);
    }

    #[test]
    fn ipv4_roundtrip(src in arb_ip(), dst in arb_ip(), ttl in any::<u8>(), id in any::<u16>(),
                      proto in any::<u8>(),
                      payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let p = Ipv4Packet::new(src, dst, IpProtocol::from_value(proto), Bytes::from(payload))
            .with_ttl(ttl)
            .with_id(id);
        prop_assert_eq!(Ipv4Packet::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn ipv4_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Ipv4Packet::decode(&bytes);
    }

    #[test]
    fn icmp_echo_roundtrip(ident in any::<u16>(), seq in any::<u16>(),
                           payload in proptest::collection::vec(any::<u8>(), 0..64),
                           reply in any::<bool>()) {
        let m = if reply {
            IcmpMessage::EchoReply { ident, seq, payload }
        } else {
            IcmpMessage::EchoRequest { ident, seq, payload }
        };
        prop_assert_eq!(IcmpMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn icmp_error_roundtrip(code in any::<u8>(),
                            original in proptest::collection::vec(any::<u8>(), 0..64),
                            te in any::<bool>()) {
        let m = if te {
            IcmpMessage::TimeExceeded { original }
        } else {
            IcmpMessage::DestinationUnreachable {
                code: UnreachableCode::Other(code),
                original,
            }
        };
        let back = IcmpMessage::decode(&m.encode()).unwrap();
        // `Other(0..=3)` decodes to the named variant; compare encodings.
        prop_assert_eq!(back.encode(), m.encode());
    }

    #[test]
    fn icmp_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = IcmpMessage::decode(&bytes);
    }

    #[test]
    fn udp_roundtrip(sp in any::<u16>(), dp in any::<u16>(),
                     payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let d = UdpDatagram::new(sp, dp, Bytes::from(payload));
        prop_assert_eq!(UdpDatagram::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn udp_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = UdpDatagram::decode(&bytes);
    }

    #[test]
    fn rip_roundtrip(addrs in proptest::collection::vec((any::<u32>(), 1u32..16), 0..25)) {
        let entries: Vec<RipEntry> = addrs
            .into_iter()
            .map(|(a, m)| RipEntry { addr: Ipv4Addr::from(a), metric: m })
            .collect();
        let p = RipPacket::response(entries);
        let back = RipPacket::decode(&p.encode()).unwrap();
        prop_assert_eq!(back.command, RipCommand::Response);
        prop_assert_eq!(back, p);
    }

    #[test]
    fn rip_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = RipPacket::decode(&bytes);
    }

    #[test]
    fn dns_name_roundtrip(n in arb_name()) {
        let mut buf = Vec::new();
        n.encode_into(&mut buf);
        let (back, end) = DnsName::decode_from(&buf, 0).unwrap();
        prop_assert_eq!(back, n);
        prop_assert_eq!(end, buf.len());
    }

    #[test]
    fn dns_name_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..64),
                             offset in 0usize..8) {
        let _ = DnsName::decode_from(&bytes, offset);
    }

    #[test]
    fn dns_message_roundtrip(id in any::<u16>(), qname in arb_name(),
                             answers in proptest::collection::vec((arb_name(), any::<u32>(), any::<u32>()), 0..8)) {
        let mut m = DnsMessage::query(id, qname, RecordType::Any);
        m.is_response = true;
        for (name, addr, ttl) in answers {
            m.answers.push(DnsRecord::a(name, Ipv4Addr::from(addr), ttl));
        }
        let back = DnsMessage::decode(&m.encode()).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn dns_message_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = DnsMessage::decode(&bytes);
    }

    #[test]
    fn subnet_mask_contiguity(len in 0u8..=32) {
        let m = SubnetMask::from_prefix_len(len).unwrap();
        prop_assert_eq!(m.prefix_len(), len);
        prop_assert!(SubnetMask::from_bits(m.bits()).is_ok());
    }

    #[test]
    fn subnet_contains_its_range(addr in arb_ip(), len in 0u8..=32) {
        let mask = SubnetMask::from_prefix_len(len).unwrap();
        let s = Subnet::containing(addr, mask);
        prop_assert!(s.contains(addr));
        prop_assert!(s.contains(s.directed_broadcast()));
        prop_assert!(s.contains(s.host_zero()));
        // Network/broadcast bound every member address.
        prop_assert!(u32::from(s.network()) <= u32::from(addr));
        prop_assert!(u32::from(addr) <= u32::from(s.directed_broadcast()));
    }

    #[test]
    fn subnet_partition(addr in arb_ip(), other in arb_ip(), len in 1u8..=31) {
        // An address is in exactly one same-length subnet.
        let mask = SubnetMask::from_prefix_len(len).unwrap();
        let s1 = Subnet::containing(addr, mask);
        let s2 = Subnet::containing(other, mask);
        if s1 != s2 {
            prop_assert!(!s1.contains(other) || !s2.contains(other));
            prop_assert!(!s1.contains(other));
        } else {
            prop_assert!(s1.contains(other));
        }
    }

    #[test]
    fn icmp_embedded_matches_probe(src in arb_ip(), dst in arb_ip(), id in any::<u16>(),
                                   sp in any::<u16>(), dp in any::<u16>()) {
        // A router's Time Exceeded lets the prober recover src/dst/id/ports.
        let udp = UdpDatagram::new(sp, dp, Bytes::from_static(&[0u8; 8]));
        let ip = Ipv4Packet::new(src, dst, IpProtocol::Udp, Bytes::from(udp.encode())).with_id(id);
        let err = fremont_net::icmp::time_exceeded_for(&ip);
        let decoded = IcmpMessage::decode(&err.encode()).unwrap();
        let emb = decoded.embedded_packet().unwrap();
        prop_assert_eq!(emb.src, src);
        prop_assert_eq!(emb.dst, dst);
        prop_assert_eq!(emb.identification, id);
        prop_assert_eq!(emb.udp_ports(), Some((sp, dp)));
    }

    #[test]
    fn dns_question_preserved(qname in arb_name(),
                              qt in prop_oneof![Just(RecordType::A), Just(RecordType::Ptr),
                                                Just(RecordType::Axfr), Just(RecordType::Soa)]) {
        let q = DnsMessage::query(1, qname.clone(), qt);
        let r = DnsMessage::response_to(&q, Rcode::NoError);
        let back = DnsMessage::decode(&r.encode()).unwrap();
        prop_assert_eq!(back.questions, vec![DnsQuestion { name: qname, qtype: qt }]);
    }

    #[test]
    fn dns_ptr_record_roundtrip(owner in arb_name(), target in arb_name(), ttl in any::<u32>()) {
        let mut m = DnsMessage::query(9, owner.clone(), RecordType::Ptr);
        m.is_response = true;
        m.answers.push(DnsRecord::ptr(owner, target.clone(), ttl));
        let back = DnsMessage::decode(&m.encode()).unwrap();
        match &back.answers[0].rdata {
            RData::Ptr(p) => prop_assert_eq!(p, &target),
            other => prop_assert!(false, "wrong rdata {:?}", other),
        }
    }
}
