//! The Address Resolution Protocol (RFC 826), Ethernet/IPv4 flavor.
//!
//! ARP is the information source for two of Fremont's Explorer Modules:
//! ARPwatch (which passively records request/reply exchanges) and
//! EtherHostProbe (which triggers resolutions and then harvests the local
//! ARP cache). The decoder accepts exactly the Ethernet+IPv4 combination,
//! which is all that existed on the paper's campus.

use std::net::Ipv4Addr;

use crate::error::ParseError;
use crate::mac::MacAddr;

/// Encoded length of an Ethernet/IPv4 ARP packet.
pub const PACKET_LEN: usize = 28;

/// ARP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArpOp {
    /// Who-has (opcode 1).
    Request,
    /// Is-at (opcode 2).
    Reply,
}

impl ArpOp {
    fn value(self) -> u16 {
        match self {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        }
    }
}

/// An Ethernet/IPv4 ARP packet.
///
/// # Examples
///
/// ```
/// use std::net::Ipv4Addr;
/// use fremont_net::{ArpOp, ArpPacket, MacAddr};
///
/// let req = ArpPacket::request(
///     "08:00:20:01:02:03".parse().unwrap(),
///     Ipv4Addr::new(128, 138, 243, 10),
///     Ipv4Addr::new(128, 138, 243, 1),
/// );
/// let bytes = req.encode();
/// assert_eq!(ArpPacket::decode(&bytes).unwrap(), req);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpPacket {
    /// Operation (request or reply).
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol (IPv4) address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol (IPv4) address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// Builds a who-has request from `sender` looking for `target_ip`.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Self {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// Builds the is-at reply answering `request`.
    pub fn reply_to(request: &ArpPacket, my_mac: MacAddr) -> Self {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: my_mac,
            sender_ip: request.target_ip,
            target_mac: request.sender_mac,
            target_ip: request.sender_ip,
        }
    }

    /// Encodes to the 28-byte wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(PACKET_LEN);
        out.extend_from_slice(&1u16.to_be_bytes()); // htype: Ethernet
        out.extend_from_slice(&0x0800u16.to_be_bytes()); // ptype: IPv4
        out.push(6); // hlen
        out.push(4); // plen
        out.extend_from_slice(&self.op.value().to_be_bytes());
        out.extend_from_slice(&self.sender_mac.octets());
        out.extend_from_slice(&self.sender_ip.octets());
        out.extend_from_slice(&self.target_mac.octets());
        out.extend_from_slice(&self.target_ip.octets());
        out
    }

    /// Decodes from wire form; trailing bytes (Ethernet padding) are
    /// ignored.
    pub fn decode(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < PACKET_LEN {
            return Err(ParseError::Truncated {
                layer: "arp",
                needed: PACKET_LEN,
                available: buf.len(),
            });
        }
        let htype = u16::from_be_bytes([buf[0], buf[1]]);
        if htype != 1 {
            return Err(ParseError::BadField {
                layer: "arp",
                field: "htype",
                value: u64::from(htype),
            });
        }
        let ptype = u16::from_be_bytes([buf[2], buf[3]]);
        if ptype != 0x0800 {
            return Err(ParseError::BadField {
                layer: "arp",
                field: "ptype",
                value: u64::from(ptype),
            });
        }
        if buf[4] != 6 || buf[5] != 4 {
            return Err(ParseError::BadField {
                layer: "arp",
                field: "hlen/plen",
                value: u64::from(u16::from_be_bytes([buf[4], buf[5]])),
            });
        }
        let op = match u16::from_be_bytes([buf[6], buf[7]]) {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            other => {
                return Err(ParseError::BadField {
                    layer: "arp",
                    field: "op",
                    value: u64::from(other),
                })
            }
        };
        let mac_at = |o: usize| {
            let mut m = [0u8; 6];
            m.copy_from_slice(&buf[o..o + 6]);
            MacAddr::new(m)
        };
        let ip_at = |o: usize| Ipv4Addr::new(buf[o], buf[o + 1], buf[o + 2], buf[o + 3]);
        Ok(ArpPacket {
            op,
            sender_mac: mac_at(8),
            sender_ip: ip_at(14),
            target_mac: mac_at(18),
            target_ip: ip_at(24),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(s: &str) -> MacAddr {
        s.parse().unwrap()
    }

    #[test]
    fn request_reply_roundtrip() {
        let req = ArpPacket::request(
            mac("08:00:20:aa:bb:cc"),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        assert_eq!(req.target_mac, MacAddr::ZERO);
        let rep = ArpPacket::reply_to(&req, mac("00:00:0c:11:22:33"));
        assert_eq!(rep.op, ArpOp::Reply);
        assert_eq!(rep.sender_ip, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(rep.target_mac, req.sender_mac);
        assert_eq!(rep.target_ip, req.sender_ip);

        for pkt in [req, rep] {
            let bytes = pkt.encode();
            assert_eq!(bytes.len(), PACKET_LEN);
            assert_eq!(ArpPacket::decode(&bytes).unwrap(), pkt);
        }
    }

    #[test]
    fn decode_ignores_ethernet_padding() {
        let req = ArpPacket::request(
            mac("08:00:20:aa:bb:cc"),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let mut bytes = req.encode();
        bytes.resize(46, 0); // Minimum Ethernet payload size.
        assert_eq!(ArpPacket::decode(&bytes).unwrap(), req);
    }

    #[test]
    fn decode_rejects_truncated() {
        assert!(matches!(
            ArpPacket::decode(&[0u8; 27]),
            Err(ParseError::Truncated { layer: "arp", .. })
        ));
    }

    #[test]
    fn decode_rejects_non_ethernet_hardware() {
        let req = ArpPacket::request(
            mac("08:00:20:aa:bb:cc"),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let mut bytes = req.encode();
        bytes[1] = 6; // htype = IEEE 802
        assert!(matches!(
            ArpPacket::decode(&bytes),
            Err(ParseError::BadField { field: "htype", .. })
        ));
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        let req = ArpPacket::request(
            mac("08:00:20:aa:bb:cc"),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let mut bytes = req.encode();
        bytes[7] = 9;
        assert!(matches!(
            ArpPacket::decode(&bytes),
            Err(ParseError::BadField { field: "op", .. })
        ));
    }
}
