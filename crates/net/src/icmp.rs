//! The Internet Control Message Protocol (RFC 792 + RFC 950 mask messages).
//!
//! Four of Fremont's eight Explorer Modules are ICMP-based: Sequential Ping
//! and Broadcast Ping (echo request/reply), Subnet Masks (mask
//! request/reply, RFC 950), and Traceroute (Time Exceeded / Destination
//! Unreachable errors carrying the offending datagram's header).

use std::net::Ipv4Addr;

use crate::checksum::{internet_checksum, verify};
use crate::error::ParseError;
use crate::ipv4::Ipv4Packet;

/// Destination Unreachable sub-codes Fremont's traceroute cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnreachableCode {
    /// Net unreachable (0).
    Net,
    /// Host unreachable (1).
    Host,
    /// Protocol unreachable (2).
    Protocol,
    /// Port unreachable (3) — the traceroute "destination reached" signal.
    Port,
    /// Any other code, preserved verbatim.
    Other(u8),
}

impl UnreachableCode {
    fn value(self) -> u8 {
        match self {
            UnreachableCode::Net => 0,
            UnreachableCode::Host => 1,
            UnreachableCode::Protocol => 2,
            UnreachableCode::Port => 3,
            UnreachableCode::Other(v) => v,
        }
    }

    fn from_value(v: u8) -> Self {
        match v {
            0 => UnreachableCode::Net,
            1 => UnreachableCode::Host,
            2 => UnreachableCode::Protocol,
            3 => UnreachableCode::Port,
            other => UnreachableCode::Other(other),
        }
    }
}

/// A decoded ICMP message.
///
/// Error messages (`TimeExceeded`, `DestinationUnreachable`) carry the
/// leading bytes of the datagram that provoked them; helper
/// [`IcmpMessage::embedded_packet`] re-parses that snippet so traceroute can
/// match errors back to its probes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcmpMessage {
    /// Echo request (type 8), as sent by `ping`.
    EchoRequest {
        /// Identifier used to demultiplex concurrent pingers.
        ident: u16,
        /// Sequence number within one pinger.
        seq: u16,
        /// Opaque payload echoed back by the responder.
        payload: Vec<u8>,
    },
    /// Echo reply (type 0).
    EchoReply {
        /// Identifier copied from the request.
        ident: u16,
        /// Sequence number copied from the request.
        seq: u16,
        /// Payload copied from the request.
        payload: Vec<u8>,
    },
    /// Time Exceeded in transit (type 11, code 0).
    TimeExceeded {
        /// Leading bytes (IP header + 8) of the dropped datagram.
        original: Vec<u8>,
    },
    /// Destination Unreachable (type 3).
    DestinationUnreachable {
        /// Why the destination was unreachable.
        code: UnreachableCode,
        /// Leading bytes (IP header + 8) of the offending datagram.
        original: Vec<u8>,
    },
    /// Address Mask Request (type 17, RFC 950).
    MaskRequest {
        /// Identifier.
        ident: u16,
        /// Sequence number.
        seq: u16,
    },
    /// Address Mask Reply (type 18, RFC 950).
    MaskReply {
        /// Identifier copied from the request.
        ident: u16,
        /// Sequence number copied from the request.
        seq: u16,
        /// The interface's subnet mask.
        mask: Ipv4Addr,
    },
}

impl IcmpMessage {
    /// Encodes the message, computing the ICMP checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            IcmpMessage::EchoRequest {
                ident,
                seq,
                payload,
            } => {
                out.extend_from_slice(&[8, 0, 0, 0]);
                out.extend_from_slice(&ident.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(payload);
            }
            IcmpMessage::EchoReply {
                ident,
                seq,
                payload,
            } => {
                out.extend_from_slice(&[0, 0, 0, 0]);
                out.extend_from_slice(&ident.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(payload);
            }
            IcmpMessage::TimeExceeded { original } => {
                out.extend_from_slice(&[11, 0, 0, 0]);
                out.extend_from_slice(&[0, 0, 0, 0]); // unused
                out.extend_from_slice(original);
            }
            IcmpMessage::DestinationUnreachable { code, original } => {
                out.extend_from_slice(&[3, code.value(), 0, 0]);
                out.extend_from_slice(&[0, 0, 0, 0]); // unused
                out.extend_from_slice(original);
            }
            IcmpMessage::MaskRequest { ident, seq } => {
                out.extend_from_slice(&[17, 0, 0, 0]);
                out.extend_from_slice(&ident.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(&[0, 0, 0, 0]); // mask placeholder
            }
            IcmpMessage::MaskReply { ident, seq, mask } => {
                out.extend_from_slice(&[18, 0, 0, 0]);
                out.extend_from_slice(&ident.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(&mask.octets());
            }
        }
        let ck = internet_checksum(&out);
        out[2..4].copy_from_slice(&ck.to_be_bytes());
        out
    }

    /// Decodes a message, verifying the checksum.
    pub fn decode(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < 8 {
            return Err(ParseError::Truncated {
                layer: "icmp",
                needed: 8,
                available: buf.len(),
            });
        }
        if !verify(buf) {
            let carried = u16::from_be_bytes([buf[2], buf[3]]);
            let mut scratch = buf.to_vec();
            scratch[2] = 0;
            scratch[3] = 0;
            return Err(ParseError::BadChecksum {
                layer: "icmp",
                expected: carried,
                computed: internet_checksum(&scratch),
            });
        }
        let (ty, code) = (buf[0], buf[1]);
        let ident = u16::from_be_bytes([buf[4], buf[5]]);
        let seq = u16::from_be_bytes([buf[6], buf[7]]);
        match ty {
            8 => Ok(IcmpMessage::EchoRequest {
                ident,
                seq,
                payload: buf[8..].to_vec(),
            }),
            0 => Ok(IcmpMessage::EchoReply {
                ident,
                seq,
                payload: buf[8..].to_vec(),
            }),
            11 => Ok(IcmpMessage::TimeExceeded {
                original: buf[8..].to_vec(),
            }),
            3 => Ok(IcmpMessage::DestinationUnreachable {
                code: UnreachableCode::from_value(code),
                original: buf[8..].to_vec(),
            }),
            17 => Ok(IcmpMessage::MaskRequest { ident, seq }),
            18 => {
                if buf.len() < 12 {
                    return Err(ParseError::Truncated {
                        layer: "icmp",
                        needed: 12,
                        available: buf.len(),
                    });
                }
                Ok(IcmpMessage::MaskReply {
                    ident,
                    seq,
                    mask: Ipv4Addr::new(buf[8], buf[9], buf[10], buf[11]),
                })
            }
            other => Err(ParseError::BadField {
                layer: "icmp",
                field: "type",
                value: u64::from(other),
            }),
        }
    }

    /// For error messages, re-parses the embedded offending datagram.
    ///
    /// The embedded bytes contain only the header plus eight payload bytes,
    /// so the returned packet's payload is the (possibly truncated) leading
    /// fragment of the original payload. Returns `None` for non-error
    /// messages or unparseable snippets.
    pub fn embedded_packet(&self) -> Option<EmbeddedPacket> {
        let original = match self {
            IcmpMessage::TimeExceeded { original } => original,
            IcmpMessage::DestinationUnreachable { original, .. } => original,
            _ => return None,
        };
        EmbeddedPacket::parse(original)
    }

    /// Returns `true` for the error-reporting message types.
    pub fn is_error(&self) -> bool {
        matches!(
            self,
            IcmpMessage::TimeExceeded { .. } | IcmpMessage::DestinationUnreachable { .. }
        )
    }
}

/// The parseable portion of a datagram embedded in an ICMP error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmbeddedPacket {
    /// Source of the offending datagram (the prober).
    pub src: Ipv4Addr,
    /// Destination the offending datagram was headed to.
    pub dst: Ipv4Addr,
    /// IP protocol of the offending datagram.
    pub protocol: u8,
    /// IP identification field of the offending datagram.
    pub identification: u16,
    /// First payload bytes (up to eight) of the offending datagram.
    pub payload_head: Vec<u8>,
}

impl EmbeddedPacket {
    fn parse(bytes: &[u8]) -> Option<Self> {
        // The embedded header is a plain IPv4 header; we cannot use
        // `Ipv4Packet::decode` because total-length refers to the *original*
        // datagram, which is longer than the embedded snippet.
        if bytes.len() < crate::ipv4::HEADER_LEN {
            return None;
        }
        if bytes[0] >> 4 != 4 {
            return None;
        }
        let ihl = usize::from(bytes[0] & 0x0f) * 4;
        if ihl < crate::ipv4::HEADER_LEN || bytes.len() < ihl {
            return None;
        }
        Some(EmbeddedPacket {
            src: Ipv4Addr::new(bytes[12], bytes[13], bytes[14], bytes[15]),
            dst: Ipv4Addr::new(bytes[16], bytes[17], bytes[18], bytes[19]),
            protocol: bytes[9],
            identification: u16::from_be_bytes([bytes[4], bytes[5]]),
            payload_head: bytes[ihl..bytes.len().min(ihl + 8)].to_vec(),
        })
    }

    /// If the embedded datagram was UDP, returns `(src_port, dst_port)`.
    ///
    /// Traceroute matches replies to probes by the destination port of the
    /// embedded UDP header.
    pub fn udp_ports(&self) -> Option<(u16, u16)> {
        if self.protocol != 17 || self.payload_head.len() < 4 {
            return None;
        }
        Some((
            u16::from_be_bytes([self.payload_head[0], self.payload_head[1]]),
            u16::from_be_bytes([self.payload_head[2], self.payload_head[3]]),
        ))
    }
}

/// Builds a Time Exceeded error for a datagram being dropped by a router.
pub fn time_exceeded_for(dropped: &Ipv4Packet) -> IcmpMessage {
    IcmpMessage::TimeExceeded {
        original: dropped.error_snippet(),
    }
}

/// Builds a Destination Unreachable error for an undeliverable datagram.
pub fn unreachable_for(code: UnreachableCode, offending: &Ipv4Packet) -> IcmpMessage {
    IcmpMessage::DestinationUnreachable {
        code,
        original: offending.error_snippet(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::IpProtocol;
    use bytes::Bytes;

    #[test]
    fn echo_roundtrip() {
        let req = IcmpMessage::EchoRequest {
            ident: 0x1234,
            seq: 7,
            payload: b"fremont".to_vec(),
        };
        let bytes = req.encode();
        assert_eq!(IcmpMessage::decode(&bytes).unwrap(), req);
    }

    #[test]
    fn mask_roundtrip() {
        let req = IcmpMessage::MaskRequest { ident: 9, seq: 1 };
        assert_eq!(IcmpMessage::decode(&req.encode()).unwrap(), req);
        let rep = IcmpMessage::MaskReply {
            ident: 9,
            seq: 1,
            mask: Ipv4Addr::new(255, 255, 255, 0),
        };
        assert_eq!(IcmpMessage::decode(&rep.encode()).unwrap(), rep);
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut bytes = IcmpMessage::EchoRequest {
            ident: 1,
            seq: 2,
            payload: vec![0xaa; 16],
        }
        .encode();
        bytes[9] ^= 0xff;
        assert!(matches!(
            IcmpMessage::decode(&bytes),
            Err(ParseError::BadChecksum { layer: "icmp", .. })
        ));
    }

    #[test]
    fn time_exceeded_embeds_offender() {
        let probe = Ipv4Packet::new(
            Ipv4Addr::new(128, 138, 243, 10),
            Ipv4Addr::new(128, 138, 238, 0),
            IpProtocol::Udp,
            Bytes::from_static(&[0x82, 0x9a, 0x82, 0x9b, 0, 8, 0, 0]), // UDP hdr head
        )
        .with_id(0x0bad)
        .with_ttl(1);
        let err = time_exceeded_for(&probe);
        let decoded = IcmpMessage::decode(&err.encode()).unwrap();
        let emb = decoded.embedded_packet().unwrap();
        assert_eq!(emb.src, Ipv4Addr::new(128, 138, 243, 10));
        assert_eq!(emb.dst, Ipv4Addr::new(128, 138, 238, 0));
        assert_eq!(emb.protocol, 17);
        assert_eq!(emb.identification, 0x0bad);
        assert_eq!(emb.udp_ports(), Some((0x829a, 0x829b)));
    }

    #[test]
    fn port_unreachable_code_roundtrip() {
        let probe = Ipv4Packet::new(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            IpProtocol::Udp,
            Bytes::from_static(&[0, 1, 2, 3]),
        );
        let err = unreachable_for(UnreachableCode::Port, &probe);
        match IcmpMessage::decode(&err.encode()).unwrap() {
            IcmpMessage::DestinationUnreachable { code, .. } => {
                assert_eq!(code, UnreachableCode::Port)
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn embedded_packet_none_for_echo() {
        let m = IcmpMessage::EchoReply {
            ident: 0,
            seq: 0,
            payload: vec![],
        };
        assert!(m.embedded_packet().is_none());
        assert!(!m.is_error());
    }

    #[test]
    fn embedded_garbage_is_none() {
        let m = IcmpMessage::TimeExceeded {
            original: vec![0xff; 4],
        };
        assert!(m.embedded_packet().is_none());
        let m = IcmpMessage::TimeExceeded {
            original: vec![0x60; 20], // IPv6 version nibble
        };
        assert!(m.embedded_packet().is_none());
    }

    #[test]
    fn udp_ports_none_for_icmp_offender() {
        let probe = Ipv4Packet::new(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            IpProtocol::Icmp,
            Bytes::from_static(&[8, 0, 0, 0, 0, 1, 0, 1]),
        );
        let err = time_exceeded_for(&probe);
        let emb = err.embedded_packet().unwrap();
        assert_eq!(emb.udp_ports(), None);
    }

    #[test]
    fn decode_rejects_unknown_type() {
        let mut bytes = vec![42u8, 0, 0, 0, 0, 0, 0, 0];
        let ck = internet_checksum(&bytes);
        bytes[2..4].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(
            IcmpMessage::decode(&bytes),
            Err(ParseError::BadField { field: "type", .. })
        ));
    }

    #[test]
    fn decode_rejects_truncated() {
        assert!(IcmpMessage::decode(&[8, 0, 0]).is_err());
    }
}
