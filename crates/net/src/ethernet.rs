//! Ethernet II framing.
//!
//! Every packet in the simulated network travels inside an Ethernet II
//! frame on a shared segment, exactly as Fremont's campus traffic did. The
//! passive Explorer Modules (ARPwatch, RIPwatch) observe raw frames through
//! a tap, so frame encode/decode must be byte-exact.

use bytes::Bytes;

use crate::error::ParseError;
use crate::mac::MacAddr;

/// Minimum Ethernet payload length; shorter payloads are padded on encode.
pub const MIN_PAYLOAD: usize = 46;

/// Maximum Ethernet payload length (we do not model jumbo frames).
pub const MAX_PAYLOAD: usize = 1500;

/// Length of the Ethernet II header (dst + src + ethertype).
pub const HEADER_LEN: usize = 14;

/// The EtherType of a frame's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (`0x0800`).
    Ipv4,
    /// ARP (`0x0806`).
    Arp,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl EtherType {
    /// The 16-bit wire value.
    pub fn value(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }

    /// Builds from a 16-bit wire value.
    pub fn from_value(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

/// An Ethernet II frame.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use fremont_net::{EtherType, EthernetFrame, MacAddr};
///
/// let frame = EthernetFrame {
///     dst: MacAddr::BROADCAST,
///     src: "08:00:20:01:02:03".parse().unwrap(),
///     ethertype: EtherType::Arp,
///     payload: Bytes::from_static(&[0u8; 28]),
/// };
/// let bytes = frame.encode();
/// let back = EthernetFrame::decode(&bytes).unwrap();
/// assert_eq!(back.src, frame.src);
/// assert_eq!(back.ethertype, EtherType::Arp);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// Payload type.
    pub ethertype: EtherType,
    /// Payload bytes (unpadded; padding is added on encode).
    pub payload: Bytes,
}

impl EthernetFrame {
    /// Convenience constructor.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: Bytes) -> Self {
        EthernetFrame {
            dst,
            src,
            ethertype,
            payload,
        }
    }

    /// Returns `true` when the frame is addressed to the broadcast MAC.
    pub fn is_broadcast(&self) -> bool {
        self.dst.is_broadcast()
    }

    /// Encodes the frame, padding the payload to [`MIN_PAYLOAD`].
    ///
    /// Payloads longer than [`MAX_PAYLOAD`] are encoded as-is; the simulated
    /// segment enforces MTU separately so oversize is a sender bug that the
    /// simulator surfaces rather than silently truncates.
    pub fn encode(&self) -> Vec<u8> {
        let body_len = self.payload.len().max(MIN_PAYLOAD);
        let mut out = Vec::with_capacity(HEADER_LEN + body_len);
        out.extend_from_slice(&self.dst.octets());
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.ethertype.value().to_be_bytes());
        out.extend_from_slice(&self.payload);
        out.resize(HEADER_LEN + body_len, 0);
        out
    }

    /// Decodes a frame from raw bytes.
    ///
    /// Trailing padding is preserved in `payload`; upper-layer decoders use
    /// their own length fields to ignore it (as real stacks do).
    pub fn decode(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < HEADER_LEN {
            return Err(ParseError::Truncated {
                layer: "ethernet",
                needed: HEADER_LEN,
                available: buf.len(),
            });
        }
        let mut dst = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        let mut src = [0u8; 6];
        src.copy_from_slice(&buf[6..12]);
        let ethertype = EtherType::from_value(u16::from_be_bytes([buf[12], buf[13]]));
        Ok(EthernetFrame {
            dst: MacAddr::new(dst),
            src: MacAddr::new(src),
            ethertype,
            payload: Bytes::copy_from_slice(&buf[HEADER_LEN..]),
        })
    }

    /// Total encoded length in bytes (with padding).
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len().max(MIN_PAYLOAD)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(s: &str) -> MacAddr {
        s.parse().unwrap()
    }

    #[test]
    fn encode_pads_short_payload() {
        let f = EthernetFrame::new(
            mac("ff:ff:ff:ff:ff:ff"),
            mac("08:00:20:00:00:01"),
            EtherType::Arp,
            Bytes::from_static(&[1, 2, 3]),
        );
        let bytes = f.encode();
        assert_eq!(bytes.len(), HEADER_LEN + MIN_PAYLOAD);
        assert_eq!(&bytes[14..17], &[1, 2, 3]);
        assert!(bytes[17..].iter().all(|&b| b == 0));
    }

    #[test]
    fn decode_roundtrip_long_payload() {
        let payload: Vec<u8> = (0..200u16).map(|i| i as u8).collect();
        let f = EthernetFrame::new(
            mac("00:00:0c:01:02:03"),
            mac("08:00:20:0a:0b:0c"),
            EtherType::Ipv4,
            Bytes::from(payload.clone()),
        );
        let back = EthernetFrame::decode(&f.encode()).unwrap();
        assert_eq!(back.dst, f.dst);
        assert_eq!(back.src, f.src);
        assert_eq!(back.ethertype, EtherType::Ipv4);
        assert_eq!(&back.payload[..], &payload[..]);
    }

    #[test]
    fn decode_rejects_short_buffer() {
        let err = EthernetFrame::decode(&[0u8; 13]).unwrap_err();
        assert!(matches!(
            err,
            ParseError::Truncated {
                layer: "ethernet",
                ..
            }
        ));
    }

    #[test]
    fn ethertype_values() {
        assert_eq!(EtherType::Ipv4.value(), 0x0800);
        assert_eq!(EtherType::Arp.value(), 0x0806);
        assert_eq!(EtherType::from_value(0x8035), EtherType::Other(0x8035));
        assert_eq!(EtherType::Other(0x8035).value(), 0x8035);
    }

    #[test]
    fn broadcast_detection() {
        let f = EthernetFrame::new(
            MacAddr::BROADCAST,
            mac("08:00:20:00:00:01"),
            EtherType::Arp,
            Bytes::new(),
        );
        assert!(f.is_broadcast());
    }

    #[test]
    fn wire_len_matches_encode() {
        for n in [0usize, 10, 46, 47, 1000] {
            let f = EthernetFrame::new(
                MacAddr::BROADCAST,
                mac("08:00:20:00:00:01"),
                EtherType::Ipv4,
                Bytes::from(vec![0u8; n]),
            );
            assert_eq!(f.wire_len(), f.encode().len());
        }
    }
}
