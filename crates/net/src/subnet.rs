//! Subnets and subnet masks.
//!
//! Subnet structure is central to Fremont: the Subnet Masks Explorer Module
//! collects per-interface masks, the Traceroute module probes the `.0`, `.1`
//! and `.2` addresses of target subnets, and the Broadcast Ping module sends
//! to the subnet's directed broadcast address. Analysis programs flag
//! *inconsistent network masks* across the interfaces of one subnet.

use core::fmt;
use core::str::FromStr;
use std::net::Ipv4Addr;

use crate::error::AddrError;
use crate::ip::{addr_class, from_u32, to_u32, AddrClass, IpRange};

/// A contiguous IPv4 subnet mask.
///
/// Only masks whose binary representation is a run of ones followed by a run
/// of zeros are representable; construction validates this, so a
/// `SubnetMask` value is always well-formed.
///
/// # Examples
///
/// ```
/// use fremont_net::SubnetMask;
///
/// let m: SubnetMask = "255.255.255.0".parse().unwrap();
/// assert_eq!(m.prefix_len(), 24);
/// assert_eq!(m.to_string(), "255.255.255.0");
/// assert!("255.0.255.0".parse::<SubnetMask>().is_err());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubnetMask(u32);

impl SubnetMask {
    /// The classful class-C mask, `255.255.255.0` — Fremont's fallback
    /// when no mask observation has arrived yet.
    pub const CLASS_C: SubnetMask = SubnetMask(0xFFFF_FF00);

    /// Creates a mask from a prefix length (`0..=32`).
    pub fn from_prefix_len(len: u8) -> Result<Self, AddrError> {
        if len > 32 {
            return Err(AddrError::BadPrefixLen(len));
        }
        Ok(SubnetMask(prefix_bits(len)))
    }

    /// Creates a mask from a raw 32-bit value, validating contiguity.
    pub fn from_bits(bits: u32) -> Result<Self, AddrError> {
        let len = bits.leading_ones();
        if bits == prefix_bits(len as u8) {
            Ok(SubnetMask(bits))
        } else {
            Err(AddrError::NonContiguousMask(bits))
        }
    }

    /// Creates a mask from dotted-quad form.
    pub fn from_addr(addr: Ipv4Addr) -> Result<Self, AddrError> {
        Self::from_bits(to_u32(addr))
    }

    /// The natural (classful) mask for an address, if it has one.
    ///
    /// Class D/E addresses have no natural mask.
    pub fn natural_for(addr: Ipv4Addr) -> Option<Self> {
        addr_class(addr)
            .natural_prefix_len()
            .map(|len| SubnetMask(prefix_bits(len)))
    }

    /// The raw mask bits in host order.
    pub fn bits(&self) -> u32 {
        self.0
    }

    /// The prefix length (number of one bits).
    pub fn prefix_len(&self) -> u8 {
        self.0.leading_ones() as u8
    }

    /// The mask as a dotted-quad address.
    pub fn as_addr(&self) -> Ipv4Addr {
        from_u32(self.0)
    }

    /// Number of host addresses under this mask (including the host-zero and
    /// broadcast addresses).
    pub fn address_count(&self) -> u64 {
        1u64 << (32 - self.prefix_len())
    }
}

impl fmt::Display for SubnetMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_addr())
    }
}

impl fmt::Debug for SubnetMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SubnetMask(/{})", self.prefix_len())
    }
}

impl FromStr for SubnetMask {
    type Err = AddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(rest) = s.strip_prefix('/') {
            let len: u8 = rest
                .parse()
                .map_err(|_| AddrError::BadSyntax(s.to_owned()))?;
            return Self::from_prefix_len(len);
        }
        let addr: Ipv4Addr = s.parse().map_err(|_| AddrError::BadSyntax(s.to_owned()))?;
        Self::from_addr(addr)
    }
}

fn prefix_bits(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(len))
    }
}

/// An IPv4 subnet: a network address plus a mask.
///
/// The network address is normalized (host bits cleared) on construction.
///
/// # Examples
///
/// ```
/// use std::net::Ipv4Addr;
/// use fremont_net::Subnet;
///
/// let s: Subnet = "128.138.238.0/24".parse().unwrap();
/// assert!(s.contains(Ipv4Addr::new(128, 138, 238, 18)));
/// assert_eq!(s.directed_broadcast(), Ipv4Addr::new(128, 138, 238, 255));
/// assert_eq!(s.host_zero(), Ipv4Addr::new(128, 138, 238, 0));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Subnet {
    network: u32,
    mask: SubnetMask,
}

impl Subnet {
    /// Creates the subnet containing `addr` under `mask` (host bits of
    /// `addr` are ignored).
    pub fn containing(addr: Ipv4Addr, mask: SubnetMask) -> Self {
        Subnet {
            network: to_u32(addr) & mask.bits(),
            mask,
        }
    }

    /// Creates a subnet from an exact network address; errors when `addr`
    /// has host bits set.
    pub fn new(addr: Ipv4Addr, mask: SubnetMask) -> Result<Self, AddrError> {
        if to_u32(addr) & !mask.bits() != 0 {
            return Err(AddrError::HostBitsSet {
                addr: addr.to_string(),
                prefix_len: mask.prefix_len(),
            });
        }
        Ok(Subnet {
            network: to_u32(addr),
            mask,
        })
    }

    /// The classful network containing `addr` (A/B/C only).
    pub fn natural_network(addr: Ipv4Addr) -> Option<Self> {
        SubnetMask::natural_for(addr).map(|m| Subnet::containing(addr, m))
    }

    /// The network (lowest) address.
    pub fn network(&self) -> Ipv4Addr {
        from_u32(self.network)
    }

    /// The subnet mask.
    pub fn mask(&self) -> SubnetMask {
        self.mask
    }

    /// The prefix length of the mask.
    pub fn prefix_len(&self) -> u8 {
        self.mask.prefix_len()
    }

    /// Returns `true` when `addr` is inside this subnet.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        to_u32(addr) & self.mask.bits() == self.network
    }

    /// Returns `true` when `other` is entirely contained in `self`.
    pub fn contains_subnet(&self, other: &Subnet) -> bool {
        other.prefix_len() >= self.prefix_len() && self.contains(other.network())
    }

    /// The directed broadcast address (all host bits set).
    pub fn directed_broadcast(&self) -> Ipv4Addr {
        from_u32(self.network | !self.mask.bits())
    }

    /// The "host zero" address (all host bits clear).
    ///
    /// The paper's Traceroute module sends probes to host zero because "if a
    /// host receives a packet that is addressed to host zero on the subnet,
    /// the host is supposed to treat that packet as though it were addressed
    /// to that host".
    pub fn host_zero(&self) -> Ipv4Addr {
        from_u32(self.network)
    }

    /// The `n`-th address in the subnet (`0` is host zero). Returns `None`
    /// beyond the broadcast address.
    pub fn nth(&self, n: u32) -> Option<Ipv4Addr> {
        let host_bits = 32 - u32::from(self.prefix_len());
        let span = if host_bits == 32 {
            u64::from(u32::MAX) + 1
        } else {
            1u64 << host_bits
        };
        if u64::from(n) < span {
            Some(from_u32(self.network + n))
        } else {
            None
        }
    }

    /// The range of *usable host* addresses (excluding host-zero and
    /// directed broadcast). Empty for /31 and /32.
    pub fn host_range(&self) -> IpRange {
        if self.prefix_len() >= 31 {
            // No usable hosts in the classic sense.
            IpRange::new(from_u32(1), from_u32(0))
        } else {
            IpRange::new(
                from_u32(self.network + 1),
                from_u32((self.network | !self.mask.bits()) - 1),
            )
        }
    }

    /// The range of *all* addresses in the subnet, including host-zero and
    /// broadcast.
    pub fn full_range(&self) -> IpRange {
        IpRange::new(self.network(), self.directed_broadcast())
    }

    /// Number of usable host addresses.
    pub fn host_count(&self) -> u64 {
        self.host_range().len()
    }

    /// Returns the class of the containing classful network.
    pub fn class(&self) -> AddrClass {
        addr_class(self.network())
    }
}

impl fmt::Display for Subnet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.prefix_len())
    }
}

impl fmt::Debug for Subnet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Subnet({self})")
    }
}

impl FromStr for Subnet {
    type Err = AddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_s, mask_s) = s
            .split_once('/')
            .ok_or_else(|| AddrError::BadSyntax(s.to_owned()))?;
        let addr: Ipv4Addr = addr_s
            .parse()
            .map_err(|_| AddrError::BadSyntax(s.to_owned()))?;
        let mask = if mask_s.contains('.') {
            mask_s.parse::<SubnetMask>()?
        } else {
            let len: u8 = mask_s
                .parse()
                .map_err(|_| AddrError::BadSyntax(s.to_owned()))?;
            SubnetMask::from_prefix_len(len)?
        };
        Subnet::new(addr, mask)
    }
}

/// Ordering: by network address, then by prefix length (wider first).
impl Ord for Subnet {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.network
            .cmp(&other.network)
            .then(self.prefix_len().cmp(&other.prefix_len()))
    }
}

impl PartialOrd for Subnet {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn mask_prefix_roundtrip() {
        for len in 0..=32u8 {
            let m = SubnetMask::from_prefix_len(len).unwrap();
            assert_eq!(m.prefix_len(), len);
            assert_eq!(SubnetMask::from_bits(m.bits()).unwrap(), m);
        }
    }

    #[test]
    fn mask_rejects_noncontiguous() {
        assert!(SubnetMask::from_bits(0xff00ff00).is_err());
        assert!(SubnetMask::from_bits(0x00000001).is_err());
        assert!(SubnetMask::from_addr(ip("255.0.255.0")).is_err());
    }

    #[test]
    fn mask_parse_slash_form() {
        let m: SubnetMask = "/26".parse().unwrap();
        assert_eq!(m.to_string(), "255.255.255.192");
        assert!("/33".parse::<SubnetMask>().is_err());
    }

    #[test]
    fn natural_masks() {
        assert_eq!(
            SubnetMask::natural_for(ip("10.1.2.3"))
                .unwrap()
                .prefix_len(),
            8
        );
        assert_eq!(
            SubnetMask::natural_for(ip("128.138.238.18"))
                .unwrap()
                .prefix_len(),
            16
        );
        assert_eq!(
            SubnetMask::natural_for(ip("192.52.106.9"))
                .unwrap()
                .prefix_len(),
            24
        );
        assert!(SubnetMask::natural_for(ip("224.0.0.1")).is_none());
    }

    #[test]
    fn subnet_membership() {
        let s: Subnet = "128.138.238.0/24".parse().unwrap();
        assert!(s.contains(ip("128.138.238.1")));
        assert!(s.contains(ip("128.138.238.255")));
        assert!(!s.contains(ip("128.138.239.1")));
        assert_eq!(s.class(), AddrClass::B);
    }

    #[test]
    fn subnet_new_rejects_host_bits() {
        let m = SubnetMask::from_prefix_len(24).unwrap();
        assert!(Subnet::new(ip("10.0.0.1"), m).is_err());
        assert!(Subnet::new(ip("10.0.0.0"), m).is_ok());
    }

    #[test]
    fn containing_normalizes() {
        let m = SubnetMask::from_prefix_len(20).unwrap();
        let s = Subnet::containing(ip("172.16.31.200"), m);
        assert_eq!(s.network(), ip("172.16.16.0"));
        assert_eq!(s.directed_broadcast(), ip("172.16.31.255"));
    }

    #[test]
    fn host_range_excludes_zero_and_broadcast() {
        let s: Subnet = "192.168.5.0/29".parse().unwrap();
        let hosts: Vec<_> = s.host_range().iter().collect();
        assert_eq!(hosts.len(), 6);
        assert_eq!(hosts[0], ip("192.168.5.1"));
        assert_eq!(hosts[5], ip("192.168.5.6"));
        assert_eq!(s.host_count(), 6);
    }

    #[test]
    fn full_range_includes_everything() {
        let s: Subnet = "192.168.5.0/29".parse().unwrap();
        assert_eq!(s.full_range().len(), 8);
    }

    #[test]
    fn nth_addressing() {
        let s: Subnet = "128.138.238.0/24".parse().unwrap();
        assert_eq!(s.nth(0), Some(ip("128.138.238.0")));
        assert_eq!(s.nth(2), Some(ip("128.138.238.2")));
        assert_eq!(s.nth(255), Some(ip("128.138.238.255")));
        assert_eq!(s.nth(256), None);
    }

    #[test]
    fn subnet_containment() {
        let outer: Subnet = "128.138.0.0/16".parse().unwrap();
        let inner: Subnet = "128.138.238.0/24".parse().unwrap();
        assert!(outer.contains_subnet(&inner));
        assert!(!inner.contains_subnet(&outer));
        assert!(outer.contains_subnet(&outer));
    }

    #[test]
    fn parse_dotted_mask_form() {
        let s: Subnet = "10.1.0.0/255.255.0.0".parse().unwrap();
        assert_eq!(s.prefix_len(), 16);
    }

    #[test]
    fn display_roundtrip() {
        let s: Subnet = "10.20.30.0/24".parse().unwrap();
        assert_eq!(s.to_string(), "10.20.30.0/24");
        assert_eq!(s.to_string().parse::<Subnet>().unwrap(), s);
    }

    #[test]
    fn slash_31_and_32_have_no_hosts() {
        let s: Subnet = "10.0.0.0/31".parse().unwrap();
        assert_eq!(s.host_count(), 0);
        let s: Subnet = "10.0.0.1/32".parse().unwrap();
        assert_eq!(s.host_count(), 0);
        assert_eq!(s.directed_broadcast(), ip("10.0.0.1"));
    }

    #[test]
    fn zero_prefix_subnet() {
        let s: Subnet = "0.0.0.0/0".parse().unwrap();
        assert!(s.contains(ip("1.2.3.4")));
        assert!(s.contains(ip("255.255.255.255")));
        assert_eq!(s.mask().address_count(), 1u64 << 32);
    }

    #[test]
    fn ordering() {
        let a: Subnet = "10.0.0.0/16".parse().unwrap();
        let b: Subnet = "10.0.0.0/24".parse().unwrap();
        let c: Subnet = "10.1.0.0/16".parse().unwrap();
        assert!(a < b);
        assert!(b < c);
    }
}
