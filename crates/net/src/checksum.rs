//! The Internet checksum (RFC 1071).
//!
//! Used by the IPv4 header, ICMP, and (optionally) UDP codecs.

/// Computes the 16-bit one's-complement Internet checksum over `data`.
///
/// An odd final byte is padded with a zero byte, per RFC 1071.
///
/// # Examples
///
/// ```
/// use fremont_net::checksum::internet_checksum;
///
/// // A buffer whose checksum field is filled with the correct checksum
/// // verifies to zero.
/// let mut buf = vec![0x45, 0x00, 0x00, 0x1c, 0x00, 0x00];
/// let ck = internet_checksum(&buf);
/// buf.extend_from_slice(&ck.to_be_bytes());
/// assert_eq!(internet_checksum(&buf), 0);
/// ```
pub fn internet_checksum(data: &[u8]) -> u16 {
    !ones_complement_sum(data)
}

/// Computes the one's-complement sum (without the final inversion).
///
/// Useful when a checksum spans several buffers (pseudo-header plus payload):
/// sum the parts with [`combine`] and invert at the end.
pub fn ones_complement_sum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    fold(sum)
}

/// Adds two one's-complement partial sums.
pub fn combine(a: u16, b: u16) -> u16 {
    fold(u32::from(a) + u32::from(b))
}

fn fold(mut sum: u32) -> u16 {
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// Verifies that `data` (including its embedded checksum field) sums to the
/// all-ones pattern, i.e. that its Internet checksum is valid.
pub fn verify(data: &[u8]) -> bool {
    internet_checksum(data) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // The example bytes from RFC 1071 section 3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(ones_complement_sum(&data), 0xddf2);
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn empty_buffer() {
        assert_eq!(ones_complement_sum(&[]), 0);
        assert_eq!(internet_checksum(&[]), 0xffff);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(ones_complement_sum(&[0xab]), 0xab00);
    }

    #[test]
    fn verify_roundtrip() {
        let mut buf = vec![0x08, 0x00, 0x00, 0x00, 0x12, 0x34, 0x00, 0x01];
        let ck = internet_checksum(&buf);
        buf[2..4].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&buf));
        buf[5] ^= 0x01;
        assert!(!verify(&buf));
    }

    #[test]
    fn combine_matches_contiguous_sum() {
        let a = [0x12u8, 0x34, 0x56, 0x78];
        let b = [0x9au8, 0xbc, 0xde, 0xf0];
        let whole: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(
            combine(ones_complement_sum(&a), ones_complement_sum(&b)),
            ones_complement_sum(&whole)
        );
    }

    #[test]
    fn carry_folding() {
        // All-0xff words force repeated carry folds.
        let data = [0xffu8; 64];
        assert_eq!(ones_complement_sum(&data), 0xffff);
        assert_eq!(internet_checksum(&data), 0);
    }
}
