//! Organizationally Unique Identifier (OUI) vendor table.
//!
//! A compact table of the Ethernet hardware vendors that populated campus
//! networks of the paper's era, used by [`crate::MacAddr::vendor`] to report
//! interface manufacturers, as Fremont's ARP Explorer Modules did.

/// One `(prefix, vendor)` table entry. Kept sorted by prefix for binary search.
const TABLE: &[([u8; 3], &str)] = &[
    ([0x00, 0x00, 0x0c], "Cisco Systems"),
    ([0x00, 0x00, 0x1d], "Cabletron Systems"),
    ([0x00, 0x00, 0x65], "Network General"),
    ([0x00, 0x00, 0x6b], "MIPS Computer Systems"),
    ([0x00, 0x00, 0x93], "Proteon"),
    ([0x00, 0x00, 0xa7], "Network Computing Devices"),
    ([0x00, 0x00, 0xc0], "Western Digital"),
    ([0x00, 0x00, 0xf8], "Digital Equipment Corporation"),
    ([0x00, 0x20, 0xaf], "3Com"),
    ([0x00, 0x60, 0x8c], "3Com"),
    ([0x00, 0x80, 0x2d], "Xylogics"),
    ([0x00, 0x80, 0xa3], "Lantronix"),
    ([0x00, 0xaa, 0x00], "Intel"),
    ([0x00, 0xdd, 0x00], "Ungermann-Bass"),
    ([0x02, 0x60, 0x8c], "3Com"),
    ([0x08, 0x00, 0x09], "Hewlett-Packard"),
    ([0x08, 0x00, 0x0b], "Unisys"),
    ([0x08, 0x00, 0x11], "Tektronix"),
    ([0x08, 0x00, 0x1e], "Apollo Computer"),
    ([0x08, 0x00, 0x20], "Sun Microsystems"),
    ([0x08, 0x00, 0x2b], "Digital Equipment Corporation"),
    ([0x08, 0x00, 0x38], "Bull"),
    ([0x08, 0x00, 0x46], "Sony"),
    ([0x08, 0x00, 0x5a], "IBM"),
    ([0x08, 0x00, 0x69], "Silicon Graphics"),
    ([0x08, 0x00, 0x79], "Silicon Graphics"),
    ([0x08, 0x00, 0x87], "Xyplex"),
    ([0x08, 0x00, 0x89], "Kinetics"),
    ([0x08, 0x00, 0x8b], "Pyramid Technology"),
    ([0x10, 0x00, 0x5a], "IBM"),
    ([0xaa, 0x00, 0x03], "Digital Equipment Corporation"),
    ([0xaa, 0x00, 0x04], "Digital Equipment Corporation"),
];

/// Looks up the vendor name for an OUI prefix.
///
/// Returns `None` when the prefix is not in the table.
pub fn vendor_for(prefix: [u8; 3]) -> Option<&'static str> {
    TABLE
        .binary_search_by_key(&prefix, |(p, _)| *p)
        .ok()
        .map(|i| TABLE[i].1)
}

/// Returns the number of known OUI prefixes (for diagnostics).
pub fn table_len() -> usize {
    TABLE.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_deduplicated() {
        for w in TABLE.windows(2) {
            assert!(w[0].0 < w[1].0, "table must be strictly sorted by prefix");
        }
    }

    #[test]
    fn known_prefixes_resolve() {
        assert_eq!(vendor_for([0x08, 0x00, 0x20]), Some("Sun Microsystems"));
        assert_eq!(
            vendor_for([0xaa, 0x00, 0x04]),
            Some("Digital Equipment Corporation")
        );
        assert_eq!(vendor_for([0x08, 0x00, 0x5a]), Some("IBM"));
    }

    #[test]
    fn unknown_prefix_is_none() {
        assert_eq!(vendor_for([0xde, 0xad, 0xbe]), None);
    }

    #[test]
    fn table_nonempty() {
        assert!(table_len() >= 30);
    }
}
