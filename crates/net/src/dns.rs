//! Domain Name System messages (RFC 1035).
//!
//! Fremont's DNS Explorer Module walks the reverse (`in-addr.arpa`) tree
//! with zone transfers, derived from `nslookup`. This module provides the
//! wire format: names (with compression-pointer decoding), questions,
//! resource records (A, PTR, NS, CNAME, SOA, HINFO, WKS), and whole
//! messages. The encoder emits uncompressed names; the decoder accepts
//! compressed ones, with loop protection.

use core::fmt;
use core::str::FromStr;
use std::net::Ipv4Addr;

use crate::error::ParseError;

/// Maximum encoded name length (RFC 1035 §2.3.4).
pub const MAX_NAME_LEN: usize = 255;

/// Maximum label length.
pub const MAX_LABEL_LEN: usize = 63;

/// A domain name: a sequence of labels, compared case-insensitively.
///
/// # Examples
///
/// ```
/// use fremont_net::DnsName;
///
/// let n: DnsName = "bruno.CS.Colorado.EDU".parse().unwrap();
/// assert_eq!(n.to_string(), "bruno.cs.colorado.edu");
/// assert_eq!(n.labels().len(), 4);
/// assert!(n.ends_with(&"colorado.edu".parse().unwrap()));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DnsName {
    labels: Vec<String>,
}

impl DnsName {
    /// The root name (zero labels).
    pub fn root() -> Self {
        DnsName { labels: Vec::new() }
    }

    /// Builds a name from labels; each is lowercased and validated.
    pub fn from_labels<I, S>(labels: I) -> Result<Self, ParseError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut out = Vec::new();
        let mut total = 1usize; // Trailing root byte.
        for l in labels {
            let l = l.as_ref();
            if l.is_empty() {
                return Err(ParseError::BadName {
                    reason: "empty label",
                });
            }
            if l.len() > MAX_LABEL_LEN {
                return Err(ParseError::BadName {
                    reason: "label longer than 63 bytes",
                });
            }
            if !l.bytes().all(|b| b.is_ascii_graphic()) {
                return Err(ParseError::BadName {
                    reason: "non-printable byte in label",
                });
            }
            total += 1 + l.len();
            if total > MAX_NAME_LEN {
                return Err(ParseError::BadName {
                    reason: "name longer than 255 bytes",
                });
            }
            out.push(l.to_ascii_lowercase());
        }
        Ok(DnsName { labels: out })
    }

    /// The labels, most-specific first.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Returns `true` for the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Returns `true` when `suffix` is a (possibly equal) ancestor of
    /// `self`.
    pub fn ends_with(&self, suffix: &DnsName) -> bool {
        let n = self.labels.len();
        let m = suffix.labels.len();
        m <= n && self.labels[n - m..] == suffix.labels[..]
    }

    /// Prepends a label, producing a child name.
    pub fn child(&self, label: &str) -> Result<DnsName, ParseError> {
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label.to_owned());
        labels.extend(self.labels.iter().cloned());
        DnsName::from_labels(labels)
    }

    /// Drops the leading label, producing the parent name (root's parent is
    /// root).
    pub fn parent(&self) -> DnsName {
        DnsName {
            labels: self.labels.iter().skip(1).cloned().collect(),
        }
    }

    /// The first (most specific) label, if any.
    pub fn leaf(&self) -> Option<&str> {
        self.labels.first().map(String::as_str)
    }

    /// The conventional reverse-lookup name for an IPv4 address,
    /// `d.c.b.a.in-addr.arpa`.
    pub fn reverse_for(addr: Ipv4Addr) -> DnsName {
        let o = addr.octets();
        DnsName::from_labels([
            o[3].to_string(),
            o[2].to_string(),
            o[1].to_string(),
            o[0].to_string(),
            "in-addr".to_string(),
            "arpa".to_string(),
        ])
        .expect("octet labels are always valid")
    }

    /// The reverse-tree *zone* for a network, keeping only the octets
    /// the prefix length covers: `10.0.0.0/8` → `10.in-addr.arpa`,
    /// `128.138.0.0/16` → `138.128.in-addr.arpa`, anything longer →
    /// three octets.
    pub fn reverse_zone_for(network: Ipv4Addr, prefix_len: u8) -> DnsName {
        let o = network.octets();
        let kept = match prefix_len {
            0..=8 => 1,
            9..=16 => 2,
            _ => 3,
        };
        let mut labels: Vec<String> = (0..kept).rev().map(|i| o[i].to_string()).collect();
        labels.push("in-addr".to_owned());
        labels.push("arpa".to_owned());
        DnsName { labels }
    }

    /// If this is a full `d.c.b.a.in-addr.arpa` name, recovers the address.
    pub fn reverse_to_addr(&self) -> Option<Ipv4Addr> {
        if self.labels.len() != 6 || self.labels[4] != "in-addr" || self.labels[5] != "arpa" {
            return None;
        }
        let oct = |i: usize| self.labels[i].parse::<u8>().ok();
        Some(Ipv4Addr::new(oct(3)?, oct(2)?, oct(1)?, oct(0)?))
    }

    /// Encodes to wire form (uncompressed).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        for l in &self.labels {
            out.push(l.len() as u8);
            out.extend_from_slice(l.as_bytes());
        }
        out.push(0);
    }

    /// Decodes a name starting at `offset` in `msg`, following compression
    /// pointers. Returns the name and the offset just past the name's
    /// *direct* encoding (i.e. past the pointer if one was followed).
    pub fn decode_from(msg: &[u8], offset: usize) -> Result<(DnsName, usize), ParseError> {
        let mut labels = Vec::new();
        let mut pos = offset;
        let mut end_of_direct: Option<usize> = None;
        let mut jumps = 0usize;
        let mut total = 1usize;
        loop {
            let len_byte = *msg.get(pos).ok_or(ParseError::Truncated {
                layer: "dns-name",
                needed: pos + 1,
                available: msg.len(),
            })?;
            if len_byte & 0xc0 == 0xc0 {
                // Compression pointer.
                let second = *msg.get(pos + 1).ok_or(ParseError::Truncated {
                    layer: "dns-name",
                    needed: pos + 2,
                    available: msg.len(),
                })?;
                if end_of_direct.is_none() {
                    end_of_direct = Some(pos + 2);
                }
                let target = usize::from(u16::from_be_bytes([len_byte & 0x3f, second]));
                jumps += 1;
                if jumps > 32 || target >= pos {
                    return Err(ParseError::BadName {
                        reason: "compression pointer loop",
                    });
                }
                pos = target;
                continue;
            }
            if len_byte & 0xc0 != 0 {
                return Err(ParseError::BadName {
                    reason: "reserved label type",
                });
            }
            if len_byte == 0 {
                let end = end_of_direct.unwrap_or(pos + 1);
                let name = DnsName::from_labels(labels)?;
                return Ok((name, end));
            }
            let len = usize::from(len_byte);
            total += 1 + len;
            if total > MAX_NAME_LEN {
                return Err(ParseError::BadName {
                    reason: "name longer than 255 bytes",
                });
            }
            let start = pos + 1;
            let bytes = msg.get(start..start + len).ok_or(ParseError::Truncated {
                layer: "dns-name",
                needed: start + len,
                available: msg.len(),
            })?;
            // Accept any bytes on the wire but keep them printable for us.
            let label: String = bytes
                .iter()
                .map(|&b| {
                    if b.is_ascii_graphic() {
                        (b as char).to_ascii_lowercase()
                    } else {
                        '?'
                    }
                })
                .collect();
            labels.push(label);
            pos = start + len;
        }
    }
}

impl fmt::Display for DnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        write!(f, "{}", self.labels.join("."))
    }
}

impl fmt::Debug for DnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DnsName({self})")
    }
}

impl FromStr for DnsName {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.strip_suffix('.').unwrap_or(s);
        if trimmed.is_empty() {
            return Ok(DnsName::root());
        }
        DnsName::from_labels(trimmed.split('.'))
    }
}

/// DNS record/query types used by the Fremont DNS module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordType {
    /// Host address (1).
    A,
    /// Authoritative name server (2).
    Ns,
    /// Canonical name (5).
    Cname,
    /// Start of authority (6).
    Soa,
    /// Well Known Services (11) — deprecated by RFC 1123, and the paper
    /// found it "notoriously bad" in deployed databases.
    Wks,
    /// Domain name pointer (12): the reverse tree.
    Ptr,
    /// Host information (13).
    Hinfo,
    /// Zone transfer query type (252).
    Axfr,
    /// Any-type query (255).
    Any,
    /// Anything else, verbatim.
    Other(u16),
}

impl RecordType {
    /// The 16-bit wire value.
    pub fn value(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Wks => 11,
            RecordType::Ptr => 12,
            RecordType::Hinfo => 13,
            RecordType::Axfr => 252,
            RecordType::Any => 255,
            RecordType::Other(v) => v,
        }
    }

    /// Builds from a 16-bit wire value.
    pub fn from_value(v: u16) -> Self {
        match v {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            11 => RecordType::Wks,
            12 => RecordType::Ptr,
            13 => RecordType::Hinfo,
            252 => RecordType::Axfr,
            255 => RecordType::Any,
            other => RecordType::Other(other),
        }
    }
}

/// Typed record data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RData {
    /// An IPv4 address.
    A(Ipv4Addr),
    /// A name server's name.
    Ns(DnsName),
    /// A canonical name.
    Cname(DnsName),
    /// Start-of-authority fields.
    Soa {
        /// Primary name server.
        mname: DnsName,
        /// Responsible mailbox.
        rname: DnsName,
        /// Zone serial number.
        serial: u32,
        /// Refresh interval (seconds).
        refresh: u32,
        /// Retry interval (seconds).
        retry: u32,
        /// Expiry (seconds).
        expire: u32,
        /// Minimum TTL (seconds).
        minimum: u32,
    },
    /// A reverse pointer target.
    Ptr(DnsName),
    /// CPU and OS strings.
    Hinfo {
        /// CPU type string.
        cpu: String,
        /// Operating system string.
        os: String,
    },
    /// Uninterpreted record data (including WKS, which the paper found
    /// useless in practice).
    Raw(Vec<u8>),
}

/// A resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsRecord {
    /// Owner name.
    pub name: DnsName,
    /// Record type.
    pub rtype: RecordType,
    /// Time to live, seconds.
    pub ttl: u32,
    /// Typed data.
    pub rdata: RData,
}

impl DnsRecord {
    /// Convenience A-record constructor.
    pub fn a(name: DnsName, addr: Ipv4Addr, ttl: u32) -> Self {
        DnsRecord {
            name,
            rtype: RecordType::A,
            ttl,
            rdata: RData::A(addr),
        }
    }

    /// Convenience PTR-record constructor.
    pub fn ptr(owner: DnsName, target: DnsName, ttl: u32) -> Self {
        DnsRecord {
            name: owner,
            rtype: RecordType::Ptr,
            ttl,
            rdata: RData::Ptr(target),
        }
    }
}

/// A question entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsQuestion {
    /// Queried name.
    pub name: DnsName,
    /// Queried type.
    pub qtype: RecordType,
}

/// DNS response codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    /// No error (0).
    NoError,
    /// Format error (1).
    FormErr,
    /// Server failure (2).
    ServFail,
    /// Name does not exist (3).
    NxDomain,
    /// Not implemented (4).
    NotImp,
    /// Refused (5) — e.g. an AXFR denied to outsiders.
    Refused,
    /// Any other code.
    Other(u8),
}

impl Rcode {
    fn value(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(v) => v & 0x0f,
        }
    }

    fn from_value(v: u8) -> Self {
        match v & 0x0f {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsMessage {
    /// Transaction id.
    pub id: u16,
    /// `true` for responses.
    pub is_response: bool,
    /// Authoritative-answer flag.
    pub authoritative: bool,
    /// Recursion-desired flag.
    pub recursion_desired: bool,
    /// Response code.
    pub rcode: Rcode,
    /// Question section.
    pub questions: Vec<DnsQuestion>,
    /// Answer section.
    pub answers: Vec<DnsRecord>,
    /// Authority section.
    pub authorities: Vec<DnsRecord>,
    /// Additional section.
    pub additionals: Vec<DnsRecord>,
}

impl DnsMessage {
    /// Builds a standard query for `name`/`qtype`.
    pub fn query(id: u16, name: DnsName, qtype: RecordType) -> Self {
        DnsMessage {
            id,
            is_response: false,
            authoritative: false,
            recursion_desired: true,
            rcode: Rcode::NoError,
            questions: vec![DnsQuestion { name, qtype }],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Builds the response skeleton for a query.
    pub fn response_to(query: &DnsMessage, rcode: Rcode) -> Self {
        DnsMessage {
            id: query.id,
            is_response: true,
            authoritative: true,
            recursion_desired: query.recursion_desired,
            rcode,
            questions: query.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Encodes the message (uncompressed names).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        out.extend_from_slice(&self.id.to_be_bytes());
        let mut flags: u16 = 0;
        if self.is_response {
            flags |= 0x8000;
        }
        if self.authoritative {
            flags |= 0x0400;
        }
        if self.recursion_desired {
            flags |= 0x0100;
        }
        flags |= u16::from(self.rcode.value());
        out.extend_from_slice(&flags.to_be_bytes());
        out.extend_from_slice(&(self.questions.len() as u16).to_be_bytes());
        out.extend_from_slice(&(self.answers.len() as u16).to_be_bytes());
        out.extend_from_slice(&(self.authorities.len() as u16).to_be_bytes());
        out.extend_from_slice(&(self.additionals.len() as u16).to_be_bytes());
        for q in &self.questions {
            q.name.encode_into(&mut out);
            out.extend_from_slice(&q.qtype.value().to_be_bytes());
            out.extend_from_slice(&1u16.to_be_bytes()); // class IN
        }
        for rr in self
            .answers
            .iter()
            .chain(&self.authorities)
            .chain(&self.additionals)
        {
            encode_record(rr, &mut out);
        }
        out
    }

    /// Decodes a message.
    pub fn decode(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < 12 {
            return Err(ParseError::Truncated {
                layer: "dns",
                needed: 12,
                available: buf.len(),
            });
        }
        let id = u16::from_be_bytes([buf[0], buf[1]]);
        let flags = u16::from_be_bytes([buf[2], buf[3]]);
        let qd = usize::from(u16::from_be_bytes([buf[4], buf[5]]));
        let an = usize::from(u16::from_be_bytes([buf[6], buf[7]]));
        let ns = usize::from(u16::from_be_bytes([buf[8], buf[9]]));
        let ar = usize::from(u16::from_be_bytes([buf[10], buf[11]]));
        let mut pos = 12;
        let mut questions = Vec::with_capacity(qd.min(64));
        for _ in 0..qd {
            let (name, next) = DnsName::decode_from(buf, pos)?;
            pos = next;
            let ty = read_u16(buf, pos, "qtype")?;
            let _class = read_u16(buf, pos + 2, "qclass")?;
            pos += 4;
            questions.push(DnsQuestion {
                name,
                qtype: RecordType::from_value(ty),
            });
        }
        let mut sections = [Vec::new(), Vec::new(), Vec::new()];
        for (i, count) in [an, ns, ar].into_iter().enumerate() {
            for _ in 0..count {
                let (rr, next) = decode_record(buf, pos)?;
                pos = next;
                sections[i].push(rr);
            }
        }
        let [answers, authorities, additionals] = sections;
        Ok(DnsMessage {
            id,
            is_response: flags & 0x8000 != 0,
            authoritative: flags & 0x0400 != 0,
            recursion_desired: flags & 0x0100 != 0,
            rcode: Rcode::from_value(flags as u8),
            questions,
            answers,
            authorities,
            additionals,
        })
    }
}

fn read_u16(buf: &[u8], pos: usize, field: &'static str) -> Result<u16, ParseError> {
    buf.get(pos..pos + 2)
        .map(|b| u16::from_be_bytes([b[0], b[1]]))
        .ok_or(ParseError::BadField {
            layer: "dns",
            field,
            value: pos as u64,
        })
}

fn read_u32(buf: &[u8], pos: usize, field: &'static str) -> Result<u32, ParseError> {
    buf.get(pos..pos + 4)
        .map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
        .ok_or(ParseError::BadField {
            layer: "dns",
            field,
            value: pos as u64,
        })
}

fn encode_record(rr: &DnsRecord, out: &mut Vec<u8>) {
    rr.name.encode_into(out);
    out.extend_from_slice(&rr.rtype.value().to_be_bytes());
    out.extend_from_slice(&1u16.to_be_bytes()); // class IN
    out.extend_from_slice(&rr.ttl.to_be_bytes());
    let mut rdata = Vec::new();
    match &rr.rdata {
        RData::A(a) => rdata.extend_from_slice(&a.octets()),
        RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => n.encode_into(&mut rdata),
        RData::Soa {
            mname,
            rname,
            serial,
            refresh,
            retry,
            expire,
            minimum,
        } => {
            mname.encode_into(&mut rdata);
            rname.encode_into(&mut rdata);
            for v in [serial, refresh, retry, expire, minimum] {
                rdata.extend_from_slice(&v.to_be_bytes());
            }
        }
        RData::Hinfo { cpu, os } => {
            for s in [cpu, os] {
                let b = s.as_bytes();
                let n = b.len().min(255);
                rdata.push(n as u8);
                rdata.extend_from_slice(&b[..n]);
            }
        }
        RData::Raw(bytes) => rdata.extend_from_slice(bytes),
    }
    out.extend_from_slice(&(rdata.len() as u16).to_be_bytes());
    out.extend_from_slice(&rdata);
}

/// Decodes a name whose *direct* encoding must end within this record's
/// rdata (compression pointers may still reference earlier message bytes).
fn bounded_name(buf: &[u8], pos: usize, rdata_end: usize) -> Result<(DnsName, usize), ParseError> {
    let (name, end) = DnsName::decode_from(buf, pos)?;
    if end > rdata_end {
        return Err(ParseError::BadField {
            layer: "dns",
            field: "rdlength",
            value: (end - pos) as u64,
        });
    }
    Ok((name, end))
}

fn decode_record(buf: &[u8], pos: usize) -> Result<(DnsRecord, usize), ParseError> {
    let (name, mut pos) = DnsName::decode_from(buf, pos)?;
    let rtype = RecordType::from_value(read_u16(buf, pos, "rtype")?);
    let _class = read_u16(buf, pos + 2, "rclass")?;
    let ttl = read_u32(buf, pos + 4, "ttl")?;
    let rdlen = usize::from(read_u16(buf, pos + 8, "rdlength")?);
    pos += 10;
    let rdata_end = pos + rdlen;
    if buf.len() < rdata_end {
        return Err(ParseError::Truncated {
            layer: "dns-rdata",
            needed: rdata_end,
            available: buf.len(),
        });
    }
    let rdata = match rtype {
        RecordType::A => {
            if rdlen != 4 {
                return Err(ParseError::BadField {
                    layer: "dns",
                    field: "a_rdlength",
                    value: rdlen as u64,
                });
            }
            RData::A(Ipv4Addr::new(
                buf[pos],
                buf[pos + 1],
                buf[pos + 2],
                buf[pos + 3],
            ))
        }
        RecordType::Ns => RData::Ns(bounded_name(buf, pos, rdata_end)?.0),
        RecordType::Cname => RData::Cname(bounded_name(buf, pos, rdata_end)?.0),
        RecordType::Ptr => RData::Ptr(bounded_name(buf, pos, rdata_end)?.0),
        RecordType::Soa => {
            let (mname, p1) = bounded_name(buf, pos, rdata_end)?;
            let (rname, p2) = bounded_name(buf, p1, rdata_end)?;
            RData::Soa {
                mname,
                rname,
                serial: read_u32(buf, p2, "soa_serial")?,
                refresh: read_u32(buf, p2 + 4, "soa_refresh")?,
                retry: read_u32(buf, p2 + 8, "soa_retry")?,
                expire: read_u32(buf, p2 + 12, "soa_expire")?,
                minimum: read_u32(buf, p2 + 16, "soa_minimum")?,
            }
        }
        RecordType::Hinfo => {
            // Character strings must not run past this record's rdata.
            let read_str = |p: usize| -> Result<(String, usize), ParseError> {
                let len = usize::from(*buf.get(p).ok_or(ParseError::Truncated {
                    layer: "dns-hinfo",
                    needed: p + 1,
                    available: buf.len(),
                })?);
                if p + 1 + len > rdata_end {
                    return Err(ParseError::BadField {
                        layer: "dns",
                        field: "hinfo_rdlength",
                        value: len as u64,
                    });
                }
                let bytes = buf.get(p + 1..p + 1 + len).ok_or(ParseError::Truncated {
                    layer: "dns-hinfo",
                    needed: p + 1 + len,
                    available: buf.len(),
                })?;
                Ok((String::from_utf8_lossy(bytes).into_owned(), p + 1 + len))
            };
            let (cpu, p1) = read_str(pos)?;
            let (os, _) = read_str(p1)?;
            RData::Hinfo { cpu, os }
        }
        _ => RData::Raw(buf[pos..rdata_end].to_vec()),
    };
    Ok((
        DnsRecord {
            name,
            rtype,
            ttl,
            rdata,
        },
        rdata_end,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DnsName {
        s.parse().unwrap()
    }

    #[test]
    fn name_parse_display() {
        assert_eq!(
            name("Bruno.CS.Colorado.EDU").to_string(),
            "bruno.cs.colorado.edu"
        );
        assert_eq!(name("a.b.c.").to_string(), "a.b.c");
        assert_eq!(name("").to_string(), ".");
        assert!(DnsName::root().is_root());
    }

    #[test]
    fn name_rejects_bad_labels() {
        assert!("a..b".parse::<DnsName>().is_err());
        let long = "x".repeat(64);
        assert!(long.parse::<DnsName>().is_err());
        let huge = vec!["abcdefgh"; 40].join(".");
        assert!(huge.parse::<DnsName>().is_err());
    }

    #[test]
    fn name_hierarchy_ops() {
        let n = name("ns.cs.colorado.edu");
        assert!(n.ends_with(&name("colorado.edu")));
        assert!(n.ends_with(&n));
        assert!(!n.ends_with(&name("berkeley.edu")));
        assert!(n.ends_with(&DnsName::root()));
        assert_eq!(n.parent(), name("cs.colorado.edu"));
        assert_eq!(n.leaf(), Some("ns"));
        assert_eq!(
            name("cs.colorado.edu").child("boulder").unwrap(),
            name("boulder.cs.colorado.edu")
        );
    }

    #[test]
    fn reverse_names() {
        let addr = Ipv4Addr::new(128, 138, 238, 18);
        let r = DnsName::reverse_for(addr);
        assert_eq!(r.to_string(), "18.238.138.128.in-addr.arpa");
        assert_eq!(r.reverse_to_addr(), Some(addr));
        assert_eq!(name("238.138.128.in-addr.arpa").reverse_to_addr(), None);
        assert_eq!(name("a.b.c.d.in-addr.arpa").reverse_to_addr(), None);
    }

    #[test]
    fn reverse_zone_tracks_prefix_len() {
        let net = Ipv4Addr::new(128, 138, 0, 0);
        assert_eq!(
            DnsName::reverse_zone_for(net, 8).to_string(),
            "128.in-addr.arpa"
        );
        assert_eq!(
            DnsName::reverse_zone_for(net, 16).to_string(),
            "138.128.in-addr.arpa"
        );
        assert_eq!(
            DnsName::reverse_zone_for(Ipv4Addr::new(128, 138, 238, 0), 24).to_string(),
            "238.138.128.in-addr.arpa"
        );
        assert_eq!(
            DnsName::reverse_zone_for(Ipv4Addr::new(10, 0, 0, 0), 0).to_string(),
            "10.in-addr.arpa"
        );
    }

    #[test]
    fn name_wire_roundtrip() {
        let n = name("ftp.cs.colorado.edu");
        let mut buf = Vec::new();
        n.encode_into(&mut buf);
        let (back, end) = DnsName::decode_from(&buf, 0).unwrap();
        assert_eq!(back, n);
        assert_eq!(end, buf.len());
    }

    #[test]
    fn name_decode_with_compression_pointer() {
        // Build: at 0 "colorado.edu"; at 14 "cs" + pointer to 0.
        let mut buf = Vec::new();
        name("colorado.edu").encode_into(&mut buf);
        let tail_at = buf.len();
        buf.push(2);
        buf.extend_from_slice(b"cs");
        buf.push(0xc0);
        buf.push(0);
        let (n, end) = DnsName::decode_from(&buf, tail_at).unwrap();
        assert_eq!(n, name("cs.colorado.edu"));
        assert_eq!(end, buf.len());
    }

    #[test]
    fn name_decode_rejects_pointer_loop() {
        // Pointer at offset 2 pointing to 0, which points to... itself via 2.
        let buf = vec![0xc0, 0x02, 0xc0, 0x00];
        assert!(DnsName::decode_from(&buf, 0).is_err());
        // Forward pointers are also rejected (must point backwards).
        let buf = vec![0xc0, 0x02, 0x00];
        assert!(DnsName::decode_from(&buf, 0).is_err());
    }

    #[test]
    fn message_query_roundtrip() {
        let q = DnsMessage::query(0x77aa, name("238.138.128.in-addr.arpa"), RecordType::Axfr);
        let back = DnsMessage::decode(&q.encode()).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn message_response_with_records_roundtrip() {
        let q = DnsMessage::query(7, name("bruno.cs.colorado.edu"), RecordType::A);
        let mut r = DnsMessage::response_to(&q, Rcode::NoError);
        r.answers.push(DnsRecord::a(
            name("bruno.cs.colorado.edu"),
            Ipv4Addr::new(128, 138, 243, 18),
            86400,
        ));
        r.authorities.push(DnsRecord {
            name: name("cs.colorado.edu"),
            rtype: RecordType::Ns,
            ttl: 86400,
            rdata: RData::Ns(name("ns.cs.colorado.edu")),
        });
        r.additionals.push(DnsRecord {
            name: name("bruno.cs.colorado.edu"),
            rtype: RecordType::Hinfo,
            ttl: 3600,
            rdata: RData::Hinfo {
                cpu: "SUN-4/65".to_owned(),
                os: "UNIX".to_owned(),
            },
        });
        let back = DnsMessage::decode(&r.encode()).unwrap();
        assert_eq!(back, r);
        assert!(back.is_response);
        assert!(back.authoritative);
    }

    #[test]
    fn soa_roundtrip() {
        let rr = DnsRecord {
            name: name("cs.colorado.edu"),
            rtype: RecordType::Soa,
            ttl: 86400,
            rdata: RData::Soa {
                mname: name("ns.cs.colorado.edu"),
                rname: name("hostmaster.cs.colorado.edu"),
                serial: 19930201,
                refresh: 3600,
                retry: 600,
                expire: 3600000,
                minimum: 86400,
            },
        };
        let q = DnsMessage::query(1, name("cs.colorado.edu"), RecordType::Soa);
        let mut r = DnsMessage::response_to(&q, Rcode::NoError);
        r.answers.push(rr.clone());
        let back = DnsMessage::decode(&r.encode()).unwrap();
        assert_eq!(back.answers[0], rr);
    }

    #[test]
    fn ptr_roundtrip() {
        let q = DnsMessage::query(2, name("18.243.138.128.in-addr.arpa"), RecordType::Ptr);
        let mut r = DnsMessage::response_to(&q, Rcode::NoError);
        r.answers.push(DnsRecord::ptr(
            name("18.243.138.128.in-addr.arpa"),
            name("bruno.cs.colorado.edu"),
            86400,
        ));
        let back = DnsMessage::decode(&r.encode()).unwrap();
        match &back.answers[0].rdata {
            RData::Ptr(p) => assert_eq!(*p, name("bruno.cs.colorado.edu")),
            other => panic!("wrong rdata: {other:?}"),
        }
    }

    #[test]
    fn nxdomain_rcode_roundtrip() {
        let q = DnsMessage::query(3, name("nosuch.cs.colorado.edu"), RecordType::A);
        let r = DnsMessage::response_to(&q, Rcode::NxDomain);
        let back = DnsMessage::decode(&r.encode()).unwrap();
        assert_eq!(back.rcode, Rcode::NxDomain);
    }

    #[test]
    fn raw_record_passthrough() {
        let q = DnsMessage::query(4, name("x.y"), RecordType::Wks);
        let mut r = DnsMessage::response_to(&q, Rcode::NoError);
        r.answers.push(DnsRecord {
            name: name("x.y"),
            rtype: RecordType::Wks,
            ttl: 1,
            rdata: RData::Raw(vec![1, 2, 3, 4, 5, 6]),
        });
        let back = DnsMessage::decode(&r.encode()).unwrap();
        assert_eq!(back.answers[0].rdata, RData::Raw(vec![1, 2, 3, 4, 5, 6]));
    }

    #[test]
    fn record_rdata_cannot_bleed_into_next_record() {
        // An HINFO record whose rdlength covers only the first string must
        // not absorb the following record's bytes as its `os` field.
        let q = DnsMessage::query(6, name("x.y"), RecordType::Hinfo);
        let mut r = DnsMessage::response_to(&q, Rcode::NoError);
        r.answers.push(DnsRecord {
            name: name("x.y"),
            rtype: RecordType::Hinfo,
            ttl: 1,
            rdata: RData::Hinfo {
                cpu: "X".to_owned(),
                os: "Y".to_owned(),
            },
        });
        r.answers
            .push(DnsRecord::a(name("z.y"), Ipv4Addr::new(1, 2, 3, 4), 60));
        let mut enc = r.encode();
        // Locate the HINFO rdata bytes [1,'X',1,'Y']; the rdlength is the
        // two bytes just before them. Shrink it from 4 to 2 (covering only
        // `cpu`) and delete the two `os` bytes to keep the message framed.
        let rdata = [1u8, b'X', 1, b'Y'];
        let at = enc
            .windows(4)
            .position(|w| w == rdata)
            .expect("hinfo rdata present");
        let rdlen_at = at - 2;
        assert_eq!(u16::from_be_bytes([enc[rdlen_at], enc[rdlen_at + 1]]), 4);
        enc[rdlen_at..rdlen_at + 2].copy_from_slice(&2u16.to_be_bytes());
        enc.drain(at + 2..at + 4); // drop the os string
        assert!(
            DnsMessage::decode(&enc).is_err(),
            "overflowing rdata must be rejected, not bled into the next record"
        );
    }

    #[test]
    fn decode_rejects_short_header() {
        assert!(DnsMessage::decode(&[0; 11]).is_err());
    }

    #[test]
    fn decode_rejects_truncated_rdata() {
        let q = DnsMessage::query(5, name("a.b"), RecordType::A);
        let mut r = DnsMessage::response_to(&q, Rcode::NoError);
        r.answers
            .push(DnsRecord::a(name("a.b"), Ipv4Addr::new(1, 2, 3, 4), 60));
        let enc = r.encode();
        assert!(DnsMessage::decode(&enc[..enc.len() - 2]).is_err());
    }
}
