//! IPv4 address helpers.
//!
//! We reuse [`std::net::Ipv4Addr`] as the address type and provide the
//! classful-addressing helpers the 1993-era protocols need: Fremont predates
//! CIDR deployment, so the RIP and DNS Explorer Modules reason about class
//! A/B/C network numbers and their *natural* masks.

use std::net::Ipv4Addr;

/// The classful category of an IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrClass {
    /// `0.0.0.0/1` historic class A: 8-bit network number.
    A,
    /// `128.0.0.0/2` class B: 16-bit network number.
    B,
    /// `192.0.0.0/3` class C: 24-bit network number.
    C,
    /// `224.0.0.0/4` class D: multicast.
    D,
    /// `240.0.0.0/4` class E: reserved.
    E,
}

impl AddrClass {
    /// Returns the natural (classful) prefix length, or `None` for D/E.
    pub fn natural_prefix_len(self) -> Option<u8> {
        match self {
            AddrClass::A => Some(8),
            AddrClass::B => Some(16),
            AddrClass::C => Some(24),
            AddrClass::D | AddrClass::E => None,
        }
    }
}

/// Returns the classful category of `addr`.
///
/// # Examples
///
/// ```
/// use std::net::Ipv4Addr;
/// use fremont_net::ip::{addr_class, AddrClass};
///
/// assert_eq!(addr_class(Ipv4Addr::new(10, 0, 0, 1)), AddrClass::A);
/// assert_eq!(addr_class(Ipv4Addr::new(128, 138, 238, 18)), AddrClass::B);
/// assert_eq!(addr_class(Ipv4Addr::new(192, 52, 106, 1)), AddrClass::C);
/// ```
pub fn addr_class(addr: Ipv4Addr) -> AddrClass {
    let hi = addr.octets()[0];
    if hi & 0x80 == 0 {
        AddrClass::A
    } else if hi & 0xc0 == 0x80 {
        AddrClass::B
    } else if hi & 0xe0 == 0xc0 {
        AddrClass::C
    } else if hi & 0xf0 == 0xe0 {
        AddrClass::D
    } else {
        AddrClass::E
    }
}

/// Converts an address to its host-order 32-bit value.
pub fn to_u32(addr: Ipv4Addr) -> u32 {
    u32::from(addr)
}

/// Converts a host-order 32-bit value to an address.
pub fn from_u32(value: u32) -> Ipv4Addr {
    Ipv4Addr::from(value)
}

/// An inclusive range of IPv4 addresses, iterated in ascending order.
///
/// Used by the sweep-style Explorer Modules (Sequential Ping,
/// EtherHostProbe, Subnet Masks) that probe "a range of addresses".
///
/// # Examples
///
/// ```
/// use std::net::Ipv4Addr;
/// use fremont_net::ip::IpRange;
///
/// let range = IpRange::new(Ipv4Addr::new(10, 0, 0, 254), Ipv4Addr::new(10, 0, 1, 1));
/// let addrs: Vec<_> = range.iter().collect();
/// assert_eq!(addrs.len(), 4);
/// assert_eq!(addrs[1], Ipv4Addr::new(10, 0, 0, 255));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IpRange {
    first: u32,
    last: u32,
}

impl IpRange {
    /// Creates the inclusive range `[first, last]`.
    ///
    /// If `first > last` the range is empty.
    pub fn new(first: Ipv4Addr, last: Ipv4Addr) -> Self {
        IpRange {
            first: to_u32(first),
            last: to_u32(last),
        }
    }

    /// Creates a range containing a single address.
    pub fn single(addr: Ipv4Addr) -> Self {
        Self::new(addr, addr)
    }

    /// First address of the range.
    pub fn first(&self) -> Ipv4Addr {
        from_u32(self.first)
    }

    /// Last address of the range.
    pub fn last(&self) -> Ipv4Addr {
        from_u32(self.last)
    }

    /// Number of addresses in the range.
    pub fn len(&self) -> u64 {
        if self.first > self.last {
            0
        } else {
            u64::from(self.last) - u64::from(self.first) + 1
        }
    }

    /// Returns `true` when the range contains no addresses.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` when `addr` falls inside the range.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        let v = to_u32(addr);
        self.first <= v && v <= self.last
    }

    /// Iterates the addresses in ascending order.
    pub fn iter(&self) -> IpRangeIter {
        IpRangeIter {
            next: if self.first <= self.last {
                Some(self.first)
            } else {
                None
            },
            last: self.last,
        }
    }
}

impl IntoIterator for IpRange {
    type Item = Ipv4Addr;
    type IntoIter = IpRangeIter;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over an [`IpRange`].
#[derive(Debug, Clone)]
pub struct IpRangeIter {
    next: Option<u32>,
    last: u32,
}

impl Iterator for IpRangeIter {
    type Item = Ipv4Addr;

    fn next(&mut self) -> Option<Ipv4Addr> {
        let cur = self.next?;
        self.next = if cur < self.last { Some(cur + 1) } else { None };
        Some(from_u32(cur))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self.next {
            Some(next) => (u64::from(self.last) - u64::from(next) + 1) as usize,
            None => 0,
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for IpRangeIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes() {
        assert_eq!(addr_class(Ipv4Addr::new(1, 2, 3, 4)), AddrClass::A);
        assert_eq!(addr_class(Ipv4Addr::new(127, 0, 0, 1)), AddrClass::A);
        assert_eq!(addr_class(Ipv4Addr::new(128, 138, 0, 0)), AddrClass::B);
        assert_eq!(addr_class(Ipv4Addr::new(191, 255, 0, 0)), AddrClass::B);
        assert_eq!(addr_class(Ipv4Addr::new(192, 0, 0, 1)), AddrClass::C);
        assert_eq!(addr_class(Ipv4Addr::new(223, 1, 1, 1)), AddrClass::C);
        assert_eq!(addr_class(Ipv4Addr::new(224, 0, 0, 1)), AddrClass::D);
        assert_eq!(addr_class(Ipv4Addr::new(255, 255, 255, 255)), AddrClass::E);
    }

    #[test]
    fn natural_prefixes() {
        assert_eq!(AddrClass::A.natural_prefix_len(), Some(8));
        assert_eq!(AddrClass::B.natural_prefix_len(), Some(16));
        assert_eq!(AddrClass::C.natural_prefix_len(), Some(24));
        assert_eq!(AddrClass::D.natural_prefix_len(), None);
    }

    #[test]
    fn range_iteration_crosses_octet_boundary() {
        let r = IpRange::new(Ipv4Addr::new(10, 0, 0, 254), Ipv4Addr::new(10, 0, 1, 2));
        let v: Vec<_> = r.iter().collect();
        assert_eq!(
            v,
            vec![
                Ipv4Addr::new(10, 0, 0, 254),
                Ipv4Addr::new(10, 0, 0, 255),
                Ipv4Addr::new(10, 0, 1, 0),
                Ipv4Addr::new(10, 0, 1, 1),
                Ipv4Addr::new(10, 0, 1, 2),
            ]
        );
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn empty_range() {
        let r = IpRange::new(Ipv4Addr::new(10, 0, 0, 2), Ipv4Addr::new(10, 0, 0, 1));
        assert!(r.is_empty());
        assert_eq!(r.iter().count(), 0);
        assert!(!r.contains(Ipv4Addr::new(10, 0, 0, 1)));
    }

    #[test]
    fn single_range() {
        let r = IpRange::single(Ipv4Addr::new(1, 1, 1, 1));
        assert_eq!(r.len(), 1);
        assert!(r.contains(Ipv4Addr::new(1, 1, 1, 1)));
        assert!(!r.contains(Ipv4Addr::new(1, 1, 1, 2)));
    }

    #[test]
    fn full_range_len_does_not_overflow() {
        let r = IpRange::new(Ipv4Addr::new(0, 0, 0, 0), Ipv4Addr::new(255, 255, 255, 255));
        assert_eq!(r.len(), 1u64 << 32);
    }

    #[test]
    fn size_hint_is_exact() {
        let r = IpRange::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 10));
        let mut it = r.iter();
        assert_eq!(it.size_hint(), (10, Some(10)));
        it.next();
        assert_eq!(it.size_hint(), (9, Some(9)));
    }
}
