//! Error types for packet parsing and address handling.

use core::fmt;

/// Errors produced while decoding a packet from raw bytes.
///
/// Decoders never panic on malformed input; every structural problem in a
/// received byte buffer maps to one of these variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer ended before the fixed header was complete.
    Truncated {
        /// Protocol layer that was being decoded (e.g. `"ipv4"`).
        layer: &'static str,
        /// Number of bytes required for the next structure.
        needed: usize,
        /// Number of bytes actually available.
        available: usize,
    },
    /// A version field did not match the expected protocol version.
    BadVersion {
        /// Protocol layer that was being decoded.
        layer: &'static str,
        /// The version value found in the packet.
        found: u8,
    },
    /// A checksum did not verify.
    BadChecksum {
        /// Protocol layer whose checksum failed.
        layer: &'static str,
        /// Checksum value carried in the packet.
        expected: u16,
        /// Checksum value computed over the received bytes.
        computed: u16,
    },
    /// A field carried a value that the decoder cannot represent.
    BadField {
        /// Protocol layer that was being decoded.
        layer: &'static str,
        /// Name of the offending field.
        field: &'static str,
        /// The raw value found.
        value: u64,
    },
    /// A DNS name was malformed (label too long, loop, overrun...).
    BadName {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated {
                layer,
                needed,
                available,
            } => write!(
                f,
                "{layer}: truncated packet (needed {needed} bytes, have {available})"
            ),
            ParseError::BadVersion { layer, found } => {
                write!(f, "{layer}: unsupported version {found}")
            }
            ParseError::BadChecksum {
                layer,
                expected,
                computed,
            } => write!(
                f,
                "{layer}: bad checksum (packet carries {expected:#06x}, computed {computed:#06x})"
            ),
            ParseError::BadField {
                layer,
                field,
                value,
            } => write!(f, "{layer}: field `{field}` has invalid value {value}"),
            ParseError::BadName { reason } => write!(f, "dns: malformed name ({reason})"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Errors produced while constructing or manipulating addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddrError {
    /// Textual address did not parse.
    BadSyntax(String),
    /// A subnet mask had non-contiguous one bits.
    NonContiguousMask(u32),
    /// A prefix length was out of the 0..=32 range.
    BadPrefixLen(u8),
    /// A network address had host bits set for the given mask.
    HostBitsSet {
        /// The offending address, as a dotted quad string.
        addr: String,
        /// The prefix length of the mask it was checked against.
        prefix_len: u8,
    },
}

impl fmt::Display for AddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrError::BadSyntax(s) => write!(f, "bad address syntax: {s:?}"),
            AddrError::NonContiguousMask(m) => {
                write!(f, "subnet mask {m:#010x} has non-contiguous one bits")
            }
            AddrError::BadPrefixLen(p) => write!(f, "prefix length {p} out of range 0..=32"),
            AddrError::HostBitsSet { addr, prefix_len } => {
                write!(f, "address {addr} has host bits set for /{prefix_len}")
            }
        }
    }
}

impl std::error::Error for AddrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_truncated() {
        let e = ParseError::Truncated {
            layer: "arp",
            needed: 28,
            available: 10,
        };
        assert_eq!(
            e.to_string(),
            "arp: truncated packet (needed 28 bytes, have 10)"
        );
    }

    #[test]
    fn display_bad_checksum_hex() {
        let e = ParseError::BadChecksum {
            layer: "icmp",
            expected: 0xbeef,
            computed: 0x0001,
        };
        assert!(e.to_string().contains("0xbeef"));
        assert!(e.to_string().contains("0x0001"));
    }

    #[test]
    fn errors_are_std_error() {
        fn takes_err<E: std::error::Error>(_e: E) {}
        takes_err(ParseError::BadName { reason: "loop" });
        takes_err(AddrError::BadPrefixLen(33));
    }
}
