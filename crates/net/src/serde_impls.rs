//! Serde support for the address types (feature `serde`).
//!
//! All types serialize as their canonical display strings, so JSON
//! snapshots are human-readable and deserialization re-validates every
//! invariant (mask contiguity, network alignment) through the normal
//! parsers.

use core::str::FromStr;

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::dns::DnsName;
use crate::mac::MacAddr;
use crate::subnet::{Subnet, SubnetMask};

macro_rules! string_serde {
    ($ty:ty) => {
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.collect_str(self)
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let s = String::deserialize(deserializer)?;
                <$ty>::from_str(&s).map_err(|e| D::Error::custom(e.to_string()))
            }
        }
    };
}

string_serde!(MacAddr);
string_serde!(SubnetMask);
string_serde!(Subnet);
string_serde!(DnsName);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_json_roundtrip() {
        let m: MacAddr = "08:00:20:01:02:03".parse().unwrap();
        let json = serde_json::to_string(&m).unwrap();
        assert_eq!(json, "\"08:00:20:01:02:03\"");
        assert_eq!(serde_json::from_str::<MacAddr>(&json).unwrap(), m);
    }

    #[test]
    fn subnet_json_roundtrip() {
        let s: Subnet = "128.138.238.0/24".parse().unwrap();
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, "\"128.138.238.0/24\"");
        assert_eq!(serde_json::from_str::<Subnet>(&json).unwrap(), s);
    }

    #[test]
    fn mask_json_validates() {
        assert!(serde_json::from_str::<SubnetMask>("\"255.0.255.0\"").is_err());
        let m: SubnetMask = serde_json::from_str("\"255.255.240.0\"").unwrap();
        assert_eq!(m.prefix_len(), 20);
    }

    #[test]
    fn name_json_roundtrip() {
        let n: DnsName = "cs.colorado.edu".parse().unwrap();
        let json = serde_json::to_string(&n).unwrap();
        assert_eq!(serde_json::from_str::<DnsName>(&json).unwrap(), n);
    }
}
