//! IPv4 packet encoding and decoding (RFC 791).
//!
//! The simulated routers forward these packets, decrement the TTL, and
//! generate ICMP errors exactly as the paper's campus routers did — the
//! Time-To-Live mechanics are what Fremont's Traceroute Explorer Module
//! exploits to map topology.

use bytes::Bytes;
use std::net::Ipv4Addr;

use crate::checksum::{internet_checksum, verify};
use crate::error::ParseError;

/// Length of an IPv4 header without options.
pub const HEADER_LEN: usize = 20;

/// Default Time-To-Live used by well-behaved hosts.
pub const DEFAULT_TTL: u8 = 64;

/// IP protocol numbers used by Fremont's explorer traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6). The simulator uses it for DNS zone transfers.
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl IpProtocol {
    /// The 8-bit wire value.
    pub fn value(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => v,
        }
    }

    /// Builds from an 8-bit wire value.
    pub fn from_value(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

/// An IPv4 packet (header without options, plus payload).
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use std::net::Ipv4Addr;
/// use fremont_net::{IpProtocol, Ipv4Packet};
///
/// let pkt = Ipv4Packet::new(
///     Ipv4Addr::new(10, 0, 0, 1),
///     Ipv4Addr::new(10, 0, 1, 1),
///     IpProtocol::Udp,
///     Bytes::from_static(b"hello"),
/// );
/// let bytes = pkt.encode();
/// let back = Ipv4Packet::decode(&bytes).unwrap();
/// assert_eq!(back.dst, pkt.dst);
/// assert_eq!(&back.payload[..], b"hello");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet {
    /// Type-of-service byte (0 for all Fremont traffic).
    pub tos: u8,
    /// Identification field (used to correlate traceroute probes).
    pub identification: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub protocol: IpProtocol,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload bytes.
    pub payload: Bytes,
}

impl Ipv4Packet {
    /// Creates a packet with the default TTL and zero id/tos.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, payload: Bytes) -> Self {
        Ipv4Packet {
            tos: 0,
            identification: 0,
            ttl: DEFAULT_TTL,
            protocol,
            src,
            dst,
            payload,
        }
    }

    /// Sets the TTL (builder style).
    pub fn with_ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the identification field (builder style).
    pub fn with_id(mut self, id: u16) -> Self {
        self.identification = id;
        self
    }

    /// Encodes header + payload, computing the header checksum.
    ///
    /// # Panics
    ///
    /// Panics if header + payload exceeds the 65,535-byte IPv4 total-length
    /// limit — silently wrapping the length field would corrupt the packet.
    pub fn encode(&self) -> Vec<u8> {
        let total_len = HEADER_LEN + self.payload.len();
        assert!(
            total_len <= u16::MAX as usize,
            "IPv4 packet of {total_len} bytes exceeds the 65535-byte limit"
        );
        let mut out = Vec::with_capacity(total_len);
        out.push(0x45); // version 4, IHL 5
        out.push(self.tos);
        out.extend_from_slice(&(total_len as u16).to_be_bytes());
        out.extend_from_slice(&self.identification.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // flags + fragment offset: never fragment
        out.push(self.ttl);
        out.push(self.protocol.value());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        let ck = internet_checksum(&out[..HEADER_LEN]);
        out[10..12].copy_from_slice(&ck.to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes a packet, verifying version, header length, header checksum,
    /// and total length.
    ///
    /// Trailing bytes beyond the header's total-length field (Ethernet
    /// padding) are discarded, as a real IP input routine does.
    pub fn decode(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < HEADER_LEN {
            return Err(ParseError::Truncated {
                layer: "ipv4",
                needed: HEADER_LEN,
                available: buf.len(),
            });
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(ParseError::BadVersion {
                layer: "ipv4",
                found: version,
            });
        }
        let ihl = usize::from(buf[0] & 0x0f) * 4;
        if ihl < HEADER_LEN {
            return Err(ParseError::BadField {
                layer: "ipv4",
                field: "ihl",
                value: ihl as u64,
            });
        }
        if buf.len() < ihl {
            return Err(ParseError::Truncated {
                layer: "ipv4",
                needed: ihl,
                available: buf.len(),
            });
        }
        if !verify(&buf[..ihl]) {
            let carried = u16::from_be_bytes([buf[10], buf[11]]);
            let mut scratch = buf[..ihl].to_vec();
            scratch[10] = 0;
            scratch[11] = 0;
            return Err(ParseError::BadChecksum {
                layer: "ipv4",
                expected: carried,
                computed: internet_checksum(&scratch),
            });
        }
        let total_len = usize::from(u16::from_be_bytes([buf[2], buf[3]]));
        if total_len < ihl || total_len > buf.len() {
            return Err(ParseError::BadField {
                layer: "ipv4",
                field: "total_length",
                value: total_len as u64,
            });
        }
        Ok(Ipv4Packet {
            tos: buf[1],
            identification: u16::from_be_bytes([buf[4], buf[5]]),
            ttl: buf[8],
            protocol: IpProtocol::from_value(buf[9]),
            src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
            dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
            payload: Bytes::copy_from_slice(&buf[ihl..total_len]),
        })
    }

    /// Returns the encoded header plus the first eight payload bytes — the
    /// portion of an offending datagram that ICMP error messages embed, and
    /// that traceroute implementations match probes against.
    pub fn error_snippet(&self) -> Vec<u8> {
        let encoded = self.encode();
        let keep = encoded.len().min(HEADER_LEN + 8);
        encoded[..keep].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Packet {
        Ipv4Packet::new(
            Ipv4Addr::new(128, 138, 243, 10),
            Ipv4Addr::new(128, 138, 238, 1),
            IpProtocol::Udp,
            Bytes::from_static(b"0123456789abcdef"),
        )
        .with_ttl(3)
        .with_id(0x4242)
    }

    #[test]
    fn roundtrip() {
        let pkt = sample();
        let back = Ipv4Packet::decode(&pkt.encode()).unwrap();
        assert_eq!(back, pkt);
    }

    #[test]
    fn decode_strips_ethernet_padding() {
        let pkt = Ipv4Packet::new(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            IpProtocol::Icmp,
            Bytes::from_static(b"hi"),
        );
        let mut bytes = pkt.encode();
        bytes.resize(46, 0xcc); // Simulate minimum-frame padding.
        let back = Ipv4Packet::decode(&bytes).unwrap();
        assert_eq!(&back.payload[..], b"hi");
    }

    #[test]
    fn decode_detects_corrupted_header() {
        let mut bytes = sample().encode();
        bytes[8] = bytes[8].wrapping_add(1); // Flip TTL without fixing checksum.
        assert!(matches!(
            Ipv4Packet::decode(&bytes),
            Err(ParseError::BadChecksum { layer: "ipv4", .. })
        ));
    }

    #[test]
    fn decode_rejects_wrong_version() {
        let mut bytes = sample().encode();
        bytes[0] = 0x65;
        assert!(matches!(
            Ipv4Packet::decode(&bytes),
            Err(ParseError::BadVersion { found: 6, .. })
        ));
    }

    #[test]
    fn decode_rejects_short_buffer() {
        assert!(Ipv4Packet::decode(&[0x45; 10]).is_err());
    }

    #[test]
    fn decode_rejects_lying_total_length() {
        let mut bytes = sample().encode();
        // Claim more bytes than present; fix checksum so only length trips.
        let bogus = (bytes.len() + 100) as u16;
        bytes[2..4].copy_from_slice(&bogus.to_be_bytes());
        bytes[10] = 0;
        bytes[11] = 0;
        let ck = internet_checksum(&bytes[..HEADER_LEN]);
        bytes[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(
            Ipv4Packet::decode(&bytes),
            Err(ParseError::BadField {
                field: "total_length",
                ..
            })
        ));
    }

    #[test]
    fn error_snippet_is_header_plus_8() {
        let pkt = sample();
        let snip = pkt.error_snippet();
        assert_eq!(snip.len(), HEADER_LEN + 8);
        assert_eq!(&snip[HEADER_LEN..], b"01234567");
    }

    #[test]
    fn error_snippet_short_payload() {
        let pkt = Ipv4Packet::new(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            IpProtocol::Udp,
            Bytes::from_static(b"abc"),
        );
        assert_eq!(pkt.error_snippet().len(), HEADER_LEN + 3);
    }

    #[test]
    fn protocol_values() {
        assert_eq!(IpProtocol::Icmp.value(), 1);
        assert_eq!(IpProtocol::Udp.value(), 17);
        assert_eq!(IpProtocol::from_value(6), IpProtocol::Tcp);
        assert_eq!(IpProtocol::from_value(89), IpProtocol::Other(89));
    }
}
