//! UDP datagrams (RFC 768).
//!
//! Fremont's EtherHostProbe sends UDP packets to the Echo port to provoke
//! ARP resolution; the Traceroute module sends UDP probes to high,
//! improbable ports so the destination answers with ICMP Port Unreachable;
//! RIP and DNS ride UDP as well.

use bytes::Bytes;

use crate::error::ParseError;

/// Length of the UDP header.
pub const HEADER_LEN: usize = 8;

/// The UDP Echo service port (RFC 862).
pub const ECHO_PORT: u16 = 7;

/// The Domain Name System port.
pub const DNS_PORT: u16 = 53;

/// The RIP routing service port (RFC 1058).
pub const RIP_PORT: u16 = 520;

/// The base of the traditional traceroute destination port range.
///
/// Van Jacobson's traceroute starts at 33434, chosen to be "unlikely to be
/// used" so the destination host answers with ICMP Port Unreachable.
pub const TRACEROUTE_BASE_PORT: u16 = 33434;

/// A UDP datagram.
///
/// The checksum is optional in IPv4 UDP; we encode zero (no checksum), as
/// SunOS-era stacks commonly did, and therefore do not validate it on
/// decode. Length is validated.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use fremont_net::UdpDatagram;
///
/// let d = UdpDatagram::new(1042, 7, Bytes::from_static(b"probe"));
/// let back = UdpDatagram::decode(&d.encode()).unwrap();
/// assert_eq!(back.dst_port, 7);
/// assert_eq!(&back.payload[..], b"probe");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes.
    pub payload: Bytes,
}

impl UdpDatagram {
    /// Creates a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload: Bytes) -> Self {
        UdpDatagram {
            src_port,
            dst_port,
            payload,
        }
    }

    /// Encodes header + payload (checksum field zero = unchecksummed).
    ///
    /// # Panics
    ///
    /// Panics if header + payload exceeds the 65,535-byte UDP length limit.
    pub fn encode(&self) -> Vec<u8> {
        let len = HEADER_LEN + self.payload.len();
        assert!(
            len <= u16::MAX as usize,
            "UDP datagram of {len} bytes exceeds the 65535-byte limit"
        );
        let mut out = Vec::with_capacity(len);
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&(len as u16).to_be_bytes());
        out.extend_from_slice(&[0, 0]);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes a datagram, validating the length field.
    ///
    /// Trailing bytes beyond the UDP length (e.g. link padding that survived
    /// an IP layer without strict total-length handling) are discarded.
    pub fn decode(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < HEADER_LEN {
            return Err(ParseError::Truncated {
                layer: "udp",
                needed: HEADER_LEN,
                available: buf.len(),
            });
        }
        let len = usize::from(u16::from_be_bytes([buf[4], buf[5]]));
        if len < HEADER_LEN || len > buf.len() {
            return Err(ParseError::BadField {
                layer: "udp",
                field: "length",
                value: len as u64,
            });
        }
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            payload: Bytes::copy_from_slice(&buf[HEADER_LEN..len]),
        })
    }

    /// Builds the Echo-service reply to this datagram (ports swapped,
    /// payload preserved).
    pub fn echo_reply(&self) -> UdpDatagram {
        UdpDatagram {
            src_port: self.dst_port,
            dst_port: self.src_port,
            payload: self.payload.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let d = UdpDatagram::new(33000, TRACEROUTE_BASE_PORT, Bytes::from_static(&[1, 2, 3]));
        assert_eq!(UdpDatagram::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn empty_payload() {
        let d = UdpDatagram::new(1, 2, Bytes::new());
        let enc = d.encode();
        assert_eq!(enc.len(), HEADER_LEN);
        assert_eq!(UdpDatagram::decode(&enc).unwrap(), d);
    }

    #[test]
    fn decode_discards_trailing_padding() {
        let d = UdpDatagram::new(5, 6, Bytes::from_static(b"xy"));
        let mut enc = d.encode();
        enc.extend_from_slice(&[0u8; 30]);
        assert_eq!(UdpDatagram::decode(&enc).unwrap(), d);
    }

    #[test]
    fn decode_rejects_bad_length() {
        let d = UdpDatagram::new(5, 6, Bytes::from_static(b"xy"));
        let mut enc = d.encode();
        enc[4..6].copy_from_slice(&2u16.to_be_bytes()); // shorter than header
        assert!(matches!(
            UdpDatagram::decode(&enc),
            Err(ParseError::BadField {
                field: "length",
                ..
            })
        ));
        let mut enc2 = d.encode();
        enc2[4..6].copy_from_slice(&100u16.to_be_bytes()); // longer than buffer
        assert!(UdpDatagram::decode(&enc2).is_err());
    }

    #[test]
    fn decode_rejects_truncated() {
        assert!(UdpDatagram::decode(&[0; 7]).is_err());
    }

    #[test]
    fn echo_reply_swaps_ports() {
        let d = UdpDatagram::new(1042, ECHO_PORT, Bytes::from_static(b"hello"));
        let r = d.echo_reply();
        assert_eq!(r.src_port, ECHO_PORT);
        assert_eq!(r.dst_port, 1042);
        assert_eq!(r.payload, d.payload);
    }
}
