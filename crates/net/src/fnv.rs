//! FNV-1a 64-bit hashing.
//!
//! The model checker fingerprints canonicalized Journal snapshots and
//! simulator ground state to prune equivalent fault interleavings. The
//! fingerprints live inside committed counterexample fixtures and in
//! byte-stable telemetry dumps, so the hash must be stable across
//! platforms and Rust versions — which rules out `DefaultHasher`.
//! FNV-1a is tiny, has a fixed published specification, and is fast on
//! the short canonical byte strings we feed it.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// A hasher at the offset basis.
    pub fn new() -> Self {
        Fnv1a::default()
    }

    /// Absorbs `bytes` into the running hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` in big-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_be_bytes());
    }

    /// The current hash value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_vectors() {
        // Reference values from the FNV specification.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a_64(b"foobar"));
    }

    #[test]
    fn write_u64_is_big_endian() {
        let mut a = Fnv1a::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = Fnv1a::new();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(a.finish(), b.finish());
    }
}
