//! The Routing Information Protocol, version 1 (RFC 1058).
//!
//! Fremont's RIPwatch Explorer Module passively monitors RIPv1 broadcast
//! advertisements to learn "a list of hosts, subnets, and networks", and
//! flags *promiscuous* sources that rebroadcast everything they learned.
//! RIPv1 carries no subnet masks; the receiver classifies each advertised
//! address against its own interface mask — [`classify_route`] implements
//! that judgment exactly as the paper describes.

use std::net::Ipv4Addr;

use crate::error::ParseError;
use crate::subnet::{Subnet, SubnetMask};

/// "Infinity" metric: the route is unreachable.
pub const METRIC_INFINITY: u32 = 16;

/// Maximum number of entries in one RIP packet (RFC 1058).
pub const MAX_ENTRIES: usize = 25;

/// RIP command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RipCommand {
    /// Request for routes (1). An empty request with one default entry of
    /// metric 16 asks for the full table — the "RIP Poll" usage the paper
    /// lists as future work.
    Request,
    /// Response carrying routes (2): the periodic broadcast advertisement.
    Response,
}

impl RipCommand {
    fn value(self) -> u8 {
        match self {
            RipCommand::Request => 1,
            RipCommand::Response => 2,
        }
    }
}

/// One advertised route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RipEntry {
    /// Advertised destination (network, subnet, or host — RIPv1 does not
    /// say which; see [`classify_route`]).
    pub addr: Ipv4Addr,
    /// Hop-count metric, 16 = unreachable.
    pub metric: u32,
}

/// A RIPv1 packet.
///
/// # Examples
///
/// ```
/// use std::net::Ipv4Addr;
/// use fremont_net::{RipCommand, RipEntry, RipPacket};
///
/// let adv = RipPacket::response(vec![RipEntry {
///     addr: Ipv4Addr::new(128, 138, 238, 0),
///     metric: 2,
/// }]);
/// let back = RipPacket::decode(&adv.encode()).unwrap();
/// assert_eq!(back.entries.len(), 1);
/// assert_eq!(back.command, RipCommand::Response);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RipPacket {
    /// Command (request/response).
    pub command: RipCommand,
    /// Advertised routes (up to [`MAX_ENTRIES`]).
    pub entries: Vec<RipEntry>,
}

impl RipPacket {
    /// Builds a response (advertisement).
    pub fn response(entries: Vec<RipEntry>) -> Self {
        RipPacket {
            command: RipCommand::Response,
            entries,
        }
    }

    /// Builds the whole-table request ("RIP Poll"): a single entry with
    /// address family 0 and metric 16.
    pub fn poll_request() -> Self {
        RipPacket {
            command: RipCommand::Request,
            entries: vec![RipEntry {
                addr: Ipv4Addr::UNSPECIFIED,
                metric: METRIC_INFINITY,
            }],
        }
    }

    /// Encodes the packet to RIPv1 wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.entries.len() * 20);
        out.push(self.command.value());
        out.push(1); // version 1
        out.extend_from_slice(&[0, 0]); // must be zero
        for e in &self.entries {
            // Address family: 2 (IP), or 0 for the whole-table request.
            let af: u16 = if e.addr.is_unspecified() && e.metric == METRIC_INFINITY {
                0
            } else {
                2
            };
            out.extend_from_slice(&af.to_be_bytes());
            out.extend_from_slice(&[0, 0]); // must be zero
            out.extend_from_slice(&e.addr.octets());
            out.extend_from_slice(&[0u8; 8]); // must be zero (v1)
            out.extend_from_slice(&e.metric.to_be_bytes());
        }
        out
    }

    /// Decodes from wire form.
    pub fn decode(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < 4 {
            return Err(ParseError::Truncated {
                layer: "rip",
                needed: 4,
                available: buf.len(),
            });
        }
        let command = match buf[0] {
            1 => RipCommand::Request,
            2 => RipCommand::Response,
            other => {
                return Err(ParseError::BadField {
                    layer: "rip",
                    field: "command",
                    value: u64::from(other),
                })
            }
        };
        if buf[1] != 1 {
            return Err(ParseError::BadVersion {
                layer: "rip",
                found: buf[1],
            });
        }
        let body = &buf[4..];
        if !body.len().is_multiple_of(20) {
            return Err(ParseError::BadField {
                layer: "rip",
                field: "entry_block_len",
                value: body.len() as u64,
            });
        }
        let mut entries = Vec::with_capacity(body.len() / 20);
        for chunk in body.chunks_exact(20) {
            let af = u16::from_be_bytes([chunk[0], chunk[1]]);
            if af != 2 && af != 0 {
                return Err(ParseError::BadField {
                    layer: "rip",
                    field: "address_family",
                    value: u64::from(af),
                });
            }
            entries.push(RipEntry {
                addr: Ipv4Addr::new(chunk[4], chunk[5], chunk[6], chunk[7]),
                metric: u32::from_be_bytes([chunk[16], chunk[17], chunk[18], chunk[19]]),
            });
        }
        if entries.len() > MAX_ENTRIES {
            return Err(ParseError::BadField {
                layer: "rip",
                field: "entry_count",
                value: entries.len() as u64,
            });
        }
        Ok(RipPacket { command, entries })
    }
}

/// What a RIPv1 advertised address denotes, as judged by a receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteKind {
    /// A whole classful network (host part all zero, not in our network).
    Network(Subnet),
    /// A subnet of the receiver's own network (subnet bits set, host bits
    /// zero under the receiver's mask).
    SubnetRoute(Subnet),
    /// A single host (host bits set).
    Host(Ipv4Addr),
    /// The default route 0.0.0.0.
    Default,
}

/// Classifies an advertised RIPv1 address the way a receiving host does.
///
/// "No subnet mask information is contained in these packets, so routes to
/// networks, subnets, or hosts are determined by comparing the subnet mask
/// of the receiving host to the address being advertised."
///
/// `receiver_subnet` is the subnet of the interface the advertisement
/// arrived on; its mask is assumed for addresses inside the same classful
/// network.
pub fn classify_route(addr: Ipv4Addr, receiver_subnet: Subnet) -> RouteKind {
    if addr.is_unspecified() {
        return RouteKind::Default;
    }
    let natural = match Subnet::natural_network(addr) {
        Some(n) => n,
        // Class D/E: treat as host route; real RIP listeners ignored these.
        None => return RouteKind::Host(addr),
    };
    let receiver_natural = Subnet::natural_network(receiver_subnet.network());
    if Some(natural) == receiver_natural {
        // Inside our classful network: apply our subnet mask.
        let mask = receiver_subnet.mask();
        let sub = Subnet::containing(addr, mask);
        if sub.network() == addr {
            RouteKind::SubnetRoute(sub)
        } else {
            RouteKind::Host(addr)
        }
    } else {
        // Outside: only the natural mask is available.
        if natural.network() == addr {
            RouteKind::Network(natural)
        } else {
            RouteKind::Host(addr)
        }
    }
}

/// Splits a route list into maximally-filled RIP response packets.
pub fn split_into_packets(entries: &[RipEntry]) -> Vec<RipPacket> {
    entries
        .chunks(MAX_ENTRIES)
        .map(|c| RipPacket::response(c.to_vec()))
        .collect()
}

/// Returns the mask a receiver with `mask` assumes for `addr` (helper for
/// journal recording).
pub fn assumed_mask(
    addr: Ipv4Addr,
    receiver_mask: SubnetMask,
    receiver_subnet: Subnet,
) -> SubnetMask {
    match classify_route(addr, receiver_subnet) {
        RouteKind::SubnetRoute(_) => receiver_mask,
        RouteKind::Network(n) => n.mask(),
        _ => SubnetMask::from_prefix_len(32).expect("32 is valid"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subnet(s: &str) -> Subnet {
        s.parse().unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let pkt = RipPacket::response(vec![
            RipEntry {
                addr: Ipv4Addr::new(128, 138, 238, 0),
                metric: 1,
            },
            RipEntry {
                addr: Ipv4Addr::new(192, 52, 106, 0),
                metric: 5,
            },
        ]);
        let bytes = pkt.encode();
        assert_eq!(bytes.len(), 4 + 2 * 20);
        assert_eq!(RipPacket::decode(&bytes).unwrap(), pkt);
    }

    #[test]
    fn poll_request_roundtrip() {
        let pkt = RipPacket::poll_request();
        let back = RipPacket::decode(&pkt.encode()).unwrap();
        assert_eq!(back.command, RipCommand::Request);
        assert_eq!(back.entries[0].metric, METRIC_INFINITY);
        assert!(back.entries[0].addr.is_unspecified());
    }

    #[test]
    fn decode_rejects_version_2() {
        let mut bytes = RipPacket::response(vec![]).encode();
        bytes[1] = 2;
        assert!(matches!(
            RipPacket::decode(&bytes),
            Err(ParseError::BadVersion { found: 2, .. })
        ));
    }

    #[test]
    fn decode_rejects_ragged_entries() {
        let mut bytes = RipPacket::response(vec![RipEntry {
            addr: Ipv4Addr::new(10, 0, 0, 0),
            metric: 1,
        }])
        .encode();
        bytes.pop();
        assert!(RipPacket::decode(&bytes).is_err());
    }

    #[test]
    fn classify_subnet_route_inside_own_network() {
        // Receiver sits on 128.138.243.0/24; 128.138.238.0 is a sibling subnet.
        let recv = subnet("128.138.243.0/24");
        let kind = classify_route(Ipv4Addr::new(128, 138, 238, 0), recv);
        assert_eq!(kind, RouteKind::SubnetRoute(subnet("128.138.238.0/24")));
    }

    #[test]
    fn classify_host_route_inside_own_network() {
        let recv = subnet("128.138.243.0/24");
        let kind = classify_route(Ipv4Addr::new(128, 138, 238, 9), recv);
        assert_eq!(kind, RouteKind::Host(Ipv4Addr::new(128, 138, 238, 9)));
    }

    #[test]
    fn classify_external_network() {
        let recv = subnet("128.138.243.0/24");
        let kind = classify_route(Ipv4Addr::new(192, 52, 106, 0), recv);
        assert_eq!(kind, RouteKind::Network(subnet("192.52.106.0/24")));
        let kind = classify_route(Ipv4Addr::new(10, 0, 0, 0), recv);
        assert_eq!(kind, RouteKind::Network(subnet("10.0.0.0/8")));
    }

    #[test]
    fn classify_external_host() {
        let recv = subnet("128.138.243.0/24");
        let kind = classify_route(Ipv4Addr::new(192, 52, 106, 4), recv);
        assert_eq!(kind, RouteKind::Host(Ipv4Addr::new(192, 52, 106, 4)));
    }

    #[test]
    fn classify_default_route() {
        let recv = subnet("128.138.243.0/24");
        assert_eq!(
            classify_route(Ipv4Addr::UNSPECIFIED, recv),
            RouteKind::Default
        );
    }

    #[test]
    fn split_respects_max_entries() {
        let entries: Vec<RipEntry> = (0..60u32)
            .map(|i| RipEntry {
                addr: Ipv4Addr::new(10, (i >> 8) as u8, i as u8, 0),
                metric: 1,
            })
            .collect();
        let pkts = split_into_packets(&entries);
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[0].entries.len(), 25);
        assert_eq!(pkts[2].entries.len(), 10);
        // Each packet must decode.
        for p in &pkts {
            assert!(RipPacket::decode(&p.encode()).is_ok());
        }
    }

    #[test]
    fn class_helper_consistency() {
        // Guard against accidental misuse: a class B address's natural net.
        assert_eq!(
            crate::ip::addr_class(Ipv4Addr::new(128, 138, 0, 0)),
            crate::ip::AddrClass::B
        );
    }
}
