//! IEEE 802 MAC (Ethernet) addresses.
//!
//! Fremont records the Medium Access Control address of every discovered
//! interface, and uses the vendor prefix (OUI) to report the interface
//! manufacturer — the paper notes that the ARP modules' Ethernet addresses
//! "can be used in many cases to determine the manufacturer of the
//! discovered interface".

use core::fmt;
use core::str::FromStr;

use crate::error::AddrError;
use crate::oui;

/// A 48-bit IEEE 802 MAC address.
///
/// # Examples
///
/// ```
/// use fremont_net::MacAddr;
///
/// let mac: MacAddr = "08:00:20:1a:2b:3c".parse().unwrap();
/// assert_eq!(mac.octets()[0], 0x08);
/// assert!(!mac.is_broadcast());
/// assert_eq!(mac.vendor(), Some("Sun Microsystems"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MacAddr([u8; 6]);

impl MacAddr {
    /// The all-ones broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// The all-zero address, used as the "unknown target" in ARP requests.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Creates an address from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// Returns the six octets of the address.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// Returns `true` if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Returns `true` if the group (multicast) bit is set.
    ///
    /// Broadcast is a special case of multicast and also returns `true`.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Returns `true` if the locally-administered bit is set.
    pub fn is_locally_administered(&self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// Returns the 24-bit Organizationally Unique Identifier prefix.
    pub fn oui(&self) -> [u8; 3] {
        [self.0[0], self.0[1], self.0[2]]
    }

    /// Looks up the interface manufacturer from the OUI prefix.
    ///
    /// Returns `None` for locally administered addresses and unknown
    /// prefixes. The table covers the vendors common on early-1990s campus
    /// networks (Sun, DEC, Cisco, 3Com, ...), which is the population the
    /// paper's ARP modules reported on.
    pub fn vendor(&self) -> Option<&'static str> {
        if self.is_locally_administered() {
            return None;
        }
        oui::vendor_for(self.oui())
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MacAddr({self})")
    }
}

impl FromStr for MacAddr {
    type Err = AddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 6];
        let mut parts = s.split([':', '-']);
        for slot in octets.iter_mut() {
            let part = parts
                .next()
                .ok_or_else(|| AddrError::BadSyntax(s.to_owned()))?;
            if part.is_empty() || part.len() > 2 {
                return Err(AddrError::BadSyntax(s.to_owned()));
            }
            *slot = u8::from_str_radix(part, 16).map_err(|_| AddrError::BadSyntax(s.to_owned()))?;
        }
        if parts.next().is_some() {
            return Err(AddrError::BadSyntax(s.to_owned()));
        }
        Ok(MacAddr(octets))
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in [
            "00:00:0c:12:34:56",
            "ff:ff:ff:ff:ff:ff",
            "08:00:20:00:00:01",
        ] {
            let mac: MacAddr = s.parse().unwrap();
            assert_eq!(mac.to_string(), s);
        }
    }

    #[test]
    fn parse_dash_separated() {
        let mac: MacAddr = "08-00-2b-aa-bb-cc".parse().unwrap();
        assert_eq!(mac.to_string(), "08:00:2b:aa:bb:cc");
    }

    #[test]
    fn parse_rejects_bad_syntax() {
        for s in [
            "",
            "08:00:20",
            "08:00:20:00:00:01:02",
            "08:00:20:00:00:0g",
            "123:00:20:00:00:01",
            "::::::",
        ] {
            assert!(s.parse::<MacAddr>().is_err(), "{s:?} should not parse");
        }
    }

    #[test]
    fn broadcast_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::ZERO.is_broadcast());
        assert!(!MacAddr::ZERO.is_multicast());
    }

    #[test]
    fn multicast_bit() {
        let m = MacAddr::new([0x01, 0, 0x5e, 0, 0, 1]);
        assert!(m.is_multicast());
        assert!(!m.is_broadcast());
    }

    #[test]
    fn vendor_lookup() {
        let sun: MacAddr = "08:00:20:11:22:33".parse().unwrap();
        assert_eq!(sun.vendor(), Some("Sun Microsystems"));
        let cisco: MacAddr = "00:00:0c:11:22:33".parse().unwrap();
        assert_eq!(cisco.vendor(), Some("Cisco Systems"));
        let local: MacAddr = "0a:00:20:11:22:33".parse().unwrap();
        assert_eq!(local.vendor(), None);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a: MacAddr = "00:00:00:00:00:01".parse().unwrap();
        let b: MacAddr = "00:00:00:00:01:00".parse().unwrap();
        assert!(a < b);
    }
}
