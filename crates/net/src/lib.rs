//! # fremont-net
//!
//! Protocol substrate for the Fremont network-discovery reproduction:
//! addresses, subnets, and byte-exact wire codecs for every protocol the
//! paper's Explorer Modules use — Ethernet, ARP, IPv4, ICMP (echo, mask,
//! and error messages), UDP, RIPv1, and DNS.
//!
//! Design rules, per the paper's environment and the repo guides:
//!
//! * Decoders are total: any byte buffer produces `Ok` or a typed
//!   [`ParseError`] — never a panic (verified by property tests).
//! * Encoders produce canonical wire bytes, so a decoded-then-re-encoded
//!   packet is byte-identical (checksums included).
//! * All types are plain data, `Send + Sync`, with no interior mutability.
//!
//! # Examples
//!
//! ```
//! use bytes::Bytes;
//! use std::net::Ipv4Addr;
//! use fremont_net::{EtherType, EthernetFrame, IcmpMessage, IpProtocol, Ipv4Packet, MacAddr};
//!
//! // Build the ping an explorer module would send.
//! let echo = IcmpMessage::EchoRequest { ident: 1, seq: 1, payload: vec![0; 8] };
//! let ip = Ipv4Packet::new(
//!     Ipv4Addr::new(128, 138, 243, 10),
//!     Ipv4Addr::new(128, 138, 243, 1),
//!     IpProtocol::Icmp,
//!     Bytes::from(echo.encode()),
//! );
//! let frame = EthernetFrame::new(
//!     MacAddr::BROADCAST,
//!     "08:00:20:01:02:03".parse().unwrap(),
//!     EtherType::Ipv4,
//!     Bytes::from(ip.encode()),
//! );
//! let wire = frame.encode();
//! assert!(EthernetFrame::decode(&wire).is_ok());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arp;
pub mod checksum;
pub mod dns;
pub mod error;
pub mod ethernet;
pub mod fnv;
pub mod icmp;
pub mod ip;
pub mod ipv4;
pub mod mac;
pub mod oui;
pub mod rip;
#[cfg(feature = "serde")]
mod serde_impls;
pub mod subnet;
pub mod udp;

pub use arp::{ArpOp, ArpPacket};
pub use dns::{DnsMessage, DnsName, DnsQuestion, DnsRecord, RData, Rcode, RecordType};
pub use error::{AddrError, ParseError};
pub use ethernet::{EtherType, EthernetFrame};
pub use fnv::{fnv1a_64, Fnv1a};
pub use icmp::{IcmpMessage, UnreachableCode};
pub use ip::{AddrClass, IpRange};
pub use ipv4::{IpProtocol, Ipv4Packet};
pub use mac::MacAddr;
pub use rip::{RipCommand, RipEntry, RipPacket, RouteKind};
pub use subnet::{Subnet, SubnetMask};
pub use udp::UdpDatagram;
