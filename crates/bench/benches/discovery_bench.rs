//! Discovery-strategy benchmarks and ablations.
//!
//! The headline sweep reproduces the paper's qualitative claim that
//! broadcast ping beats sequential ping "if the address space is large but
//! there are not very many hosts on the individual subnets": we measure
//! *simulated* completion time of both modules across subnet sizes (the
//! crossover study), using real time per simulation step as the cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use fremont_explorers::{
    BrdcastPing, BrdcastPingConfig, SeqPing, SeqPingConfig, Traceroute, TracerouteConfig,
};
use fremont_net::Subnet;
use fremont_netsim::builder::TopologyBuilder;
use fremont_netsim::campus::{generate, CampusConfig};
use fremont_netsim::time::SimDuration;

/// Builds one sparse subnet of `hosts` hosts inside a wider prefix.
fn sparse_lan(hosts: usize, prefix_len: u8) -> (fremont_netsim::engine::Sim, Subnet) {
    let mut b = TopologyBuilder::new();
    let subnet_str = format!("10.40.0.0/{prefix_len}");
    let lan = b.segment("lan", &subnet_str);
    for i in 0..hosts {
        b.host(&format!("h{i}"), lan, 10 + i as u32);
    }
    let (sim, _) = b.build(9);
    (sim, subnet_str.parse().expect("subnet"))
}

/// The paper's crossover: sequential ping sweeps the whole address space
/// at 2 s/address; broadcast ping finishes in one window regardless.
fn bench_seq_vs_broadcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("seq_vs_broadcast_simtime");
    g.sample_size(10);
    for prefix in [26u8, 24, 22] {
        g.bench_with_input(BenchmarkId::new("seqping", prefix), &prefix, |b, &p| {
            b.iter(|| {
                let (mut sim, subnet) = sparse_lan(12, p);
                let h = sim.spawn(
                    sim.node_by_name("h0").expect("h0"),
                    Box::new(SeqPing::new(SeqPingConfig::over(subnet.host_range()))),
                );
                // Run to completion; report simulated seconds via black_box.
                while !sim.process_done(h) {
                    sim.run_for(SimDuration::from_mins(10));
                }
                black_box(sim.now().as_secs())
            })
        });
        g.bench_with_input(BenchmarkId::new("brdcastping", prefix), &prefix, |b, &p| {
            b.iter(|| {
                let (mut sim, subnet) = sparse_lan(12, p);
                let h = sim.spawn(
                    sim.node_by_name("h0").expect("h0"),
                    Box::new(BrdcastPing::new(BrdcastPingConfig::over(vec![subnet]))),
                );
                while !sim.process_done(h) {
                    sim.run_for(SimDuration::from_mins(1));
                }
                black_box(sim.now().as_secs())
            })
        });
    }
    g.finish();
}

/// Ablation: traceroute's packet budget. The paper throttles to 8 pkt/s;
/// the ablation measures how the budget trades completion time for load.
fn bench_traceroute_budget(c: &mut Criterion) {
    let mut g = c.benchmark_group("traceroute_budget");
    g.sample_size(10);
    for interval_ms in [1000u64, 125, 31] {
        g.bench_with_input(
            BenchmarkId::new("campus_small", interval_ms),
            &interval_ms,
            |b, &ms| {
                b.iter(|| {
                    let cfg = CampusConfig {
                        cs_traffic: false,
                        ..CampusConfig::small()
                    };
                    let (mut sim, truth) = generate(&cfg);
                    let home = sim.node_by_name("bruno").expect("bruno");
                    let mut tc = TracerouteConfig::over(truth.assigned_subnets.clone());
                    tc.boundary = Some(cfg.network);
                    tc.send_interval = SimDuration::from_millis(ms);
                    let h = sim.spawn(home, Box::new(Traceroute::new(tc)));
                    while !sim.process_done(h) {
                        sim.run_for(SimDuration::from_mins(5));
                    }
                    let done = sim
                        .process_mut::<Traceroute>(h)
                        .map(|p| (p.probes_sent(), p.reached_subnets().len()))
                        .unwrap_or((0, 0));
                    black_box((sim.now().as_secs(), done))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_seq_vs_broadcast, bench_traceroute_budget);
criterion_main!(benches);
