//! Criterion benchmarks for the protocol codecs: the per-packet cost that
//! bounds simulator throughput.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::net::Ipv4Addr;

use fremont_net::dns::{DnsMessage, DnsName, DnsRecord, RecordType};
use fremont_net::{
    ArpPacket, EtherType, EthernetFrame, IcmpMessage, IpProtocol, Ipv4Packet, MacAddr, RipEntry,
    RipPacket, UdpDatagram,
};

fn bench_codecs(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");

    let mac = MacAddr::new([8, 0, 0x20, 1, 2, 3]);
    let frame = EthernetFrame::new(
        MacAddr::BROADCAST,
        mac,
        EtherType::Ipv4,
        Bytes::from(vec![0u8; 512]),
    );
    let frame_bytes = frame.encode();
    g.bench_function("ethernet_roundtrip", |b| {
        b.iter(|| {
            let f = EthernetFrame::decode(black_box(&frame_bytes)).expect("valid");
            black_box(f.encode().len())
        })
    });

    let arp = ArpPacket::request(mac, Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
    let arp_bytes = arp.encode();
    g.bench_function("arp_roundtrip", |b| {
        b.iter(|| {
            let p = ArpPacket::decode(black_box(&arp_bytes)).expect("valid");
            black_box(p.encode().len())
        })
    });

    let icmp = IcmpMessage::EchoRequest {
        ident: 7,
        seq: 9,
        payload: vec![0u8; 56],
    };
    let ip = Ipv4Packet::new(
        Ipv4Addr::new(128, 138, 243, 10),
        Ipv4Addr::new(128, 138, 238, 1),
        IpProtocol::Icmp,
        Bytes::from(icmp.encode()),
    );
    let ip_bytes = ip.encode();
    g.bench_function("ipv4_icmp_roundtrip", |b| {
        b.iter(|| {
            let p = Ipv4Packet::decode(black_box(&ip_bytes)).expect("valid");
            let m = IcmpMessage::decode(&p.payload).expect("valid");
            black_box(m.encode().len())
        })
    });

    let udp = UdpDatagram::new(40000, 33434, Bytes::from(vec![0u8; 12]));
    let udp_bytes = udp.encode();
    g.bench_function("udp_roundtrip", |b| {
        b.iter(|| {
            let d = UdpDatagram::decode(black_box(&udp_bytes)).expect("valid");
            black_box(d.encode().len())
        })
    });

    let rip = RipPacket::response(
        (0..25u32)
            .map(|i| RipEntry {
                addr: Ipv4Addr::new(128, 138, i as u8, 0),
                metric: 1 + i % 15,
            })
            .collect(),
    );
    let rip_bytes = rip.encode();
    g.bench_function("rip_full_packet_roundtrip", |b| {
        b.iter(|| {
            let p = RipPacket::decode(black_box(&rip_bytes)).expect("valid");
            black_box(p.encode().len())
        })
    });

    // A realistic AXFR chunk: 64 PTR records.
    let zone: DnsName = "243.138.128.in-addr.arpa".parse().expect("name");
    let mut msg = DnsMessage::query(1, zone.clone(), RecordType::Axfr);
    msg.is_response = true;
    for i in 0..64u8 {
        msg.answers.push(DnsRecord::ptr(
            DnsName::reverse_for(Ipv4Addr::new(128, 138, 243, i)),
            format!("host{i}.colorado.edu").parse().expect("name"),
            86400,
        ));
    }
    let dns_bytes = msg.encode();
    g.bench_function("dns_axfr_64_records_roundtrip", |b| {
        b.iter(|| {
            let m = DnsMessage::decode(black_box(&dns_bytes)).expect("valid");
            black_box(m.answers.len())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
