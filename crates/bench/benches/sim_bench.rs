//! Criterion benchmarks for the simulator engine: event throughput,
//! campus generation, and routing-table computation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use fremont_explorers::{SeqPing, SeqPingConfig};
use fremont_net::IpRange;
use fremont_netsim::builder::TopologyBuilder;
use fremont_netsim::campus::{generate, CampusConfig};
use fremont_netsim::time::SimDuration;

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(20);

    // Ping sweep throughput: how fast does the engine chew through a
    // sweep's worth of events (ARP + echo + timers)?
    g.bench_function("ping_sweep_60_hosts", |b| {
        b.iter(|| {
            let mut builder = TopologyBuilder::new();
            let lan = builder.segment("lan", "10.0.0.0/24");
            for i in 0..60 {
                builder.host(&format!("h{i}"), lan, 10 + i);
            }
            let (mut sim, topo) = builder.build(1);
            let range = IpRange::new(
                "10.0.0.10".parse().expect("ip"),
                "10.0.0.69".parse().expect("ip"),
            );
            let mut cfg = SeqPingConfig::over(range);
            cfg.interval = SimDuration::from_millis(10); // Stress, not pacing.
            let h = sim.spawn(topo.hosts[0], Box::new(SeqPing::new(cfg)));
            sim.run_for(SimDuration::from_secs(30));
            black_box((sim.stats.events_processed, h))
        })
    });

    // Raw event throughput under RIP chatter on the full campus.
    g.bench_function("campus_idle_minute", |b| {
        b.iter(|| {
            let cfg = CampusConfig {
                cs_traffic: false,
                ..CampusConfig::default()
            };
            let (mut sim, _) = generate(&cfg);
            sim.run_for(SimDuration::from_mins(1));
            black_box(sim.stats.events_processed)
        })
    });

    // Raw wheel churn: interleaved inserts and pops across mixed
    // horizons (sub-slot to minutes), the pattern the campus produces.
    g.bench_function("wheel_churn_64k", |b| {
        b.iter(|| {
            let mut wheel = fremont_netsim::sched::TimerWheel::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            let mut x = 0x9E37_79B9_7F4A_7C15u64; // LCG, deterministic
            for _ in 0..65_536u32 {
                seq += 1;
                x = x
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                let horizon = [63u64, 10_000, 2_000_000, 120_000_000][(x >> 60) as usize & 3];
                wheel.insert(now + (x % horizon) + 1, seq, seq);
                if seq.is_multiple_of(4) {
                    if let Some((at, _, _)) = wheel.pop_due(u64::MAX) {
                        now = at;
                    }
                }
            }
            while wheel.pop_due(u64::MAX).is_some() {}
            black_box(wheel.cascades())
        })
    });

    // Idle skip-ahead: a converged campus advancing a whole hour. The
    // wheel's occupancy bound lets `run_until` jump every silent gap, so
    // this costs events-processed, not microseconds-simulated.
    {
        let cfg = CampusConfig {
            cs_traffic: false,
            ..CampusConfig::default()
        };
        let (mut sim, _) = generate(&cfg);
        sim.run_for(SimDuration::from_mins(2)); // converge first
        g.bench_function("campus_skip_ahead_hour", |b| {
            b.iter(|| {
                sim.run_for(SimDuration::from_mins(60));
                black_box(sim.stats.idle_skipped_micros)
            })
        });
    }

    for subnets in [12usize, 114] {
        g.bench_with_input(
            BenchmarkId::new("campus_generation", subnets),
            &subnets,
            |b, &n| {
                b.iter(|| {
                    let cfg = CampusConfig {
                        subnets_assigned: n + 3,
                        subnets_connected: n,
                        cs_traffic: false,
                        ..Default::default()
                    };
                    let (sim, truth) = generate(&cfg);
                    black_box((sim.nodes.len(), truth.gateways.len()))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
