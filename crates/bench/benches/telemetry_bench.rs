//! Micro-benchmarks for the telemetry layer: the disabled path must be
//! close to free (one branch on an `Option`), and the recording path
//! must stay cheap enough to leave on during experiments.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fremont_telemetry::{bounds, SpanId, TelTime, Telemetry};

fn bench_disabled(c: &mut Criterion) {
    let tel = Telemetry::noop();
    let mut g = c.benchmark_group("telemetry_disabled");
    g.bench_function("counter_add", |b| {
        b.iter(|| tel.counter_add(black_box("fremont_bench_total"), "", 1))
    });
    g.bench_function("observe", |b| {
        b.iter(|| tel.observe(black_box("fremont_bench_hist"), "", bounds::WORK_UNITS, 17))
    });
    g.finish();
}

fn bench_recording(c: &mut Criterion) {
    let (tel, _rec) = Telemetry::recording();
    let mut g = c.benchmark_group("telemetry_recording");
    g.bench_function("counter_add", |b| {
        b.iter(|| tel.counter_add(black_box("fremont_bench_total"), "", 1))
    });
    g.bench_function("observe", |b| {
        b.iter(|| tel.observe(black_box("fremont_bench_hist"), "", bounds::WORK_UNITS, 17))
    });
    g.bench_function("span_pair", |b| {
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let s = tel.span_start("bench.span", "", SpanId::NONE, TelTime(n));
            tel.span_end(s, "ok", TelTime(n));
        })
    });
    g.finish();
}

fn bench_expose(c: &mut Criterion) {
    let (tel, rec) = Telemetry::recording();
    for i in 0..200u64 {
        let label = format!("series=\"{i}\"");
        tel.counter_add("fremont_bench_total", &label, i);
        tel.observe("fremont_bench_hist", "", bounds::WORK_UNITS, i);
    }
    c.bench_function("telemetry_expose_200_series", |b| {
        b.iter(|| black_box(rec.expose().len()))
    });
}

criterion_group!(benches, bench_disabled, bench_recording, bench_expose);
criterion_main!(benches);
