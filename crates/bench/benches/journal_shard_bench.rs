//! Criterion benchmarks for the sharded Journal store: batched store
//! and query throughput at 1 / 4 / 8 shards while contending threads
//! hammer the other side of the lock, the grouped batch path against
//! the legacy per-observation loop, the durable batched write path
//! (group commit: at most one fsync per StoreBatch), and connection
//! churn against the event-loop server.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fremont_journal::client::RemoteJournal;
use fremont_journal::observation::{Observation, Source};
use fremont_journal::proto::StoreBatchItem;
use fremont_journal::query::InterfaceQuery;
use fremont_journal::server::{JournalAccess, JournalServer, SharedJournal};
use fremont_journal::store::Journal;
use fremont_journal::time::JTime;
use fremont_net::MacAddr;
use fremont_storage::{DurableJournal, WalConfig};

const BATCH: u32 = 64;
const HOSTS: u32 = 1024;

fn ip_of(i: u32) -> Ipv4Addr {
    Ipv4Addr::new(10, 7, (i >> 8) as u8, i as u8)
}

fn mac_of(i: u32) -> MacAddr {
    MacAddr::new([8, 0, 0x20, 9, (i >> 8) as u8, i as u8])
}

fn batch_at(t: u64) -> Vec<StoreBatchItem> {
    let base = (t as u32 * BATCH) % HOSTS;
    vec![StoreBatchItem {
        now: JTime(t),
        observations: (0..BATCH)
            .map(|i| {
                let h = (base + i) % HOSTS;
                Observation::arp_pair(Source::ArpWatch, ip_of(h), mac_of(h))
            })
            .collect(),
    }]
}

/// A journal pre-populated with the full host set, so queries hit and
/// stores mostly verify (the steady-state mix of a long survey).
fn populated(shards: usize) -> SharedJournal {
    let journal = Journal::with_shards(shards);
    journal.apply_batch(
        (0..HOSTS)
            .map(|h| Observation::arp_pair(Source::ArpWatch, ip_of(h), mac_of(h)))
            .collect::<Vec<_>>()
            .iter()
            .map(|o| (o, JTime(0))),
    );
    SharedJournal::from_journal(journal)
}

/// Runs `f` while `contenders` background threads run `noise` in a
/// loop, so the measured path pays real lock contention.
fn under_contention<R>(
    shared: &SharedJournal,
    contenders: usize,
    noise: impl Fn(&SharedJournal, u64) + Send + Sync + 'static,
    f: impl FnOnce() -> R,
) -> R {
    let stop = Arc::new(AtomicBool::new(false));
    let noise = Arc::new(noise);
    let threads: Vec<_> = (0..contenders)
        .map(|t| {
            let shared = shared.clone();
            let stop = stop.clone();
            let noise = noise.clone();
            std::thread::spawn(move || {
                let mut i = t as u64;
                while !stop.load(Ordering::Relaxed) {
                    noise(&shared, i);
                    i += 1;
                }
            })
        })
        .collect();
    let out = f();
    stop.store(true, Ordering::Relaxed);
    for t in threads {
        let _ = t.join();
    }
    out
}

fn bench_contended_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("journal_shard/contended_store_batch");
    g.throughput(Throughput::Elements(u64::from(BATCH)));
    // Contended timings are bimodal on a small host: windows where the
    // readers are parked run at uncontended speed, windows where they
    // share the CPU run at fair-share speed. Long measurement windows
    // average over both modes instead of letting best-window selection
    // report whichever mode a 10ms window happened to land in.
    g.measurement_time(std::time::Duration::from_secs(2));
    for shards in [1usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &n| {
            let shared = populated(n);
            // Three reader threads sweep keyed queries while the
            // measured thread runs the batched store path.
            under_contention(
                &shared,
                3,
                |s, i| {
                    let q = InterfaceQuery::by_ip(ip_of((i % u64::from(HOSTS)) as u32));
                    black_box(s.interfaces(&q).unwrap().len());
                },
                || {
                    let mut t = 1u64;
                    b.iter(|| {
                        t += 1;
                        black_box(shared.store_batch(&batch_at(t)).unwrap())
                    });
                },
            );
        });
    }
    g.finish();
}

/// A journal (raw, unshared) pre-populated with the full host set, for
/// benchmarking the store paths without the `SharedJournal` lock.
fn populated_journal(shards: usize) -> Journal {
    let journal = Journal::with_shards(shards);
    journal.apply_batch(
        (0..HOSTS)
            .map(|h| Observation::arp_pair(Source::ArpWatch, ip_of(h), mac_of(h)))
            .collect::<Vec<_>>()
            .iter()
            .map(|o| (o, JTime(0))),
    );
    journal
}

/// The grouped batch path head-to-head with the legacy per-observation
/// loop on the same populated journal: one meta acquisition and one
/// shard lock per commit group, versus a shard lock visit for every
/// observation. The gap is what flattens `contended_store_batch`.
fn bench_grouped_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("journal_shard/grouped_store_batch");
    g.throughput(Throughput::Elements(u64::from(BATCH)));
    for shards in [1usize, 4, 8] {
        let journal = populated_journal(shards);
        let mut t = 1u64;
        g.bench_with_input(BenchmarkId::new("grouped", shards), &shards, |b, _| {
            b.iter(|| {
                t += 1;
                let obs: Vec<Observation> = (0..BATCH)
                    .map(|i| {
                        let h = ((t as u32 * BATCH) + i) % HOSTS;
                        Observation::arp_pair(Source::ArpWatch, ip_of(h), mac_of(h))
                    })
                    .collect();
                black_box(journal.apply_batch_grouped(obs.iter().map(|o| (o, JTime(t)))))
            });
        });
        let journal = populated_journal(shards);
        let mut t = 1u64;
        g.bench_with_input(BenchmarkId::new("sequential", shards), &shards, |b, _| {
            b.iter(|| {
                t += 1;
                let obs: Vec<Observation> = (0..BATCH)
                    .map(|i| {
                        let h = ((t as u32 * BATCH) + i) % HOSTS;
                        Observation::arp_pair(Source::ArpWatch, ip_of(h), mac_of(h))
                    })
                    .collect();
                black_box(journal.apply_batch_sequential(obs.iter().map(|o| (o, JTime(t)))))
            });
        });
    }
    g.finish();
}

fn bench_contended_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("journal_shard/contended_query");
    g.throughput(Throughput::Elements(u64::from(BATCH)));
    for shards in [1usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &n| {
            let shared = populated(n);
            // One writer thread keeps the write path busy while the
            // measured thread sweeps keyed queries.
            under_contention(
                &shared,
                1,
                |s, i| {
                    black_box(s.store_batch(&batch_at(i)).unwrap());
                },
                || {
                    let mut i = 0u32;
                    b.iter(|| {
                        let mut hits = 0usize;
                        for _ in 0..BATCH {
                            i = (i + 1) % HOSTS;
                            hits += shared
                                .interfaces(&InterfaceQuery::by_ip(ip_of(i)))
                                .unwrap()
                                .len();
                        }
                        black_box(hits)
                    });
                },
            );
        });
    }
    g.finish();
}

fn bench_cross_shard_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("journal_shard/full_scan");
    g.throughput(Throughput::Elements(u64::from(HOSTS)));
    for shards in [1usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &n| {
            let shared = populated(n);
            b.iter(|| black_box(shared.interfaces(&InterfaceQuery::all()).unwrap().len()));
        });
    }
    g.finish();
}

fn bench_durable_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("journal_shard/durable_store_batch");
    g.throughput(Throughput::Elements(u64::from(BATCH)));
    let dir = std::env::temp_dir().join("fremont-shard-bench-wal");
    let _ = std::fs::remove_dir_all(&dir);
    // Group commit at 8: the batched path amortizes to one fsync per
    // 64-observation StoreBatch where the one-at-a-time path paid 8.
    let (durable, _) = DurableJournal::open(WalConfig::grouped(&dir, 8)).unwrap();
    let mut t = 0u64;
    g.bench_function("every_n_8", |b| {
        b.iter(|| {
            t += 1;
            black_box(durable.store_batch(&batch_at(t)).unwrap())
        })
    });
    g.finish();
    drop(durable);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Connection churn against the event-loop server: one iteration opens,
/// exercises, and drops 1024 `RemoteJournal` connections from sixteen
/// driver threads. Each connection costs the server an fd and a `Conn`
/// state machine, never a thread, so the whole churn runs on the fixed
/// worker pool.
fn bench_eventloop_churn(c: &mut Criterion) {
    const CHURN_CLIENTS: usize = 1024;
    const CHURN_DRIVERS: usize = 16;
    let mut g = c.benchmark_group("journal_shard/eventloop_churn");
    g.throughput(Throughput::Elements(CHURN_CLIENTS as u64));
    g.sample_size(3);
    g.measurement_time(std::time::Duration::from_secs(6));
    let server = JournalServer::start(populated(1), "127.0.0.1:0", None).unwrap();
    let addr = Arc::new(server.addr().to_string());
    g.bench_function("connect_stats_drop_1k", |b| {
        b.iter(|| {
            let handles: Vec<_> = (0..CHURN_DRIVERS)
                .map(|_| {
                    let addr = addr.clone();
                    std::thread::spawn(move || {
                        for _ in 0..CHURN_CLIENTS / CHURN_DRIVERS {
                            let client = RemoteJournal::connect(&addr).unwrap();
                            black_box(client.stats().unwrap().interfaces);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    });
    g.finish();
    server.shutdown();
}

criterion_group!(
    journal_shard_bench,
    bench_contended_store,
    bench_grouped_store,
    bench_contended_query,
    bench_cross_shard_scan,
    bench_durable_batch,
    bench_eventloop_churn
);
criterion_main!(journal_shard_bench);
