//! Criterion benchmarks for the Journal: AVL index operations, the
//! observation-merge path, and query throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::net::Ipv4Addr;

use fremont_journal::avl::AvlMap;
use fremont_journal::observation::{Observation, Source};
use fremont_journal::query::InterfaceQuery;
use fremont_journal::store::Journal;
use fremont_journal::time::JTime;
use fremont_net::MacAddr;

fn ip_of(i: u32) -> Ipv4Addr {
    Ipv4Addr::new(128, 138, (i >> 8) as u8, i as u8)
}

fn mac_of(i: u32) -> MacAddr {
    MacAddr::new([8, 0, 0x20, (i >> 16) as u8, (i >> 8) as u8, i as u8])
}

fn bench_avl(c: &mut Criterion) {
    let mut g = c.benchmark_group("avl");
    for n in [1_000u32, 16_000] {
        g.bench_with_input(BenchmarkId::new("insert", n), &n, |b, &n| {
            b.iter(|| {
                let mut m = AvlMap::new();
                for i in 0..n {
                    m.insert(i.wrapping_mul(2_654_435_761), i);
                }
                black_box(m.len())
            })
        });
        let filled: AvlMap<u32, u32> = (0..n).map(|i| (i.wrapping_mul(2_654_435_761), i)).collect();
        g.bench_with_input(BenchmarkId::new("lookup", n), &n, |b, &n| {
            b.iter(|| {
                let mut hits = 0;
                for i in 0..1000 {
                    if filled.get(&((i % n).wrapping_mul(2_654_435_761))).is_some() {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
        g.bench_with_input(BenchmarkId::new("range_scan", n), &n, |b, _| {
            b.iter(|| {
                let count = filled
                    .range((
                        std::ops::Bound::Included(&0),
                        std::ops::Bound::Included(&(u32::MAX / 8)),
                    ))
                    .count();
                black_box(count)
            })
        });
    }
    g.finish();
}

fn bench_journal_apply(c: &mut Criterion) {
    let mut g = c.benchmark_group("journal");
    g.bench_function("apply_arp_pairs_10k", |b| {
        b.iter(|| {
            let mut j = Journal::new();
            for i in 0..10_000u32 {
                j.apply(
                    &Observation::arp_pair(Source::ArpWatch, ip_of(i), mac_of(i)),
                    JTime(u64::from(i)),
                );
            }
            black_box(j.stats().interfaces)
        })
    });
    g.bench_function("reverify_known_pairs_10k", |b| {
        let mut j = Journal::new();
        for i in 0..10_000u32 {
            j.apply(
                &Observation::arp_pair(Source::ArpWatch, ip_of(i), mac_of(i)),
                JTime(u64::from(i)),
            );
        }
        b.iter(|| {
            for i in 0..10_000u32 {
                j.apply(
                    &Observation::arp_pair(Source::ArpWatch, ip_of(i), mac_of(i)),
                    JTime(20_000),
                );
            }
            black_box(j.stats().interfaces)
        })
    });
    let mut j = Journal::new();
    for i in 0..16_000u32 {
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip_of(i), mac_of(i)),
            JTime(u64::from(i)),
        );
    }
    g.bench_function("query_by_ip", |b| {
        b.iter(|| {
            let mut found = 0;
            for i in 0..1000u32 {
                found += j.get_interfaces(&InterfaceQuery::by_ip(ip_of(i * 16))).len();
            }
            black_box(found)
        })
    });
    g.bench_function("query_subnet_scan", |b| {
        b.iter(|| {
            let q = InterfaceQuery::in_subnet("128.138.7.0/24".parse().expect("subnet"));
            black_box(j.get_interfaces(&q).len())
        })
    });
    g.bench_function("snapshot_roundtrip_16k", |b| {
        b.iter(|| {
            let snap = j.to_snapshot();
            black_box(Journal::from_snapshot(&snap).stats().interfaces)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_avl, bench_journal_apply);
criterion_main!(benches);
