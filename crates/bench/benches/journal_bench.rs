//! Criterion benchmarks for the Journal: AVL index operations, the
//! observation-merge path, query throughput, and the durable storage
//! engine (WAL append with/without group commit, recovery replay).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::net::Ipv4Addr;

use fremont_journal::avl::AvlMap;
use fremont_journal::observation::{Observation, Source};
use fremont_journal::query::InterfaceQuery;
use fremont_journal::server::JournalAccess;
use fremont_journal::store::Journal;
use fremont_journal::time::JTime;
use fremont_net::MacAddr;
use fremont_storage::{DurableJournal, SyncPolicy, WalConfig};

fn ip_of(i: u32) -> Ipv4Addr {
    Ipv4Addr::new(128, 138, (i >> 8) as u8, i as u8)
}

fn mac_of(i: u32) -> MacAddr {
    MacAddr::new([8, 0, 0x20, (i >> 16) as u8, (i >> 8) as u8, i as u8])
}

fn bench_avl(c: &mut Criterion) {
    let mut g = c.benchmark_group("avl");
    for n in [1_000u32, 16_000] {
        g.bench_with_input(BenchmarkId::new("insert", n), &n, |b, &n| {
            b.iter(|| {
                let mut m = AvlMap::new();
                for i in 0..n {
                    m.insert(i.wrapping_mul(2_654_435_761), i);
                }
                black_box(m.len())
            })
        });
        let filled: AvlMap<u32, u32> = (0..n).map(|i| (i.wrapping_mul(2_654_435_761), i)).collect();
        g.bench_with_input(BenchmarkId::new("lookup", n), &n, |b, &n| {
            b.iter(|| {
                let mut hits = 0;
                for i in 0..1000 {
                    if filled.get(&((i % n).wrapping_mul(2_654_435_761))).is_some() {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
        g.bench_with_input(BenchmarkId::new("range_scan", n), &n, |b, _| {
            b.iter(|| {
                let count = filled
                    .range((
                        std::ops::Bound::Included(&0),
                        std::ops::Bound::Included(&(u32::MAX / 8)),
                    ))
                    .count();
                black_box(count)
            })
        });
    }
    g.finish();
}

fn bench_journal_apply(c: &mut Criterion) {
    let mut g = c.benchmark_group("journal");
    g.bench_function("apply_arp_pairs_10k", |b| {
        b.iter(|| {
            let mut j = Journal::new();
            for i in 0..10_000u32 {
                j.apply(
                    &Observation::arp_pair(Source::ArpWatch, ip_of(i), mac_of(i)),
                    JTime(u64::from(i)),
                );
            }
            black_box(j.stats().interfaces)
        })
    });
    g.bench_function("reverify_known_pairs_10k", |b| {
        let mut j = Journal::new();
        for i in 0..10_000u32 {
            j.apply(
                &Observation::arp_pair(Source::ArpWatch, ip_of(i), mac_of(i)),
                JTime(u64::from(i)),
            );
        }
        b.iter(|| {
            for i in 0..10_000u32 {
                j.apply(
                    &Observation::arp_pair(Source::ArpWatch, ip_of(i), mac_of(i)),
                    JTime(20_000),
                );
            }
            black_box(j.stats().interfaces)
        })
    });
    let mut j = Journal::new();
    for i in 0..16_000u32 {
        j.apply(
            &Observation::arp_pair(Source::ArpWatch, ip_of(i), mac_of(i)),
            JTime(u64::from(i)),
        );
    }
    g.bench_function("query_by_ip", |b| {
        b.iter(|| {
            let mut found = 0;
            for i in 0..1000u32 {
                found += j
                    .get_interfaces(&InterfaceQuery::by_ip(ip_of(i * 16)))
                    .len();
            }
            black_box(found)
        })
    });
    g.bench_function("query_subnet_scan", |b| {
        b.iter(|| {
            let q = InterfaceQuery::in_subnet("128.138.7.0/24".parse().expect("subnet"));
            black_box(j.get_interfaces(&q).len())
        })
    });
    g.bench_function("snapshot_roundtrip_16k", |b| {
        b.iter(|| {
            let snap = j.to_snapshot();
            black_box(Journal::from_snapshot(&snap).stats().interfaces)
        })
    });
    g.finish();
}

fn wal_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("fremont-wal-bench").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_wal(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal");
    g.sample_size(10);

    // Append throughput under the three sync policies. Group commit is
    // the headline: it amortizes one fsync over many acknowledged
    // observations.
    const BATCH: u64 = 256;
    for (label, sync) in [
        ("append_fsync_always", SyncPolicy::Always),
        ("append_group_commit_64", SyncPolicy::EveryN(64)),
        ("append_no_sync", SyncPolicy::Never),
    ] {
        let dir = wal_dir(label);
        let mut cfg = WalConfig::new(&dir);
        cfg.sync = sync;
        cfg.max_segment_bytes = u64::MAX; // isolate the append path
        let (dj, _) = DurableJournal::open(cfg).expect("open");
        let mut next = 0u32;
        g.throughput(Throughput::Elements(BATCH));
        g.bench_function(label, |b| {
            b.iter(|| {
                for _ in 0..BATCH {
                    let o = Observation::arp_pair(Source::ArpWatch, ip_of(next), mac_of(next));
                    dj.store(JTime(u64::from(next)), std::slice::from_ref(&o))
                        .expect("store");
                    next = next.wrapping_add(1);
                }
                black_box(next)
            })
        });
        drop(dj);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Recovery replay: reopen a directory whose snapshot is empty and
    // whose WAL tail holds the whole history.
    for n in [1_000u32, 8_000] {
        let dir = wal_dir(&format!("recover-{n}"));
        let mut cfg = WalConfig::new(&dir);
        cfg.sync = SyncPolicy::Never;
        cfg.max_segment_bytes = u64::MAX;
        let (dj, _) = DurableJournal::open(cfg.clone()).expect("open");
        for i in 0..n {
            let o = Observation::arp_pair(Source::ArpWatch, ip_of(i), mac_of(i));
            dj.store(JTime(u64::from(i)), std::slice::from_ref(&o))
                .expect("store");
        }
        dj.sync().expect("sync");
        // Preserve the WAL-heavy directory: recovery in the timed loop
        // must replay, not just load a snapshot, so work on a copy.
        let seg = fremont_storage::wal::list_segments(&cfg.dir).expect("segments")[0]
            .path
            .clone();
        let snap = cfg.dir.join("snapshot.json");
        drop(dj);
        let replay_dir = wal_dir(&format!("recover-{n}-replay"));
        std::fs::create_dir_all(&replay_dir).expect("mkdir");
        g.throughput(Throughput::Elements(u64::from(n)));
        g.bench_with_input(BenchmarkId::new("recovery_replay", n), &n, |b, &n| {
            b.iter(|| {
                for f in std::fs::read_dir(&replay_dir).expect("ls").flatten() {
                    let _ = std::fs::remove_file(f.path());
                }
                std::fs::copy(&seg, replay_dir.join(seg.file_name().expect("name")))
                    .expect("copy wal");
                let _ = std::fs::copy(&snap, replay_dir.join("snapshot.json"));
                let mut rcfg = WalConfig::new(&replay_dir);
                rcfg.sync = SyncPolicy::Never;
                let (dj, report) = DurableJournal::open(rcfg).expect("recover");
                assert_eq!(
                    report.records_replayed + report.records_skipped,
                    u64::from(n)
                );
                black_box(dj.stats().expect("stats").interfaces)
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&replay_dir);
    }
    g.finish();
}

criterion_group!(benches, bench_avl, bench_journal_apply, bench_wal);
criterion_main!(benches);
