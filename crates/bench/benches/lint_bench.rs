//! Criterion benchmarks for the in-tree static analyzer: workspace
//! source loading, the cross-crate call-graph build, the two newest
//! rules in isolation, and the full seven-rule analysis pass — all
//! measured over the real workspace so the CI `--deny` gate's cost
//! stays visible.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::path::Path;

use fremont_lint::callgraph::CallGraph;
use fremont_lint::{analyze, find_workspace_root, rules, Config, Workspace};

fn bench_lint(c: &mut Criterion) {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("bench crate lives inside the workspace");
    let ws = Workspace::load(&root).expect("workspace sources readable");
    let cfg = Config::for_root(root.clone());
    let tokens: u64 = ws.files.iter().map(|f| f.code.len() as u64).sum();

    let mut g = c.benchmark_group("lint");
    g.throughput(Throughput::Elements(tokens));
    g.bench_function("load_workspace", |b| {
        b.iter(|| {
            let ws = Workspace::load(&root).expect("workspace sources readable");
            black_box(ws.files.len())
        })
    });
    g.bench_function("callgraph_build", |b| {
        b.iter(|| {
            let cg = CallGraph::build(&ws);
            black_box(cg.fns.len())
        })
    });
    let cg = CallGraph::build(&ws);
    let lock = rules::lock_order::check(&ws, &cfg, &cg);
    g.bench_function("rule_shard_lock_order", |b| {
        b.iter(|| {
            let report = rules::shard_lock_order::check(&ws, &cfg, &cg, &lock.reach_locks);
            black_box(report.violations.len())
        })
    });
    g.bench_function("rule_metric_registry", |b| {
        b.iter(|| {
            let (violations, _) = rules::metric_registry::check(&ws, &cfg, false);
            black_box(violations.len())
        })
    });
    g.bench_function("analyze_full", |b| {
        b.iter(|| {
            let (analysis, _) = analyze(&ws, &cfg, false);
            black_box(analysis.violations.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_lint);
criterion_main!(benches);
