//! Experiments for the paper's *static* tables: Table 1 (interface
//! fields), Table 2 (Journal storage requirements), and Table 3 (module
//! inputs/outputs).

use std::mem::size_of;
use std::net::Ipv4Addr;

use fremont_core::registry::registry;
use fremont_journal::observation::{Fact, Observation, Source};
use fremont_journal::records::{GatewayRecord, InterfaceRecord, SubnetRecord};
use fremont_journal::store::Journal;
use fremont_journal::time::JTime;
use fremont_net::MacAddr;

use crate::tables::Table;

/// Table 1: the interface record fields.
///
/// Regenerated from the actual record type: the experiment constructs a
/// fully-populated record and lists which paper field maps to which
/// implementation field.
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1: Interface Fields",
        &["Field (paper)", "Implementation", "Timestamped"],
    );
    // Construct a fully-populated record to prove the schema exists.
    let mut j = Journal::new();
    j.apply(
        &Observation::arp_pair(
            Source::ArpWatch,
            Ipv4Addr::new(128, 138, 243, 18),
            "08:00:20:01:02:03".parse().expect("mac literal"),
        ),
        JTime(1),
    );
    j.apply(
        &Observation::named_ip(Source::Dns, Ipv4Addr::new(128, 138, 243, 18), "bruno"),
        JTime(2),
    );
    j.apply(
        &Observation::mask(
            Source::SubnetMasks,
            Ipv4Addr::new(128, 138, 243, 18),
            fremont_net::SubnetMask::from_prefix_len(24).expect("valid"),
        ),
        JTime(3),
    );
    j.apply(
        &Observation::new(
            Source::Traceroute,
            Fact::Gateway {
                interface_ips: vec![Ipv4Addr::new(128, 138, 243, 18)],
                interface_names: vec![],
                subnets: vec![],
            },
        ),
        JTime(4),
    );
    let rec = &j.get_interfaces(&fremont_journal::InterfaceQuery::all())[0];
    assert!(rec.mac.is_some() && rec.ip.is_some() && rec.name.is_some() && rec.mask.is_some());
    assert!(rec.gateway.is_some());

    t.row(&["MAC layer address", "InterfaceRecord::mac", "yes"]);
    t.row(&["Network layer address", "InterfaceRecord::ip", "yes"]);
    t.row(&["DNS name", "InterfaceRecord::name", "yes"]);
    t.row(&["Subnet mask", "InterfaceRecord::mask", "yes"]);
    t.row(&[
        "Gateway to which this interface belongs",
        "InterfaceRecord::gateway",
        "record-level",
    ]);
    t.note("every field carries discovery / last-change / last-verification times");
    t
}

/// Rough in-memory footprint of an interface record (struct + heap).
pub fn interface_bytes(r: &InterfaceRecord) -> usize {
    size_of::<InterfaceRecord>() + r.name.as_ref().map(|t| t.get().capacity()).unwrap_or(0)
}

/// Rough in-memory footprint of a gateway record.
pub fn gateway_bytes(g: &GatewayRecord) -> usize {
    size_of::<GatewayRecord>()
        + g.interfaces.capacity() * size_of::<fremont_journal::records::InterfaceId>()
        + g.subnets.capacity() * size_of::<fremont_net::Subnet>()
}

/// Rough in-memory footprint of a subnet record.
pub fn subnet_bytes(s: &SubnetRecord) -> usize {
    size_of::<SubnetRecord>()
        + s.gateways.capacity() * size_of::<fremont_journal::records::GatewayId>()
}

/// Table 2: Journal storage requirements.
///
/// The paper reports 200 bytes per interface record, 84 per gateway, 76
/// per subnet, and estimates "a 25% full class B network (16k interfaces)
/// with 192 subnets used (and an equal number of gateways) would require
/// under four megabytes of memory". We build exactly that journal and
/// measure.
pub fn table2() -> Table {
    let mut j = Journal::new();
    // 16k interfaces across 192 subnets (85 hosts each ≈ 16320).
    let mut count = 0u32;
    for s in 0..192u32 {
        let third = (s % 250) as u8;
        let fourth_base = 1 + (s / 250) * 90;
        for h in 0..85u32 {
            let ip = Ipv4Addr::new(128, 138, third, (fourth_base + h).min(254) as u8);
            let mac = MacAddr::new([
                8,
                0,
                0x20,
                (count >> 16) as u8,
                (count >> 8) as u8,
                count as u8,
            ]);
            let mut obs = Observation::arp_pair(Source::ArpWatch, ip, mac);
            // Half the interfaces also carry names and masks (realistic mix).
            if count.is_multiple_of(2) {
                obs = Observation::new(
                    Source::Dns,
                    Fact::Interface {
                        ip: Some(ip),
                        mac: Some(mac),
                        name: Some(format!("host{count}.colorado.edu")),
                        mask: Some(fremont_net::SubnetMask::from_prefix_len(24).expect("valid")),
                    },
                );
            }
            j.apply(&obs, JTime(u64::from(count)));
            count += 1;
        }
    }
    // 192 gateways, each joining two subnets.
    for g in 0..192u32 {
        let a = Ipv4Addr::new(128, 138, (g % 250) as u8, 1);
        j.apply(
            &Observation::new(
                Source::Traceroute,
                Fact::Gateway {
                    interface_ips: vec![a],
                    interface_names: vec![],
                    subnets: vec![
                        format!("128.138.{}.0/24", g % 250).parse().expect("subnet"),
                        "128.138.1.0/24".parse().expect("subnet"),
                    ],
                },
            ),
            JTime(1_000_000 + u64::from(g)),
        );
    }
    let stats = j.stats();

    let ifaces = j.get_interfaces(&fremont_journal::InterfaceQuery::all());
    let gws = j.get_gateways();
    let subs = j.get_subnets(&fremont_journal::SubnetQuery::all());
    let if_bytes: usize = ifaces.iter().map(interface_bytes).sum::<usize>() / ifaces.len().max(1);
    let gw_bytes: usize = gws.iter().map(gateway_bytes).sum::<usize>() / gws.len().max(1);
    let sn_bytes: usize = subs.iter().map(subnet_bytes).sum::<usize>() / subs.len().max(1);

    let total: usize = ifaces.iter().map(interface_bytes).sum::<usize>()
        + gws.iter().map(gateway_bytes).sum::<usize>()
        + subs.iter().map(subnet_bytes).sum::<usize>();

    let mut t = Table::new(
        "Table 2: Journal Storage Requirements",
        &[
            "Record",
            "Paper bytes/record",
            "Measured bytes/record",
            "Count",
        ],
    );
    t.row(&[
        "Interface".to_owned(),
        "200".to_owned(),
        if_bytes.to_string(),
        stats.interfaces.to_string(),
    ]);
    t.row(&[
        "Gateway".to_owned(),
        "84".to_owned(),
        gw_bytes.to_string(),
        stats.gateways.to_string(),
    ]);
    t.row(&[
        "Subnet".to_owned(),
        "76".to_owned(),
        sn_bytes.to_string(),
        stats.subnets.to_string(),
    ]);
    t.note(&format!(
        "paper claim: 25%-full class B (16k interfaces, 192 subnets+gateways) under 4 MB; \
         measured total: {:.2} MB",
        total as f64 / (1024.0 * 1024.0)
    ));
    t.note("1993 C structs were leaner than timestamped Rust records; the claim to check is the magnitude");
    t
}

/// Table 3: Explorer Module inputs/outputs, straight from the registry.
pub fn table3() -> Table {
    let mut t = Table::new(
        "Table 3: Explorer Module Input/Output",
        &["Source", "Module", "Inputs", "Outputs"],
    );
    for m in registry() {
        t.row(&[m.family, m.source.name(), m.inputs_text, m.outputs_text]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape() {
        let t = table1();
        assert_eq!(t.rows.len(), 5);
    }

    #[test]
    fn table2_magnitude_holds() {
        let t = table2();
        assert_eq!(t.rows.len(), 3);
        // ~16k interfaces were actually created.
        let count: usize = t.rows[0][3].parse().unwrap();
        assert!(count >= 16_000, "{count}");
        // The 4 MB-magnitude claim: our measured total must be within a
        // small constant factor (Rust records carry more timestamps).
        let note = &t.notes[0];
        let mb: f64 = note
            .split("measured total: ")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(mb < 16.0, "order of magnitude preserved, got {mb} MB");
        assert!(mb > 1.0, "non-trivial storage, got {mb} MB");
    }

    #[test]
    fn table3_has_eight_modules() {
        let t = table3();
        assert_eq!(t.rows.len(), 8);
        assert!(t.rows.iter().any(|r| r[1] == "ARPwatch"));
        assert!(t.rows.iter().any(|r| r[3].contains("gateway-subnet links")));
    }
}
