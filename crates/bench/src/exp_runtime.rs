//! Table 4: Explorer Module characteristics — intervals (from the
//! registry), measured completion time, measured network load, and a
//! system-load proxy (simulator events consumed by the run).

use fremont_core::registry::{info_for, registry};
use fremont_explorers::{
    ArpWatch, ArpWatchConfig, BrdcastPing, BrdcastPingConfig, DnsExplorer, DnsExplorerConfig,
    EtherHostProbe, EtherHostProbeConfig, RipWatch, RipWatchConfig, SeqPing, SeqPingConfig,
    SubnetMasks, SubnetMasksConfig, Traceroute, TracerouteConfig,
};
use fremont_journal::observation::Source;
use fremont_netsim::campus::{generate, CampusConfig};
use fremont_netsim::process::ProcHandle;
use fremont_netsim::time::{SimDuration, SimTime};

use crate::tables::Table;

/// One measured module run.
#[derive(Debug, Clone)]
pub struct ModuleRun {
    /// The module.
    pub source: Source,
    /// Sim-time to completion (`None` = continuous module).
    pub completion: Option<SimDuration>,
    /// Mean packets/second on the home segment during the run.
    pub pkts_per_sec: f64,
    /// Peak packets in any single second.
    pub peak_pkts: u32,
    /// Simulator events consumed (system-load proxy).
    pub events: u64,
}

fn interval_text(secs: u64) -> String {
    if secs.is_multiple_of(86400) && secs >= 86400 {
        let d = secs / 86400;
        if d.is_multiple_of(7) {
            format!("{} week{}", d / 7, if d / 7 == 1 { "" } else { "s" })
        } else {
            format!("{d} day{}", if d == 1 { "" } else { "s" })
        }
    } else {
        format!("{} hours", secs / 3600)
    }
}

/// Runs one module on a quiet campus (no background traffic) and measures
/// its cost.
fn measure(source: Source, cfg: &CampusConfig) -> ModuleRun {
    let mut quiet = cfg.clone();
    quiet.cs_traffic = source == Source::ArpWatch; // Passive needs traffic.
    let (mut sim, truth) = generate(&quiet);
    let home = sim.node_by_name("bruno").expect("campus has bruno");
    let cs = truth.cs_subnet;
    let home_seg = sim.nodes[home.0].ifaces[0].segment;
    sim.segments[home_seg.0].stats.enable_buckets();

    let start = sim.now();
    let events_before = sim.stats.events_processed;
    let (handle, budget): (ProcHandle, SimDuration) = match source {
        Source::ArpWatch => (
            sim.spawn(home, Box::new(ArpWatch::new(ArpWatchConfig::default()))),
            SimDuration::from_hours(1),
        ),
        Source::EtherHostProbe => (
            sim.spawn(
                home,
                Box::new(EtherHostProbe::new(EtherHostProbeConfig::over(
                    cs.host_range(),
                ))),
            ),
            SimDuration::from_mins(15),
        ),
        Source::SeqPing => (
            sim.spawn(
                home,
                Box::new(SeqPing::new(SeqPingConfig::over(cs.host_range()))),
            ),
            SimDuration::from_mins(40),
        ),
        Source::BrdcastPing => (
            sim.spawn(
                home,
                Box::new(BrdcastPing::new(BrdcastPingConfig::over(vec![cs]))),
            ),
            SimDuration::from_mins(5),
        ),
        Source::SubnetMasks => {
            let targets: Vec<_> = truth
                .cs_interfaces
                .iter()
                .map(|(ip, _)| *ip)
                .take(56)
                .collect();
            (
                sim.spawn(
                    home,
                    Box::new(SubnetMasks::new(SubnetMasksConfig::over(targets))),
                ),
                SimDuration::from_mins(10),
            )
        }
        Source::Traceroute => {
            let mut tc = TracerouteConfig::over(truth.assigned_subnets.clone());
            tc.boundary = Some(quiet.network);
            (
                sim.spawn(home, Box::new(Traceroute::new(tc))),
                SimDuration::from_mins(45),
            )
        }
        Source::RipWatch => (
            sim.spawn(home, Box::new(RipWatch::new(RipWatchConfig::default()))),
            SimDuration::from_mins(5),
        ),
        Source::Dns => (
            sim.spawn(
                home,
                Box::new(DnsExplorer::new(DnsExplorerConfig::new(
                    quiet.network,
                    truth.dns_server,
                ))),
            ),
            SimDuration::from_mins(30),
        ),
        Source::Manager => unreachable!("not a module"),
    };

    // Run until done (or budget for continuous modules), in small slices.
    let deadline = start + budget;
    let continuous = info_for(source).map(|i| i.continuous).unwrap_or(false);
    let mut finished_at: Option<SimTime> = None;
    while sim.now() < deadline {
        sim.run_for(SimDuration::from_secs(10));
        if !continuous && sim.process_done(handle) && finished_at.is_none() {
            finished_at = Some(sim.now());
            break;
        }
    }
    let end = finished_at.unwrap_or_else(|| sim.now());
    let frames = sim.segments[home_seg.0].stats.frames_between(start, end);
    let peak = sim.segments[home_seg.0].stats.peak_rate(start, end);
    let secs = (end - start).as_secs_f64().max(1.0);
    ModuleRun {
        source,
        completion: if continuous { None } else { Some(end - start) },
        pkts_per_sec: frames as f64 / secs,
        peak_pkts: peak,
        events: sim.stats.events_processed - events_before,
    }
}

/// Runs the full Table 4 experiment.
pub fn table4(cfg: &CampusConfig) -> Table {
    let mut t = Table::new(
        "Table 4: Explorer Module Characteristics",
        &[
            "Module",
            "Min/Max Interval",
            "Time to Complete",
            "Paper time",
            "Net load (pkt/s avg, peak/s)",
            "Paper load",
            "Events",
        ],
    );
    for info in registry() {
        let run = measure(info.source, cfg);
        let completion = match run.completion {
            None => "continuous".to_owned(),
            Some(d) => format!("{}", d),
        };
        t.row(&[
            info.source.name().to_owned(),
            format!(
                "{}; {}",
                interval_text(info.min_interval.as_secs()),
                interval_text(info.max_interval.as_secs())
            ),
            completion,
            info.time_to_complete.to_owned(),
            format!("{:.1}, {}", run.pkts_per_sec, run.peak_pkts),
            info.network_load.to_owned(),
            run.events.to_string(),
        ]);
    }
    t.note("network load measured on the module host's segment; passive modules show only ambient traffic");
    t.note("'Events' (simulator events consumed) is the system-load proxy");
    t
}
