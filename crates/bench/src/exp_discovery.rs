//! The paper's discovery-effectiveness experiments: Table 5 (interfaces
//! on one subnet) and Table 6 (subnets of the campus).
//!
//! Each module runs once on a freshly generated campus (same seed, so the
//! same ground truth), starting at a module-specific warm-up offset so
//! host up/down churn puts each run in a different availability snapshot —
//! the "Not all hosts up when run" effect of Table 5.

use std::collections::HashSet;
use std::net::Ipv4Addr;

use fremont_explorers::{
    ArpWatch, ArpWatchConfig, BrdcastPing, BrdcastPingConfig, DnsExplorer, DnsExplorerConfig,
    EtherHostProbe, EtherHostProbeConfig, RipWatch, RipWatchConfig, SeqPing, SeqPingConfig,
    Traceroute, TracerouteConfig,
};
use fremont_net::Subnet;
use fremont_netsim::campus::{generate, CampusConfig, CampusTruth};
use fremont_netsim::engine::Sim;
use fremont_netsim::process::Process;
use fremont_netsim::segment::NodeId;
use fremont_netsim::time::SimDuration;

use crate::tables::{pct, Table};

fn fresh(cfg: &CampusConfig, warmup: SimDuration) -> (Sim, CampusTruth, NodeId) {
    let (mut sim, truth) = generate(cfg);
    let home = sim.node_by_name("bruno").expect("campus has bruno");
    sim.run_for(warmup);
    (sim, truth, home)
}

/// Result row for Table 5.
#[derive(Debug, Clone)]
pub struct InterfaceDiscovery {
    /// Module label (matching the paper's rows).
    pub module: String,
    /// Distinct CS-subnet interfaces the module found.
    pub found: usize,
    /// The paper's count for comparison.
    pub paper: usize,
    /// The paper's loss explanation.
    pub reason: &'static str,
}

/// Runs the Table 5 experiment.
pub fn table5_runs(cfg: &CampusConfig) -> (Vec<InterfaceDiscovery>, usize) {
    let mut rows = Vec::new();

    // --- ARPwatch: passive, measured at 30 minutes and 24 hours --------
    {
        let (mut sim, truth, home) = fresh(cfg, SimDuration::from_mins(1));
        let cs = truth.cs_subnet;
        let h = sim.spawn(home, Box::new(ArpWatch::new(ArpWatchConfig::default())));
        sim.run_for(SimDuration::from_mins(30));
        let at_30 = count_cs(sim.process_mut::<ArpWatch>(h).expect("alive").pairs(), cs);
        sim.run_for(SimDuration::from_hours(24) - SimDuration::from_mins(30));
        let at_24h = count_cs(sim.process_mut::<ArpWatch>(h).expect("alive").pairs(), cs);
        rows.push(InterfaceDiscovery {
            module: "ARPwatch (30 min)".to_owned(),
            found: at_30,
            paper: 34,
            reason: "Run for 30 min",
        });
        rows.push(InterfaceDiscovery {
            module: "ARPwatch (24 hours)".to_owned(),
            found: at_24h,
            paper: 50,
            reason: "Run for 24 hours",
        });
    }

    // --- EtherHostProbe -------------------------------------------------
    {
        let (mut sim, truth, home) = fresh(cfg, SimDuration::from_hours(3));
        let cs = truth.cs_subnet;
        let h = sim.spawn(
            home,
            Box::new(EtherHostProbe::new(EtherHostProbeConfig::over(
                cs.host_range(),
            ))),
        );
        sim.run_for(SimDuration::from_mins(10));
        let found = count_cs(
            sim.process_mut::<EtherHostProbe>(h)
                .expect("alive")
                .found()
                .to_vec(),
            cs,
        );
        rows.push(InterfaceDiscovery {
            module: "EtherHostProbe".to_owned(),
            found,
            paper: 48,
            reason: "Not all hosts up when run",
        });
    }

    // --- BrdcastPing ----------------------------------------------------
    {
        let (mut sim, truth, home) = fresh(cfg, SimDuration::from_hours(5));
        let cs = truth.cs_subnet;
        let h = sim.spawn(
            home,
            Box::new(BrdcastPing::new(BrdcastPingConfig::over(vec![cs]))),
        );
        sim.run_for(SimDuration::from_mins(5));
        let found = sim
            .process_mut::<BrdcastPing>(h)
            .expect("alive")
            .responders()
            .into_iter()
            .filter(|ip| cs.contains(*ip))
            .count();
        rows.push(InterfaceDiscovery {
            module: "BrdcastPing".to_owned(),
            found,
            paper: 42,
            reason: "Collisions",
        });
    }

    // --- SeqPing ----------------------------------------------------------
    {
        let (mut sim, truth, home) = fresh(cfg, SimDuration::from_hours(8));
        let cs = truth.cs_subnet;
        let h = sim.spawn(
            home,
            Box::new(SeqPing::new(SeqPingConfig::over(cs.host_range()))),
        );
        sim.run_for(SimDuration::from_mins(40));
        let found = sim
            .process_mut::<SeqPing>(h)
            .expect("alive")
            .responders()
            .into_iter()
            .filter(|ip| cs.contains(*ip))
            .count();
        rows.push(InterfaceDiscovery {
            module: "SeqPing".to_owned(),
            found,
            paper: 38,
            reason: "Not all hosts up when run",
        });
    }

    // --- DNS ------------------------------------------------------------
    let total;
    {
        let (mut sim, truth, home) = fresh(cfg, SimDuration::from_mins(2));
        let cs = truth.cs_subnet;
        let h = sim.spawn(
            home,
            Box::new(DnsExplorer::new(DnsExplorerConfig::new(
                cfg.network,
                truth.dns_server,
            ))),
        );
        sim.run_for(SimDuration::from_mins(20));
        let p = sim.process_mut::<DnsExplorer>(h).expect("alive");
        assert!(p.done(), "DNS walk finished");
        let found = p
            .pairs()
            .iter()
            .filter(|(ip, _)| cs.contains(*ip))
            .map(|(ip, _)| *ip)
            .collect::<HashSet<_>>()
            .len();
        total = found.max(truth.cs_dns_count);
        rows.push(InterfaceDiscovery {
            module: "DNS".to_owned(),
            found,
            paper: 56,
            reason: "Not necessarily current",
        });
    }
    (rows, total)
}

fn count_cs(pairs: Vec<(Ipv4Addr, fremont_net::MacAddr)>, cs: Subnet) -> usize {
    pairs
        .into_iter()
        .filter(|(ip, _)| cs.contains(*ip))
        .map(|(ip, _)| ip)
        .collect::<HashSet<_>>()
        .len()
}

/// Table 5, rendered against the paper's numbers.
pub fn table5(cfg: &CampusConfig) -> Table {
    let (rows, total) = table5_runs(cfg);
    let mut t = Table::new(
        "Table 5: Discovering Interfaces on a Subnet (1 run of each active module)",
        &[
            "Module",
            "Interfaces",
            "% of Total",
            "Paper",
            "Paper %",
            "Reason for loss",
        ],
    );
    for r in &rows {
        t.row(&[
            r.module.clone(),
            r.found.to_string(),
            pct(r.found, total),
            r.paper.to_string(),
            pct(r.paper, 56),
            r.reason.to_owned(),
        ]);
    }
    t.note(&format!(
        "totals: this run {total} DNS-registered interfaces; the paper's subnet had 56"
    ));
    t.note("percentages presume the DNS data are an accurate reflection of the network");
    t
}

/// Result row for Table 6.
#[derive(Debug, Clone)]
pub struct SubnetDiscovery {
    /// Module label.
    pub module: String,
    /// Subnets the module found.
    pub found: usize,
    /// Paper's count.
    pub paper: usize,
    /// Comment (paper's wording).
    pub comment: &'static str,
}

/// Runs the Table 6 experiment. Returns `(rows, connected_total)`.
pub fn table6_runs(cfg: &CampusConfig) -> (Vec<SubnetDiscovery>, usize) {
    let mut rows = Vec::new();
    let total;

    // --- Traceroute -------------------------------------------------------
    {
        let (mut sim, truth, home) = fresh(cfg, SimDuration::from_mins(1));
        total = truth.connected_subnets.len();
        let mut tc = TracerouteConfig::over(truth.assigned_subnets.clone());
        tc.boundary = Some(cfg.network);
        let h = sim.spawn(home, Box::new(Traceroute::new(tc)));
        sim.run_for(SimDuration::from_mins(45));
        let p = sim.process_mut::<Traceroute>(h).expect("alive");
        assert!(p.done(), "traceroute finished");
        let found = p
            .reached_subnets()
            .into_iter()
            .filter(|s| truth.connected_subnets.contains(s))
            .count();
        rows.push(SubnetDiscovery {
            module: "Traceroute".to_owned(),
            found,
            paper: 86,
            comment: "Gateway software problems",
        });
    }

    // --- RIPwatch ----------------------------------------------------------
    {
        let (mut sim, truth, home) = fresh(cfg, SimDuration::from_mins(1));
        let h = sim.spawn(home, Box::new(RipWatch::new(RipWatchConfig::default())));
        sim.run_for(SimDuration::from_mins(3));
        let p = sim.process_mut::<RipWatch>(h).expect("alive");
        let found = p
            .subnets()
            .into_iter()
            .filter(|s| truth.connected_subnets.contains(s))
            .count();
        rows.push(SubnetDiscovery {
            module: "RIPwatch".to_owned(),
            found,
            paper: 111,
            comment: "Nearly all subnets advertised",
        });
    }

    // --- DNS: subnets + gateway attribution --------------------------------
    {
        let (mut sim, truth, home) = fresh(cfg, SimDuration::from_mins(1));
        let h = sim.spawn(
            home,
            Box::new(DnsExplorer::new(DnsExplorerConfig::new(
                cfg.network,
                truth.dns_server,
            ))),
        );
        sim.run_for(SimDuration::from_mins(30));
        let p = sim.process_mut::<DnsExplorer>(h).expect("alive");
        assert!(p.done(), "DNS walk finished");
        let found = p
            .registered_subnets()
            .into_iter()
            .filter(|s| truth.connected_subnets.contains(s))
            .count();
        rows.push(SubnetDiscovery {
            module: "DNS".to_owned(),
            found,
            paper: 93,
            comment: "Not all hosts name served",
        });
        // Gateways identified, and the distinct subnets they attribute
        // (grouped by the bootstrapped /24 mask).
        let gws = p.gateways();
        let gw_count = gws.len();
        let mask24 = fremont_net::SubnetMask::from_prefix_len(24).expect("valid");
        let mut gw_subnets: Vec<Subnet> = gws
            .iter()
            .flat_map(|g| g.ips.iter().map(|ip| Subnet::containing(*ip, mask24)))
            .collect();
        gw_subnets.sort();
        gw_subnets.dedup();
        rows.push(SubnetDiscovery {
            module: format!("DNS ({gw_count} gateways identified)"),
            found: gw_subnets.len(),
            paper: 48,
            comment: "Subnets with gateways identified",
        });
    }
    (rows, total)
}

/// Table 6, rendered against the paper's numbers.
pub fn table6(cfg: &CampusConfig) -> Table {
    let (rows, total) = table6_runs(cfg);
    let mut t = Table::new(
        "Table 6: Discovering Subnets (1 run of each active module)",
        &[
            "Module",
            "Subnets",
            "% of Total",
            "Paper",
            "Paper %",
            "Comments",
        ],
    );
    for r in &rows {
        t.row(&[
            r.module.clone(),
            r.found.to_string(),
            pct(r.found, total),
            r.paper.to_string(),
            pct(r.paper, 111),
            r.comment.to_owned(),
        ]);
    }
    t.note(&format!(
        "this campus: {total} connected subnets (paper: 111); RIPwatch's count is \
         treated as exact, as in the paper"
    ));
    t
}
