//! Table rendering for the experiment harness.
//!
//! Each experiment regenerates one of the paper's tables; the renderer
//! prints the measured rows next to the paper's published values so the
//! *shape* comparison is immediate.

use std::fmt::Write as _;

/// A simple fixed-width table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title (e.g. "Table 5: Discovering Interfaces on a Subnet").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
    /// Footnotes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row<S: ToString>(&mut self, cells: &[S]) {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Appends a footnote.
    pub fn note(&mut self, note: &str) {
        self.notes.push(note.to_owned());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let line_len: usize = widths.iter().sum::<usize>() + 3 * cols.saturating_sub(1);
        let _ = writeln!(out, "{}", "=".repeat(line_len.max(self.title.len())));
        let mut header = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(header, "{:<w$}", h, w = widths[i]);
            if i + 1 < cols {
                header.push_str("   ");
            }
        }
        let _ = writeln!(out, "{}", header.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line_len.max(self.title.len())));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate().take(cols) {
                let _ = write!(line, "{:<w$}", cell, w = widths[i]);
                if i + 1 < cols {
                    line.push_str("   ");
                }
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        for note in &self.notes {
            let _ = writeln!(out, "  * {note}");
        }
        out
    }

    /// Serializes the table to JSON (for EXPERIMENTS.md tooling).
    pub fn to_json(&self) -> String {
        let obj = serde_json::json!({
            "title": self.title,
            "headers": self.headers,
            "rows": self.rows,
            "notes": self.notes,
        });
        serde_json::to_string_pretty(&obj).expect("json-safe strings")
    }
}

/// Formats a fraction as a percentage, matching the paper's style.
pub fn pct(count: usize, total: usize) -> String {
    if total == 0 {
        return "-".to_owned();
    }
    format!("{:.0}", 100.0 * count as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Table X: Demo", &["Module", "Count", "% of Total"]);
        t.row(&["ARPwatch", "34", "61"]);
        t.row(&["EtherHostProbe", "48", "86"]);
        t.note("paper values");
        let s = t.render();
        assert!(s.contains("Table X: Demo"));
        let lines: Vec<&str> = s.lines().collect();
        // Header and first row align on the second column.
        let hpos = lines[2].find("Count").unwrap();
        let rpos = lines[4].find("34").unwrap();
        assert_eq!(hpos, rpos, "{s}");
        assert!(s.contains("* paper values"));
    }

    #[test]
    fn json_export() {
        let mut t = Table::new("T", &["a"]);
        t.row(&["1"]);
        let j = t.to_json();
        assert!(j.contains("\"rows\""));
        assert!(serde_json::from_str::<serde_json::Value>(&j).is_ok());
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(34, 56), "61");
        assert_eq!(pct(56, 56), "100");
        assert_eq!(pct(0, 0), "-");
    }
}
