//! Regenerates Table 6 (campus-wide subnet discovery).
use fremont_netsim::campus::CampusConfig;
fn main() {
    let cfg = CampusConfig::default();
    println!("{}", fremont_bench::exp_discovery::table6(&cfg).render());
}
