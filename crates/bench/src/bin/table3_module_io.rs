//! Regenerates Table 3 (Explorer Module input/output).
fn main() {
    println!("{}", fremont_bench::exp_static::table3().render());
}
