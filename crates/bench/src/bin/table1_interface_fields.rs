//! Regenerates Table 1 (interface record fields).
fn main() {
    println!("{}", fremont_bench::exp_static::table1().render());
}
