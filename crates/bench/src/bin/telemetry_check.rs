//! Telemetry smoke check: the CI gate for the observability layer.
//!
//! Runs a small instrumented campus exploration twice with the same
//! seed and verifies the determinism contract — the JSONL traces and
//! the Prometheus expositions are byte-identical — then parses the
//! exposition and renders the driver-integrated Table 4. Exits
//! non-zero on any mismatch, so CI can call it directly.
//!
//! ```sh
//! cargo run --release -p fremont-bench --bin telemetry_check
//! ```

use fremont_bench::exp_telemetry::{instrumented_run, table4_telemetry};
use fremont_netsim::campus::CampusConfig;
use fremont_telemetry::parse_exposition;

fn main() {
    let mut cfg = CampusConfig::small();
    cfg.cs_traffic = true; // Passive modules need ambient frames to tap.
    let hours = 6;

    println!("running two same-seed instrumented explorations ({hours}h simulated)...");
    let a = instrumented_run(&cfg, hours);
    let b = instrumented_run(&cfg, hours);

    let mut failed = false;
    if a.trace_jsonl == b.trace_jsonl {
        println!(
            "trace determinism: OK ({} records, {} bytes, byte-identical)",
            a.trace_len,
            a.trace_jsonl.len()
        );
    } else {
        eprintln!("trace determinism: FAILED — same-seed runs produced different traces");
        failed = true;
    }
    if a.exposition == b.exposition {
        println!(
            "metrics determinism: OK ({} bytes, byte-identical)",
            a.exposition.len()
        );
    } else {
        eprintln!("metrics determinism: FAILED — same-seed runs produced different expositions");
        failed = true;
    }

    match parse_exposition(&a.exposition) {
        Ok(samples) => println!("exposition parse: OK ({samples} samples)"),
        Err(e) => {
            eprintln!("exposition parse: FAILED — {e}");
            failed = true;
        }
    }

    let active = a.report.rows.iter().filter(|r| r.load.active()).count();
    println!("modules with network activity: {active}/8");
    if active < 6 {
        // The small campus can starve a passive module of traffic, but
        // most of the fleet must demonstrably run.
        eprintln!("module activity: FAILED — expected at least 6 active modules");
        failed = true;
    }

    println!("\n{}", table4_telemetry(&cfg, hours).render());

    if failed {
        std::process::exit(1);
    }
    println!("telemetry check passed");
}
