//! Runs every table and figure in sequence (the full evaluation).
use fremont_netsim::campus::CampusConfig;
fn main() {
    let cfg = CampusConfig::default();
    println!("{}", fremont_bench::exp_static::table1().render());
    println!("{}", fremont_bench::exp_static::table2().render());
    println!("{}", fremont_bench::exp_static::table3().render());
    println!("{}", fremont_bench::exp_runtime::table4(&cfg).render());
    let small = CampusConfig::small();
    println!(
        "{}",
        fremont_bench::exp_telemetry::table4_telemetry(&small, 6).render()
    );
    println!("{}", fremont_bench::exp_discovery::table5(&cfg).render());
    println!("{}", fremont_bench::exp_discovery::table6(&cfg).render());
    let system = fremont_bench::exp_problems::full_campaign(&cfg, 3);
    println!("{}", fremont_bench::exp_problems::table7(&system).render());
    let (t8, report) = fremont_bench::exp_problems::table8(&system);
    println!("{}", t8.render());
    println!("{report}");
    let (_, _, _, ascii) = fremont_bench::exp_problems::figure2(&system);
    println!("Figure 2 (ASCII rendering):\n{ascii}");
}
