//! Regenerates Figure 2: the discovered campus topology, exported as a
//! SunNet-Manager-style dump, Graphviz dot, and an ASCII map. Files are
//! written next to the target directory.
use fremont_netsim::campus::CampusConfig;
use std::fs;
fn main() {
    let system = fremont_bench::exp_problems::full_campaign(&CampusConfig::default(), 1);
    let (graph, sunnet, dot, ascii) = fremont_bench::exp_problems::figure2(&system);
    let dir = std::path::Path::new("target/fremont-figures");
    fs::create_dir_all(dir).expect("create output dir");
    fs::write(dir.join("figure2.snm"), &sunnet).expect("write snm");
    fs::write(dir.join("figure2.dot"), &dot).expect("write dot");
    fs::write(dir.join("figure2.txt"), &ascii).expect("write txt");
    println!("{ascii}");
    println!(
        "wrote {} gateways / {} subnets to target/fremont-figures/{{figure2.snm,figure2.dot,figure2.txt}}",
        graph.gateways.len(),
        graph.subnets.len()
    );
}
