//! Regenerates Table 8 (problems uncovered) over the fault-injected campus.
use fremont_netsim::campus::CampusConfig;
fn main() {
    let system = fremont_bench::exp_problems::full_campaign(&CampusConfig::default(), 3);
    let (table, report) = fremont_bench::exp_problems::table8(&system);
    println!("{}", table.render());
    println!("{report}");
}
