//! Regenerates Table 5 (interface discovery on the departmental subnet).
use fremont_netsim::campus::CampusConfig;
fn main() {
    let cfg = CampusConfig::default();
    println!("{}", fremont_bench::exp_discovery::table5(&cfg).render());
}
