//! Regenerates Table 7 (characteristics discovered by a full campaign).
use fremont_netsim::campus::CampusConfig;
fn main() {
    let system = fremont_bench::exp_problems::full_campaign(&CampusConfig::default(), 2);
    println!("{}", fremont_bench::exp_problems::table7(&system).render());
}
