//! Regenerates Table 4 (module characteristics: intervals, completion
//! time, network and system load).
use fremont_netsim::campus::CampusConfig;
fn main() {
    let cfg = CampusConfig::default();
    println!("{}", fremont_bench::exp_runtime::table4(&cfg).render());
}
