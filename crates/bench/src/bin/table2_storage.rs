//! Regenerates Table 2 (Journal storage requirements).
fn main() {
    println!("{}", fremont_bench::exp_static::table2().render());
}
