//! Telemetry experiment: the driver-integrated Table 4 plus the
//! observability smoke check.
//!
//! Where [`crate::exp_runtime`] measures each module in isolation on a
//! quiet campus, this experiment runs the whole Discovery Manager with a
//! recording [`Telemetry`] sink attached and reports what the
//! *telemetry layer itself* saw: per-module packet counters, the
//! driver's [`ModuleLoadReport`] beside the paper's Table 4 columns,
//! and the Prometheus exposition — all keyed to simulated time, so two
//! same-seed runs produce byte-identical output.

use fremont_core::load::ModuleLoadReport;
use fremont_core::Fremont;
use fremont_netsim::campus::CampusConfig;
use fremont_netsim::time::SimDuration;
use fremont_telemetry::{parse_exposition, Recorder, Telemetry};

use crate::tables::Table;

/// Output of one instrumented exploration.
pub struct TelemetryRun {
    /// The driver's measured per-module load.
    pub report: ModuleLoadReport,
    /// Prometheus text exposition of every metric the run produced.
    pub exposition: String,
    /// The span/event trace as JSONL.
    pub trace_jsonl: String,
    /// Span/event records captured (after ring-buffer eviction).
    pub trace_len: usize,
}

/// Explores `cfg` for `hours` simulated hours with a recording sink.
pub fn instrumented_run(cfg: &CampusConfig, hours: u64) -> TelemetryRun {
    let (telemetry, recorder): (Telemetry, std::sync::Arc<Recorder>) = Telemetry::recording();
    let mut system = Fremont::over_campus_with_telemetry(cfg, telemetry);
    system
        .explore(SimDuration::from_hours(hours))
        .expect("in-memory explore cannot fail to flush");
    system.driver.publish_metrics();
    TelemetryRun {
        report: system.load_report(),
        exposition: recorder.expose(),
        trace_jsonl: recorder.trace_jsonl(),
        trace_len: recorder.trace_len(),
    }
}

/// Renders the driver-integrated Table 4: measured counters from the
/// telemetry layer beside the paper's published characteristics.
pub fn table4_telemetry(cfg: &CampusConfig, hours: u64) -> Table {
    let run = instrumented_run(cfg, hours);
    let samples = parse_exposition(&run.exposition).expect("exposition must parse");
    let mut t = Table::new(
        "Table 4 (driver-integrated): module load as seen by telemetry",
        &[
            "Module",
            "Runs",
            "Sent",
            "Recv",
            "Tapped",
            "Pkts/sec",
            "Paper load",
            "Paper time",
        ],
    );
    for row in &run.report.rows {
        t.row(&[
            row.source.name().to_owned(),
            row.load.runs.to_string(),
            row.load.packets_sent.to_string(),
            row.load.packets_received.to_string(),
            row.load.frames_tapped.to_string(),
            format!("{:.2}", row.load.pkts_per_sec()),
            row.paper_network_load.to_owned(),
            row.paper_completion.to_owned(),
        ]);
    }
    t.note(&format!(
        "{samples} exposition samples; {} trace records; all timestamps are simulated time",
        run.trace_len
    ));
    t
}
