//! # fremont-bench
//!
//! The experiment harness: regenerates every table and figure from the
//! paper's evaluation section against the simulated campus, plus the
//! Criterion micro-benchmarks (`benches/`).
//!
//! Binaries (`src/bin/`): one per table/figure —
//! `table1_interface_fields`, `table2_storage`, `table3_module_io`,
//! `table4_module_characteristics`, `table5_interface_discovery`,
//! `table6_subnet_discovery`, `table7_characteristics`,
//! `table8_problems`, `figure2_topology`, and `all_experiments`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod exp_discovery;
pub mod exp_problems;
pub mod exp_runtime;
pub mod exp_static;
pub mod exp_telemetry;
pub mod tables;

pub use tables::{pct, Table};
