//! Tables 7 and 8, and Figure 2: what a full Fremont campaign discovers,
//! the problems it uncovers, and the topology map it can draw.

use fremont_core::{Fremont, ProblemReport, TopologyGraph};
use fremont_journal::query::{InterfaceQuery, SubnetQuery};
use fremont_journal::server::JournalAccess;
use fremont_netsim::campus::CampusConfig;
use fremont_netsim::time::SimDuration;

use crate::tables::Table;

/// Runs a full campaign: explore, inject the mid-life faults, keep
/// exploring. Returns the deployment for further inspection.
pub fn full_campaign(cfg: &CampusConfig, days: u64) -> Fremont {
    let mut system = Fremont::over_campus(cfg);
    let faults = system.truth.faults.clone();
    // First day: healthy network. (In-memory journal: flush cannot fail.)
    system
        .explore(SimDuration::from_hours(6))
        .expect("in-memory flush");
    // Then the faults activate (duplicate clone boots; hardware replaced).
    let sim = &mut system.driver.sim;
    if let Some((_, clone)) = &faults.duplicate_ip_pair {
        if let Some(id) = sim.node_by_name(clone) {
            sim.set_node_up(id, true);
        }
    }
    if let Some((old, new)) = &faults.hardware_change {
        let old_id = sim.node_by_name(old);
        let new_id = sim.node_by_name(new);
        if let (Some(o), Some(n)) = (old_id, new_id) {
            sim.set_node_up(o, false);
            sim.set_node_up(n, true);
        }
    }
    system
        .explore(SimDuration::from_days(days.max(1)) - SimDuration::from_hours(6))
        .expect("in-memory flush");
    system
}

/// Table 7: characteristics discovered by the prototype.
pub fn table7(system: &Fremont) -> Table {
    let journal = &system.journal;
    let ifaces = journal
        .interfaces(&InterfaceQuery::all())
        .unwrap_or_default();
    let with = |f: &dyn Fn(&fremont_journal::InterfaceRecord) -> bool| {
        ifaces.iter().filter(|r| f(r)).count()
    };
    let gws = journal.gateways().unwrap_or_default();
    let subs = journal.subnets(&SubnetQuery::all()).unwrap_or_default();

    let mut t = Table::new(
        "Table 7: Characteristics Discovered by Prototype",
        &["Record", "Characteristic", "Populated"],
    );
    t.row(&[
        "Interfaces".to_owned(),
        "Ethernet Address".to_owned(),
        with(&|r| r.mac.is_some()).to_string(),
    ]);
    t.row(&[
        "".to_owned(),
        "IP Address".to_owned(),
        with(&|r| r.ip.is_some()).to_string(),
    ]);
    t.row(&[
        "".to_owned(),
        "Name".to_owned(),
        with(&|r| r.name.is_some()).to_string(),
    ]);
    t.row(&[
        "".to_owned(),
        "Subnet Mask".to_owned(),
        with(&|r| r.mask.is_some()).to_string(),
    ]);
    t.row(&[
        "".to_owned(),
        "Gateway Membership".to_owned(),
        with(&|r| r.gateway.is_some()).to_string(),
    ]);
    t.row(&[
        "Gateways".to_owned(),
        "Interfaces on GW".to_owned(),
        gws.iter()
            .filter(|g| !g.interfaces.is_empty())
            .count()
            .to_string(),
    ]);
    t.row(&[
        "".to_owned(),
        "Subnets connected (topology)".to_owned(),
        gws.iter()
            .filter(|g| !g.subnets.is_empty())
            .count()
            .to_string(),
    ]);
    t.row(&[
        "Subnets".to_owned(),
        "Gateways on Subnet".to_owned(),
        subs.iter()
            .filter(|s| !s.gateways.is_empty())
            .count()
            .to_string(),
    ]);
    t.note(&format!(
        "journal totals: {} interfaces, {} gateways, {} subnets",
        ifaces.len(),
        gws.len(),
        subs.len()
    ));
    t
}

/// Table 8: problems uncovered, against the injected fault inventory.
pub fn table8(system: &Fremont) -> (Table, ProblemReport) {
    // Stale horizon: two days without live verification; minimum overlap
    // for duplicates: one hour of coexistence.
    let report = system.problems(2 * 86400, 3600);
    let f = &system.truth.faults;
    let mut t = Table::new(
        "Table 8: Problems Uncovered by Prototype",
        &["Problem", "Findings", "Injected", "Caught?"],
    );
    let dup_found = !report.duplicates.is_empty() && f.duplicate_ip_pair.is_some();
    let removed_fqdn = f.removed_host.clone().map(|h| format!("{h}.colorado.edu"));
    let stale_found = report.stale.iter().any(|s| s.name == removed_fqdn);
    let hw_found = !report.hardware_changes.is_empty();
    let mask_found = !report.mask_conflicts.is_empty();
    let prom_found = !report.promiscuous.is_empty();
    t.row(&[
        "IP Addresses No Longer in Use".to_owned(),
        report.stale.len().to_string(),
        f.removed_host.clone().unwrap_or_else(|| "-".into()),
        yesno(stale_found),
    ]);
    t.row(&[
        "Hardware Changes".to_owned(),
        report.hardware_changes.len().to_string(),
        f.hardware_change
            .clone()
            .map(|(a, b)| format!("{a}→{b}"))
            .unwrap_or_else(|| "-".into()),
        yesno(hw_found),
    ]);
    t.row(&[
        "Inconsistent Network Masks".to_owned(),
        report.mask_conflicts.len().to_string(),
        f.wrong_mask_host.clone().unwrap_or_else(|| "-".into()),
        yesno(mask_found),
    ]);
    t.row(&[
        "Duplicate Address Assignments".to_owned(),
        report.duplicates.len().to_string(),
        f.duplicate_ip_pair
            .clone()
            .map(|(a, b)| format!("{a}+{b}"))
            .unwrap_or_else(|| "-".into()),
        yesno(dup_found),
    ]);
    t.row(&[
        "Promiscuous RIP Hosts".to_owned(),
        report.promiscuous.len().to_string(),
        f.promiscuous_rip_host.clone().unwrap_or_else(|| "-".into()),
        yesno(prom_found),
    ]);
    (t, report)
}

fn yesno(b: bool) -> String {
    (if b { "yes" } else { "NO" }).to_owned()
}

/// Figure 2: the discovered topology in its three renderings.
pub fn figure2(system: &Fremont) -> (TopologyGraph, String, String, String) {
    let graph = system.topology();
    let sunnet = graph.to_sunnet();
    let dot = graph.to_dot();
    let ascii = graph.to_ascii();
    (graph, sunnet, dot, ascii)
}
