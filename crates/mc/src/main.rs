//! `fremont-mc`: bounded model checking over fault interleavings.
//!
//! ```text
//! fremont-mc [--budget N] [--deep] [--seed N] [--json]
//!            [--require-states N] [--emit-dir DIR] [--assert-quiet]
//!            [--replay FIXTURE.json]
//! ```
//!
//! Exit codes: `0` all invariants hold (or replay reproduced), `1`
//! invariant violations found (or replay failed to reproduce), `2`
//! usage or infrastructure error.

use std::path::PathBuf;
use std::process::ExitCode;

use fremont_mc::{replay, McConfig, ModelChecker};
use fremont_telemetry::Telemetry;

struct Args {
    budget: usize,
    deep: bool,
    seed: u64,
    json: bool,
    require_states: Option<u64>,
    emit_dir: PathBuf,
    assert_quiet: bool,
    replay: Option<PathBuf>,
}

const USAGE: &str = "usage: fremont-mc [--budget N] [--deep] [--seed N] [--json] \
[--require-states N] [--emit-dir DIR] [--assert-quiet] [--replay FIXTURE.json]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        budget: 2000,
        deep: false,
        seed: 1993,
        json: false,
        require_states: None,
        emit_dir: PathBuf::from("scenarios"),
        assert_quiet: false,
        replay: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--budget" => {
                args.budget = value("--budget")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?;
            }
            "--deep" => args.deep = true,
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--json" => args.json = true,
            "--require-states" => {
                args.require_states = Some(
                    value("--require-states")?
                        .parse()
                        .map_err(|e| format!("--require-states: {e}"))?,
                );
            }
            "--emit-dir" => args.emit_dir = PathBuf::from(value("--emit-dir")?),
            "--assert-quiet" => args.assert_quiet = true,
            "--replay" => args.replay = Some(PathBuf::from(value("--replay")?)),
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

fn run_replay(path: &std::path::Path, json: bool) -> ExitCode {
    match replay(path) {
        Ok((fixture, violations)) => {
            let reproduced = !violations.is_empty();
            if json {
                let out = serde_json::json!({
                    "fixture": path.display().to_string(),
                    "invariant": fixture.invariant,
                    "seed": fixture.seed,
                    "reproduced": reproduced,
                    "violations": violations.iter().map(|v| v.detail.clone()).collect::<Vec<_>>(),
                });
                match serde_json::to_string(&out) {
                    Ok(line) => println!("{line}"),
                    Err(e) => eprintln!("fremont-mc: json encoding failed: {e}"),
                }
            } else if reproduced {
                println!(
                    "reproduced [{}] with {} event(s): {}",
                    fixture.invariant,
                    fixture.plan.len(),
                    violations[0].detail
                );
            } else {
                println!(
                    "fixture [{}] did NOT reproduce (invariant holds now)",
                    fixture.invariant
                );
            }
            if reproduced {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("fremont-mc: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.replay {
        return run_replay(path, args.json);
    }

    let (telemetry, recorder) = Telemetry::recording();
    let mut cfg = McConfig::new(args.budget);
    cfg.seed = args.seed;
    cfg.max_depth = if args.deep { 4 } else { 3 };
    cfg.assert_quiet = args.assert_quiet;
    cfg.emit_dir = Some(args.emit_dir);
    cfg.telemetry = telemetry;
    let report = match ModelChecker::new(cfg).run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fremont-mc: {e}");
            return ExitCode::from(2);
        }
    };

    if args.json {
        let out = serde_json::json!({
            "seed": args.seed,
            "budget": args.budget,
            "deep": args.deep,
            "states_explored": report.states_explored,
            "states_pruned": report.states_pruned,
            "schedules_checked": report.schedules_checked,
            "distinct_states": report.distinct_states,
            "violations": report.violations,
            "budget_exhausted": report.budget_exhausted,
            "quiescent_at_secs": report.quiescent_at_secs,
            "counterexamples": report
                .counterexamples
                .iter()
                .map(|c| {
                    serde_json::json!({
                        "invariant": c.fixture.invariant,
                        "detail": c.fixture.detail,
                        "found_in": c.found_in,
                        "original_events": c.original_len,
                        "minimal_events": c.fixture.plan.len(),
                        "fixture": c.path.as_ref().map(|p| p.display().to_string()),
                    })
                })
                .collect::<Vec<_>>(),
            "metrics": recorder.expose(),
        });
        match serde_json::to_string(&out) {
            Ok(line) => println!("{line}"),
            Err(e) => eprintln!("fremont-mc: json encoding failed: {e}"),
        }
    } else {
        println!(
            "fremont-mc: seed {} budget {} — explored {} ({} distinct end states), \
             pruned {}, checked {} schedules, quiescent at {}s{}",
            args.seed,
            args.budget,
            report.states_explored,
            report.distinct_states,
            report.states_pruned,
            report.schedules_checked,
            report.quiescent_at_secs,
            if report.budget_exhausted {
                " (budget exhausted)"
            } else {
                ""
            },
        );
        if report.violations == 0 {
            println!("all invariants hold across every checked interleaving");
        } else {
            println!("{} invariant violation(s):", report.violations);
            for c in &report.counterexamples {
                println!(
                    "  [{}] first seen in `{}` ({} events), minimized to {} event(s)",
                    c.fixture.invariant,
                    c.found_in,
                    c.original_len,
                    c.fixture.plan.len(),
                );
                println!("    {}", c.fixture.detail);
                if let Some(p) = &c.path {
                    println!("    fixture: {}", p.display());
                }
            }
        }
    }

    let mut failed = report.violations > 0;
    if let Some(need) = args.require_states {
        if report.states_explored < need {
            eprintln!(
                "fremont-mc: explored {} states, required at least {need}",
                report.states_explored
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
