//! The bounded fault-schedule space the checker enumerates.
//!
//! A schedule is a set of *(time bucket, fault template)* pairs: each
//! template is one concrete [`FaultKind`] aimed at a fixed target on
//! the micro campus, and each bucket is a fixed simulated instant.
//! Bounds: every template fires at most once per schedule, at most
//! [`Space::max_per_bucket`] faults share a bucket, and a schedule has
//! at most `depth` events. Enumeration is iterative-deepening DFS in a
//! canonical order (ascending pair index, which is bucket-major), so
//! no permutation of the same event set is ever visited twice and
//! every prefix of a schedule is itself a canonical prefix.

use std::net::Ipv4Addr;

use fremont_netsim::faults::{FaultKind, FaultPlan};
use fremont_netsim::time::SimTime;

/// Whether a template's target names a node or a segment (used to
/// validate the space against the live topology before checking).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetNs {
    /// The target must be a node name.
    Node,
    /// The target must be a segment name.
    Segment,
}

/// One concrete fault aimed at a fixed target.
#[derive(Debug, Clone)]
pub struct Template {
    /// Short human label, used in schedule descriptions.
    pub label: &'static str,
    /// The fault to inject.
    pub kind: FaultKind,
}

#[derive(Debug, Clone, Copy)]
struct Pair {
    bucket: usize,
    template: usize,
}

/// A schedule: indices into the space's canonical pair list, strictly
/// ascending.
pub type Schedule = Vec<u16>;

/// The enumerable space: buckets × templates with bounds.
#[derive(Debug, Clone)]
pub struct Space {
    /// The simulated instants faults may fire at. Bucket 0 is the
    /// "before first sweep" slot reserved for the wrong-mask fault.
    pub buckets: Vec<SimTime>,
    templates: Vec<Template>,
    pairs: Vec<Pair>,
    /// Maximum concurrent faults per bucket.
    pub max_per_bucket: usize,
}

impl Space {
    /// The space over [`CampusConfig::micro`]'s topology: ten fault
    /// templates over three mid-run buckets (2 h, 5 h, 8 h), plus a
    /// wrong-mask template pinned to a pre-sweep bucket — the Subnet
    /// Mask module only queries interfaces that still lack a mask
    /// observation, so a late wrong mask is undiscoverable by design.
    ///
    /// [`CampusConfig::micro`]: fremont_netsim::campus::CampusConfig::micro
    pub fn micro() -> Self {
        let templates = vec![
            Template {
                label: "crash(piper)",
                kind: FaultKind::NodeCrash {
                    node: "piper".to_owned(),
                },
            },
            Template {
                label: "reboot(piper)",
                kind: FaultKind::NodeReboot {
                    node: "piper".to_owned(),
                },
            },
            Template {
                label: "gwdeath(cs-gw)",
                kind: FaultKind::GatewayDeath {
                    gateway: "cs-gw".to_owned(),
                },
            },
            Template {
                label: "partition(cs-net)",
                kind: FaultKind::Partition {
                    segment: "cs-net".to_owned(),
                },
            },
            Template {
                label: "heal(cs-net)",
                kind: FaultKind::Heal {
                    segment: "cs-net".to_owned(),
                },
            },
            Template {
                label: "degrade(cs-net)",
                kind: FaultKind::Degrade {
                    segment: "cs-net".to_owned(),
                    extra_loss: 0.3,
                    extra_latency_micros: 25_000,
                },
            },
            Template {
                label: "cleardegrade(cs-net)",
                kind: FaultKind::ClearDegrade {
                    segment: "cs-net".to_owned(),
                },
            },
            Template {
                label: "dupip(bruno=128.138.243.11)",
                kind: FaultKind::DuplicateIp {
                    node: "bruno".to_owned(),
                    ip: Ipv4Addr::new(128, 138, 243, 11),
                },
            },
            Template {
                label: "skew(bruno,+48h)",
                kind: FaultKind::ClockSkew {
                    node: "bruno".to_owned(),
                    skew_micros: 48 * 3_600_000_000,
                },
            },
            Template {
                label: "skew(spot,+48h)",
                kind: FaultKind::ClockSkew {
                    node: "spot".to_owned(),
                    skew_micros: 48 * 3_600_000_000,
                },
            },
            // Bucket-0 only (see doc comment).
            Template {
                label: "wrongmask(anchor,/16)",
                kind: FaultKind::WrongMask {
                    node: "anchor".to_owned(),
                    prefix_len: 16,
                },
            },
        ];
        let wrong_mask = templates.len() - 1;
        let buckets = vec![
            SimTime(1_000_000),
            SimTime::from_hours(2),
            SimTime::from_hours(5),
            SimTime::from_hours(8),
        ];
        let mut pairs = vec![Pair {
            bucket: 0,
            template: wrong_mask,
        }];
        for bucket in 1..buckets.len() {
            for template in 0..wrong_mask {
                pairs.push(Pair { bucket, template });
            }
        }
        Space {
            buckets,
            templates,
            pairs,
            max_per_bucket: 2,
        }
    }

    /// Number of (bucket, template) pairs.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Every template's target with its namespace, for validation
    /// against the live topology.
    pub fn targets(&self) -> Vec<(&str, TargetNs)> {
        self.templates
            .iter()
            .map(|t| {
                let ns = match &t.kind {
                    FaultKind::Partition { .. }
                    | FaultKind::Heal { .. }
                    | FaultKind::Degrade { .. }
                    | FaultKind::ClearDegrade { .. } => TargetNs::Segment,
                    _ => TargetNs::Node,
                };
                (t.kind.target(), ns)
            })
            .collect()
    }

    /// The concrete [`FaultPlan`] for a schedule.
    pub fn plan_for(&self, schedule: &[u16]) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for &p in schedule {
            let pair = self.pairs[usize::from(p)];
            plan = plan.at(
                self.buckets[pair.bucket],
                self.templates[pair.template].kind.clone(),
            );
        }
        plan
    }

    /// Human description of a schedule, e.g.
    /// `crash(piper)@7200s + heal(cs-net)@28800s`.
    pub fn describe(&self, schedule: &[u16]) -> String {
        if schedule.is_empty() {
            return "(empty)".to_owned();
        }
        let parts: Vec<String> = schedule
            .iter()
            .map(|&p| {
                let pair = self.pairs[usize::from(p)];
                format!(
                    "{}@{}s",
                    self.templates[pair.template].label,
                    self.buckets[pair.bucket].as_secs()
                )
            })
            .collect();
        parts.join(" + ")
    }

    /// The pairs of `schedule` whose bucket index is `<= bucket`: the
    /// canonical prefix whose effects a state fingerprint taken at that
    /// bucket's boundary reflects.
    pub fn prefix_at(&self, schedule: &[u16], bucket: usize) -> Schedule {
        schedule
            .iter()
            .copied()
            .filter(|&p| self.pairs[usize::from(p)].bucket <= bucket)
            .collect()
    }

    /// Whether `p` may extend `cur` (template unused, bucket not full).
    fn compatible(&self, cur: &[u16], p: u16) -> bool {
        let pair = self.pairs[usize::from(p)];
        let mut in_bucket = 1;
        for &q in cur {
            let qp = self.pairs[usize::from(q)];
            if qp.template == pair.template {
                return false;
            }
            if qp.bucket == pair.bucket {
                in_bucket += 1;
            }
        }
        in_bucket <= self.max_per_bucket
    }

    /// Iterative-deepening DFS over all schedules of size `1..=depth`,
    /// shallowest first. `visit` returns `false` to stop the whole
    /// enumeration (budget exhausted).
    pub fn enumerate(&self, depth: usize, visit: &mut dyn FnMut(&[u16]) -> bool) {
        for want in 1..=depth {
            let mut cur: Schedule = Vec::with_capacity(want);
            if !self.dfs(want, 0, &mut cur, visit) {
                return;
            }
        }
    }

    fn dfs(
        &self,
        want: usize,
        start: usize,
        cur: &mut Schedule,
        visit: &mut dyn FnMut(&[u16]) -> bool,
    ) -> bool {
        if cur.len() == want {
            return visit(cur);
        }
        // Not enough pairs left to reach `want`: cut the branch.
        if self.pairs.len() - start < want - cur.len() {
            return true;
        }
        for p in start..self.pairs.len() {
            let id = p as u16;
            if !self.compatible(cur, id) {
                continue;
            }
            cur.push(id);
            let keep_going = self.dfs(want, p + 1, cur, visit);
            cur.pop();
            if !keep_going {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_enumeration_has_no_duplicates() {
        let space = Space::micro();
        let mut seen = std::collections::HashSet::new();
        let mut count = 0u64;
        space.enumerate(2, &mut |s| {
            assert!(s.windows(2).all(|w| w[0] < w[1]), "not canonical: {s:?}");
            assert!(seen.insert(s.to_vec()), "duplicate: {s:?}");
            count += 1;
            true
        });
        // 31 pairs; depth 1 = 31; depth 2 = C(31,2) minus same-template
        // bucket pairs (10 templates × C(3,2) = 30) = 435.
        assert_eq!(count, 31 + 435);
    }

    #[test]
    fn bucket_concurrency_bound_is_enforced() {
        let space = Space::micro();
        space.enumerate(3, &mut |s| {
            let plan = space.plan_for(s);
            for t in &space.buckets {
                let n = plan.events.iter().filter(|e| e.at() == *t).count();
                assert!(n <= space.max_per_bucket, "{}", space.describe(s));
            }
            true
        });
    }

    #[test]
    fn enumeration_stops_on_false() {
        let space = Space::micro();
        let mut count = 0;
        space.enumerate(3, &mut |_| {
            count += 1;
            count < 10
        });
        assert_eq!(count, 10);
    }

    #[test]
    fn prefix_at_splits_by_bucket() {
        let space = Space::micro();
        // Pair 0 is bucket 0; pair 1 is bucket 1; last pair is bucket 3.
        let last = (space.pair_count() - 1) as u16;
        let s = vec![0, 1, last];
        assert_eq!(space.prefix_at(&s, 0), vec![0]);
        assert_eq!(space.prefix_at(&s, 1), vec![0, 1]);
        assert_eq!(space.prefix_at(&s, 3), s);
    }

    #[test]
    fn plans_fire_in_bucket_order() {
        let space = Space::micro();
        space.enumerate(2, &mut |s| {
            let plan = space.plan_for(s);
            assert!(plan.events.windows(2).all(|w| w[0].at() <= w[1].at()));
            true
        });
    }
}
