//! The bounded model-checking loop: execute, fingerprint, prune,
//! check, minimize, report.
//!
//! Every schedule runs on a fresh same-seed micro campus to a fixed
//! 16-hour horizon (fixed, not adaptive: the differential invariants
//! compare findings against the empty-schedule baseline, which is only
//! meaningful at an identical `now`). At each bucket boundary the
//! runner takes a combined fingerprint of the canonical Journal
//! snapshot and the simulator's ground state; two canonical prefixes
//! with equal fingerprints at the same boundary have converged, so a
//! schedule whose prefix aliases an already-run schedule's prefix is
//! *pruned* — its evaluation is reused instead of re-simulated, and
//! its invariants are still checked against its own fault plan.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use fremont_core::fremont::Fremont;
use fremont_core::invariants::{
    check_baseline, check_schedule, InvariantConfig, RunEvaluation, Violation,
};
use fremont_netsim::campus::CampusConfig;
use fremont_netsim::faults::FaultPlan;
use fremont_netsim::time::{SimDuration, SimTime};
use fremont_telemetry::Telemetry;

use crate::space::{Schedule, Space, TargetNs};

/// Control-window analysis parameters: `stale_after` 4 days (clean on
/// a quiet baseline), `min_overlap` 1 hour.
pub const CONTROL_WINDOW: (u64, u64) = (4 * 86_400, 3_600);

/// Tight-window analysis parameters: `stale_after` 6 hours (surfaces
/// liveness faults within the horizon), `min_overlap` 30 minutes.
pub const TIGHT_WINDOW: (u64, u64) = (6 * 3_600, 1_800);

/// The fixed run horizon.
pub const HORIZON: SimDuration = SimDuration(16 * 3_600_000_000);

/// How far past a bucket boundary the state fingerprint is taken
/// (bucket events fire *at* the boundary).
const PROBE_LAG: SimDuration = SimDuration(1_000_000);

/// A checker-level failure (not an invariant violation): bad topology,
/// I/O trouble writing fixtures, a baseline that never converges.
#[derive(Debug)]
pub struct McError(pub String);

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for McError {}

impl From<std::io::Error> for McError {
    fn from(e: std::io::Error) -> Self {
        McError(format!("i/o error: {e}"))
    }
}

/// Checker configuration (CLI flags map 1:1 onto this).
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Campus generation seed.
    pub seed: u64,
    /// Maximum schedules to *execute* (pruned schedules are free).
    pub budget: usize,
    /// Maximum schedule depth (events per schedule).
    pub max_depth: usize,
    /// Enable the deliberately broken `assert-quiet` invariant, to
    /// exercise the counterexample pipeline.
    pub assert_quiet: bool,
    /// Where counterexample fixtures are written (`None` = don't).
    pub emit_dir: Option<PathBuf>,
    /// Telemetry sink for the progress counters.
    pub telemetry: Telemetry,
}

impl McConfig {
    /// Defaults matching the CI job: seed 1993, depth 3.
    pub fn new(budget: usize) -> Self {
        McConfig {
            seed: 1993,
            budget,
            max_depth: 3,
            assert_quiet: false,
            emit_dir: None,
            telemetry: Telemetry::noop(),
        }
    }
}

/// A minimal counterexample, as serialized into `scenarios/*.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterexampleFixture {
    /// The violated invariant's stable identifier.
    pub invariant: String,
    /// Human-readable account of the violation.
    pub detail: String,
    /// Campus seed the violation reproduces under.
    pub seed: u64,
    /// Run horizon in seconds.
    pub horizon_secs: u64,
    /// The minimized fault plan.
    pub plan: FaultPlan,
}

/// One found violation with its minimized reproduction.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The fixture content (invariant, detail, minimized plan).
    pub fixture: CounterexampleFixture,
    /// Schedule description before minimization.
    pub found_in: String,
    /// Events in the schedule the violation was first seen in.
    pub original_len: usize,
    /// Where the fixture was written, if emission was enabled.
    pub path: Option<PathBuf>,
}

/// The checker's summary.
#[derive(Debug)]
pub struct McReport {
    /// Schedules actually executed on the simulator.
    pub states_explored: u64,
    /// Schedules whose evaluation was reused via prefix aliasing.
    pub states_pruned: u64,
    /// Schedules whose invariants were checked (explored + pruned).
    pub schedules_checked: u64,
    /// Distinct end-of-run fingerprints among executed schedules.
    pub distinct_states: u64,
    /// Total (schedule, invariant) violations observed.
    pub violations: u64,
    /// First counterexample per violated invariant, minimized.
    pub counterexamples: Vec<Counterexample>,
    /// When the baseline's topology census went structurally quiescent.
    pub quiescent_at_secs: u64,
    /// Whether enumeration stopped on the execution budget.
    pub budget_exhausted: bool,
}

/// One run's artifacts.
struct RunOutcome {
    eval: RunEvaluation,
    /// Combined (journal, ground) fingerprint at each bucket boundary.
    boundary_fps: Vec<u64>,
    final_fp: u64,
}

/// Executes schedules on fresh same-seed deployments.
struct Executor {
    seed: u64,
    buckets: Vec<SimTime>,
}

impl Executor {
    fn system_fingerprint(f: &Fremont) -> u64 {
        let mut h = fremont_net::Fnv1a::new();
        h.write_u64(f.journal.read(|j| j.fingerprint()));
        h.write_u64(f.driver.sim.state_fingerprint());
        h.finish()
    }

    /// Runs one plan to the horizon, probing at bucket boundaries.
    fn execute(&self, plan: &FaultPlan) -> Result<RunOutcome, McError> {
        let mut cfg = CampusConfig::micro(self.seed);
        cfg.fault_plan = plan.clone();
        let mut f = Fremont::over_campus(&cfg);
        // Cap module runtime so ARPwatch windows stay bursty and the
        // 16-hour horizon contains several re-verification rounds.
        f.driver
            .set_max_module_runtime(Some(SimDuration::from_hours(1)));
        let mut boundary_fps = Vec::with_capacity(self.buckets.len());
        for &bucket in &self.buckets {
            let target = bucket + PROBE_LAG;
            f.explore(target.since(f.driver.sim.now()))?;
            boundary_fps.push(Self::system_fingerprint(&f));
        }
        let end = SimTime::ZERO + HORIZON;
        f.explore(end.since(f.driver.sim.now()))?;
        let control = f.problems(CONTROL_WINDOW.0, CONTROL_WINDOW.1);
        let tight = f.problems(TIGHT_WINDOW.0, TIGHT_WINDOW.1);
        Ok(RunOutcome {
            eval: RunEvaluation::new(&control, &tight),
            final_fp: Self::system_fingerprint(&f),
            boundary_fps,
        })
    }

    /// Verifies discovery converges well before the first mid-run
    /// bucket, so faults land on a settled census.
    fn quiescence_check(&self) -> Result<u64, McError> {
        let mut f = Fremont::over_campus(&CampusConfig::micro(self.seed));
        f.driver
            .set_max_module_runtime(Some(SimDuration::from_hours(1)));
        match f.explore_until_quiescent(SimDuration::from_hours(2), SimDuration::from_mins(30))? {
            Some(at) => Ok(at.as_secs()),
            None => Err(McError(
                "baseline discovery did not go quiescent within 2 simulated hours".to_owned(),
            )),
        }
    }
}

/// The model checker.
pub struct ModelChecker {
    cfg: McConfig,
    space: Space,
    exec: Executor,
    inv_cfg: InvariantConfig,
    /// Evaluation of every schedule checked so far (executed or
    /// pruned), keyed by canonical schedule.
    evals: HashMap<Schedule, RunEvaluation>,
    /// Boundary fingerprint of each *executed* canonical prefix.
    prefix_fp: HashMap<(usize, Schedule), u64>,
    /// First canonical prefix seen with a given (boundary, fp).
    alias: HashMap<(usize, u64), Schedule>,
    final_fps: HashSet<u64>,
}

impl ModelChecker {
    /// Builds a checker over the micro-campus space.
    pub fn new(cfg: McConfig) -> Self {
        let space = Space::micro();
        let exec = Executor {
            seed: cfg.seed,
            buckets: space.buckets.clone(),
        };
        ModelChecker {
            cfg,
            space,
            exec,
            inv_cfg: InvariantConfig::for_micro("bruno"),
            evals: HashMap::new(),
            prefix_fp: HashMap::new(),
            alias: HashMap::new(),
            final_fps: HashSet::new(),
        }
    }

    /// Validates every template target against the generated topology,
    /// so a space written for one campus fails loudly on another, and
    /// captures the pristine node → address map the invariants use to
    /// detect duplicate-address masking.
    fn validate_space(&mut self) -> Result<(), McError> {
        let f = Fremont::over_campus(&CampusConfig::micro(self.cfg.seed));
        let nodes: Vec<String> = f
            .driver
            .sim
            .node_names()
            .into_iter()
            .map(str::to_owned)
            .collect();
        let segments: Vec<String> = f
            .driver
            .sim
            .segment_names()
            .into_iter()
            .map(str::to_owned)
            .collect();
        for (target, ns) in self.space.targets() {
            let (pool, what) = match ns {
                TargetNs::Node => (&nodes, "node"),
                TargetNs::Segment => (&segments, "segment"),
            };
            if !pool.iter().any(|n| n == target) {
                return Err(McError(format!(
                    "template target {what} `{target}` does not exist on the micro campus"
                )));
            }
        }
        if !nodes.iter().any(|n| n == &self.inv_cfg.explorer_host) {
            return Err(McError(format!(
                "explorer host `{}` not found",
                self.inv_cfg.explorer_host
            )));
        }
        self.inv_cfg.node_ips = f
            .driver
            .sim
            .node_ips()
            .into_iter()
            .map(|(n, ip)| (n.to_owned(), ip))
            .collect();
        Ok(())
    }

    /// Records an executed run's prefix fingerprints.
    fn record_prefixes(&mut self, schedule: &[u16], outcome: &RunOutcome) {
        for (k, &fp) in outcome.boundary_fps.iter().enumerate() {
            let prefix = self.space.prefix_at(schedule, k);
            self.prefix_fp.insert((k, prefix.clone()), fp);
            self.alias.entry((k, fp)).or_insert(prefix);
        }
    }

    /// Attempts to prune `schedule`: if one of its canonical prefixes
    /// fingerprints identically to a different, earlier-seen prefix,
    /// and the rewritten schedule (alias prefix + identical suffix)
    /// has already been checked, its evaluation carries over.
    fn try_prune(&self, schedule: &[u16]) -> Option<RunEvaluation> {
        for k in (0..self.space.buckets.len()).rev() {
            let prefix = self.space.prefix_at(schedule, k);
            if prefix.is_empty() || prefix.len() == schedule.len() {
                continue;
            }
            let Some(&fp) = self.prefix_fp.get(&(k, prefix.clone())) else {
                continue;
            };
            let Some(canon) = self.alias.get(&(k, fp)) else {
                continue;
            };
            if *canon == prefix {
                continue;
            }
            let mut rewritten = canon.clone();
            rewritten.extend(schedule.iter().filter(|p| !prefix.contains(p)));
            if let Some(eval) = self.evals.get(&rewritten) {
                return Some(*eval);
            }
        }
        None
    }

    /// Evaluation for a schedule during minimization: cached if the
    /// enumeration already checked it, executed fresh otherwise
    /// (minimization runs don't count against the budget).
    fn eval_for(&mut self, schedule: &[u16], explored: &mut u64) -> Result<RunEvaluation, McError> {
        if let Some(eval) = self.evals.get(schedule) {
            return Ok(*eval);
        }
        let plan = self.space.plan_for(schedule);
        let outcome = self.exec.execute(&plan)?;
        self.record_prefixes(schedule, &outcome);
        self.final_fps.insert(outcome.final_fp);
        self.evals.insert(schedule.to_vec(), outcome.eval);
        *explored += 1;
        Ok(outcome.eval)
    }

    fn violations_of(
        &self,
        schedule: &[u16],
        baseline: &RunEvaluation,
        eval: &RunEvaluation,
    ) -> Vec<Violation> {
        let plan = self.space.plan_for(schedule);
        check_schedule(&plan, baseline, eval, &self.inv_cfg, self.cfg.assert_quiet)
    }

    /// Greedy delta-minimization: repeatedly drop any event whose
    /// removal still violates `invariant`, until no single removal
    /// does. The result is 1-minimal.
    fn minimize(
        &mut self,
        schedule: &[u16],
        invariant: &str,
        baseline: &RunEvaluation,
        explored: &mut u64,
    ) -> Result<Schedule, McError> {
        let mut cur: Schedule = schedule.to_vec();
        loop {
            let mut reduced = None;
            for i in 0..cur.len() {
                let mut cand = cur.clone();
                cand.remove(i);
                if cand.is_empty() {
                    continue;
                }
                let eval = self.eval_for(&cand, explored)?;
                let still = self
                    .violations_of(&cand, baseline, &eval)
                    .iter()
                    .any(|v| v.invariant == invariant);
                if still {
                    reduced = Some(cand);
                    break;
                }
            }
            match reduced {
                Some(c) => cur = c,
                None => return Ok(cur),
            }
        }
    }

    fn emit_fixture(&self, fixture: &CounterexampleFixture) -> Result<Option<PathBuf>, McError> {
        let Some(dir) = &self.cfg.emit_dir else {
            return Ok(None);
        };
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("mc-counterexample-{}.json", fixture.invariant));
        let body = serde_json::to_string_pretty(fixture)
            .map_err(|e| McError(format!("fixture serialization failed: {e}")))?;
        fs::write(&path, body + "\n")?;
        Ok(Some(path))
    }

    /// Runs the full check: baseline, enumeration with pruning,
    /// invariant evaluation, counterexample minimization, telemetry.
    pub fn run(mut self) -> Result<McReport, McError> {
        self.validate_space()?;
        let quiescent_at_secs = self.exec.quiescence_check()?;

        let baseline_outcome = self.exec.execute(&FaultPlan::new())?;
        let baseline = baseline_outcome.eval;
        // The empty schedule is the canonical prefix of every bucket.
        for (k, &fp) in baseline_outcome.boundary_fps.iter().enumerate() {
            self.prefix_fp.insert((k, Vec::new()), fp);
            self.alias.entry((k, fp)).or_default();
        }
        self.evals.insert(Vec::new(), baseline);
        let mut violations: u64 = 0;
        let mut counterexamples: Vec<Counterexample> = Vec::new();
        for v in check_baseline(&baseline) {
            violations += 1;
            counterexamples.push(Counterexample {
                fixture: CounterexampleFixture {
                    invariant: v.invariant.to_owned(),
                    detail: v.detail.clone(),
                    seed: self.cfg.seed,
                    horizon_secs: HORIZON.as_secs(),
                    plan: FaultPlan::new(),
                },
                found_in: "(empty)".to_owned(),
                original_len: 0,
                path: None,
            });
        }

        // Enumerate. The visitor only collects per-schedule decisions;
        // minimization happens after, so the borrow of `self` is short.
        let mut explored: u64 = 0;
        let mut pruned: u64 = 0;
        let mut checked: u64 = 0;
        let mut budget_exhausted = false;
        let mut found: Vec<(Schedule, Violation)> = Vec::new();
        let space = self.space.clone();
        let budget = self.cfg.budget;
        let max_depth = self.cfg.max_depth;
        let mut enumeration: Vec<Schedule> = Vec::new();
        space.enumerate(max_depth, &mut |s| {
            enumeration.push(s.to_vec());
            true
        });
        for schedule in enumeration {
            let eval = match self.try_prune(&schedule) {
                Some(eval) => {
                    pruned += 1;
                    self.evals.insert(schedule.clone(), eval);
                    eval
                }
                None => {
                    if explored as usize >= budget {
                        budget_exhausted = true;
                        break;
                    }
                    let plan = space.plan_for(&schedule);
                    let outcome = self.exec.execute(&plan)?;
                    self.record_prefixes(&schedule, &outcome);
                    self.final_fps.insert(outcome.final_fp);
                    self.evals.insert(schedule.clone(), outcome.eval);
                    explored += 1;
                    outcome.eval
                }
            };
            checked += 1;
            for v in self.violations_of(&schedule, &baseline, &eval) {
                violations += 1;
                found.push((schedule.clone(), v));
            }
        }

        // Minimize and emit the first counterexample per invariant.
        let mut seen_invariants: HashSet<&'static str> = HashSet::new();
        for (schedule, v) in &found {
            if !seen_invariants.insert(v.invariant) {
                continue;
            }
            let minimal = self.minimize(schedule, v.invariant, &baseline, &mut explored)?;
            // Re-derive the violation detail from the minimal schedule.
            let eval = self.eval_for(&minimal, &mut explored)?;
            let detail = self
                .violations_of(&minimal, &baseline, &eval)
                .into_iter()
                .find(|mv| mv.invariant == v.invariant)
                .map(|mv| mv.detail)
                .unwrap_or_else(|| v.detail.clone());
            let fixture = CounterexampleFixture {
                invariant: v.invariant.to_owned(),
                detail,
                seed: self.cfg.seed,
                horizon_secs: HORIZON.as_secs(),
                plan: space.plan_for(&minimal),
            };
            let path = self.emit_fixture(&fixture)?;
            counterexamples.push(Counterexample {
                fixture,
                found_in: space.describe(schedule),
                original_len: schedule.len(),
                path,
            });
        }

        let report = McReport {
            states_explored: explored,
            states_pruned: pruned,
            schedules_checked: checked,
            distinct_states: self.final_fps.len() as u64,
            violations,
            counterexamples,
            quiescent_at_secs,
            budget_exhausted,
        };
        let tel = &self.cfg.telemetry;
        tel.counter_set(
            "fremont_mc_states_explored_total",
            "",
            report.states_explored,
        );
        tel.counter_set("fremont_mc_states_pruned_total", "", report.states_pruned);
        tel.counter_set("fremont_mc_violations_total", "", report.violations);
        Ok(report)
    }
}

/// Replays a counterexample fixture: reruns its plan against a fresh
/// same-seed baseline and returns the violations of the recorded
/// invariant (empty = failed to reproduce).
pub fn replay(path: &Path) -> Result<(CounterexampleFixture, Vec<Violation>), McError> {
    let body = fs::read_to_string(path)?;
    let fixture: CounterexampleFixture =
        serde_json::from_str(&body).map_err(|e| McError(format!("bad fixture: {e}")))?;
    let space = Space::micro();
    let exec = Executor {
        seed: fixture.seed,
        buckets: space.buckets.clone(),
    };
    let baseline = exec.execute(&FaultPlan::new())?.eval;
    let run = exec.execute(&fixture.plan)?.eval;
    let mut inv_cfg = InvariantConfig::for_micro("bruno");
    let pristine = Fremont::over_campus(&CampusConfig::micro(fixture.seed));
    inv_cfg.node_ips = pristine
        .driver
        .sim
        .node_ips()
        .into_iter()
        .map(|(n, ip)| (n.to_owned(), ip))
        .collect();
    let assert_quiet = fixture.invariant == fremont_core::invariants::INV_ASSERT_QUIET;
    let violations = check_schedule(&fixture.plan, &baseline, &run, &inv_cfg, assert_quiet)
        .into_iter()
        .filter(|v| v.invariant == fixture.invariant)
        .collect();
    Ok((fixture, violations))
}
