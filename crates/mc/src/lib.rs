//! # fremont-mc
//!
//! A bounded model checker over fault-schedule interleavings.
//!
//! The paper's central claim (§4–5, Table 8) is that Fremont's
//! discovered inconsistencies reliably surface real network problems.
//! The chaos suite samples that claim with eleven hand-written
//! scenarios; this crate *searches* it: every combination of fault
//! templates and injection times — up to a configurable depth and
//! concurrency bound — runs on the same-seed deterministic micro
//! campus, and the analysis layer's findings are checked against the
//! differential invariant catalogue in `fremont_core::invariants`.
//!
//! Architecture:
//!
//! * [`space`] — the canonical (bucket × template) schedule space and
//!   its iterative-deepening DFS enumeration.
//! * [`runner`] — executes schedules to a fixed horizon, prunes
//!   converged interleavings by fingerprinting the canonical Journal
//!   snapshot plus simulator ground state at bucket boundaries, checks
//!   invariants on every interleaving (pruned ones included — their
//!   evaluation carries over, their fault plan is their own), and
//!   shrinks any violation to a 1-minimal `scenarios/*.json` fixture.
//!
//! The `fremont-mc` binary wraps this with `--budget`, `--deep`,
//! `--seed`, `--json`, `--assert-quiet` (a deliberately broken
//! invariant proving the counterexample pipeline), and `--replay`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod runner;
pub mod space;

pub use runner::{
    replay, Counterexample, CounterexampleFixture, McConfig, McError, McReport, ModelChecker,
};
pub use space::{Schedule, Space};
