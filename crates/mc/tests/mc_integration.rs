//! End-to-end checks of the model checker: a clean bounded run with
//! pruning, the deliberately broken invariant's counterexample
//! pipeline (minimize, emit, replay), byte-stable telemetry, and the
//! no-op-prefix premise the pruning abstraction rests on.

use std::fs;
use std::path::PathBuf;

use fremont_core::fremont::Fremont;
use fremont_core::invariants::RunEvaluation;
use fremont_mc::runner::{CONTROL_WINDOW, HORIZON, TIGHT_WINDOW};
use fremont_mc::{replay, McConfig, ModelChecker};
use fremont_netsim::campus::CampusConfig;
use fremont_netsim::faults::{FaultKind, FaultPlan};
use fremont_netsim::time::{SimDuration, SimTime};
use fremont_telemetry::Telemetry;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fremont-mc-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn bounded_run_is_clean_and_prunes() {
    // Budget 120 reaches the depth-2 region where no-op prefixes
    // (heal without a partition, clear-degrade without a degrade)
    // alias the baseline and pruning kicks in.
    let report = ModelChecker::new(McConfig::new(120)).run().expect("run");
    assert_eq!(report.violations, 0, "{:?}", report.counterexamples);
    assert_eq!(report.states_explored, 120);
    assert!(report.states_pruned > 0, "no schedule was pruned");
    assert_eq!(
        report.schedules_checked,
        report.states_explored + report.states_pruned
    );
    assert!(report.distinct_states > 0);
    // Discovery must settle well before the first mid-run bucket (2 h).
    assert!(report.quiescent_at_secs < 7_200);
    assert!(report.budget_exhausted);
}

#[test]
fn assert_quiet_yields_minimal_replayable_counterexample() {
    let dir = temp_dir("aq");
    let mut cfg = McConfig::new(40);
    cfg.assert_quiet = true;
    cfg.emit_dir = Some(dir.clone());
    let report = ModelChecker::new(cfg).run().expect("run");
    assert!(report.violations > 0, "broken invariant found no violation");

    let ce = report
        .counterexamples
        .iter()
        .find(|c| c.fixture.invariant == "assert-quiet")
        .expect("assert-quiet counterexample");
    // Any single effective fault violates assert-quiet, so the greedy
    // minimizer must reach a 1-event plan.
    assert_eq!(ce.fixture.plan.len(), 1, "not minimal: {:?}", ce.fixture);
    let path = ce.path.as_ref().expect("fixture path");
    assert!(path.exists());

    let (fixture, violations) = replay(path).expect("replay");
    assert_eq!(fixture.invariant, "assert-quiet");
    assert!(!violations.is_empty(), "fixture did not reproduce");
    assert!(violations.iter().all(|v| v.invariant == "assert-quiet"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn telemetry_exposition_is_byte_stable() {
    let expose = || {
        let (telemetry, recorder) = Telemetry::recording();
        let mut cfg = McConfig::new(20);
        cfg.telemetry = telemetry;
        ModelChecker::new(cfg).run().expect("run");
        recorder.expose()
    };
    let first = expose();
    let second = expose();
    assert_eq!(
        first, second,
        "same seed and budget must expose identically"
    );
    for name in [
        "fremont_mc_states_explored_total",
        "fremont_mc_states_pruned_total",
        "fremont_mc_violations_total",
    ] {
        assert!(first.contains(name), "missing `{name}` in:\n{first}");
    }
}

/// The pruning abstraction treats a `Heal` with no prior partition and
/// a `ClearDegrade` with no prior degrade as no-ops whose prefixes
/// alias the empty schedule. Verify that premise at the report level:
/// the full-horizon evaluation of a no-op-only plan is identical to
/// the baseline's.
#[test]
fn noop_fault_plans_match_the_baseline_evaluation() {
    let run = |plan: FaultPlan| {
        let mut cfg = CampusConfig::micro(1993);
        cfg.fault_plan = plan;
        let mut f = Fremont::over_campus(&cfg);
        f.driver
            .set_max_module_runtime(Some(SimDuration::from_hours(1)));
        let end = SimTime::ZERO + HORIZON;
        f.explore(end.since(f.driver.sim.now())).expect("explore");
        let control = f.problems(CONTROL_WINDOW.0, CONTROL_WINDOW.1);
        let tight = f.problems(TIGHT_WINDOW.0, TIGHT_WINDOW.1);
        RunEvaluation::new(&control, &tight)
    };
    let baseline = run(FaultPlan::new());
    let noop = run(FaultPlan::new()
        .at(
            SimTime::from_hours(2),
            FaultKind::Heal {
                segment: "cs-net".into(),
            },
        )
        .at(
            SimTime::from_hours(5),
            FaultKind::ClearDegrade {
                segment: "cs-net".into(),
            },
        ));
    assert_eq!(baseline, noop);
}
