//! The paper's opening scenario: "she couldn't get to the Ancient History
//! server in the Classics department ... the connection was via a Sun
//! workstation / gateway in the Athletics department" — and the coach had
//! unplugged it.
//!
//! We build that exact situation: the Classics subnet hangs off a
//! workstation-turned-gateway on the Athletics subnet. Fremont maps the
//! route while everything works; when the gateway is unplugged, the
//! Journal still knows what the route *was supposed to be*, which is what
//! lets the operator make the phone call.
//!
//! ```sh
//! cargo run --example troubleshoot
//! ```

use fremont::core::{DiscoveryDriver, DriverConfig, TopologyGraph};
use fremont::journal::{JournalAccess, SharedJournal, SubnetQuery};
use fremont::netsim::builder::TopologyBuilder;
use fremont::netsim::time::SimDuration;

fn main() {
    // Campus core: backbone + CS (where we run Fremont) + Athletics.
    // Classics is reachable ONLY through "coach-sun", a Sun workstation
    // on the Athletics subnet doubling as a gateway.
    let mut b = TopologyBuilder::new();
    let backbone = b.segment("backbone", "128.138.1.0/24");
    let cs = b.segment("cs-net", "128.138.243.0/24");
    let athletics = b.segment("athletics", "128.138.60.0/24");
    let classics = b.segment("classics", "128.138.61.0/24");

    b.host("bruno", cs, 10); // Fremont runs here.
    b.host("history-server", classics, 10); // The Ancient History server.
    b.host("jock1", athletics, 20);
    b.router("cs-gw", &[(backbone, 2), (cs, 1)]);
    b.router("main-gw", &[(backbone, 3), (athletics, 1)]);
    // The accidental gateway: a multi-homed Sun workstation.
    b.router("coach-sun", &[(athletics, 77), (classics, 1)]);

    let (sim, topo) = b.build(42);
    let home = topo.nodes_by_name["bruno"];
    let journal = SharedJournal::new();
    let mut driver = DiscoveryDriver::new(
        sim,
        journal.clone(),
        home,
        DriverConfig::full("128.138.0.0/16".parse().unwrap(), None),
    );

    println!("Phase 1: normal operation — Fremont maps the campus.\n");
    driver.run_for(SimDuration::from_mins(45)).expect("flush");

    let graph = journal.read(TopologyGraph::from_journal);
    println!("{}", graph.to_ascii());

    // What is the route to the Classics subnet supposed to be?
    let classics_subnet = "128.138.61.0/24".parse().unwrap();
    let recs = journal
        .subnets(&SubnetQuery {
            within: Some(classics_subnet),
            ..Default::default()
        })
        .unwrap();
    match recs.first() {
        Some(rec) if !rec.gateways.is_empty() => {
            println!(
                "The Journal knows the Classics subnet ({}) is served by {} gateway(s).",
                rec.subnet,
                rec.gateways.len()
            );
        }
        _ => println!("Classics subnet not yet attributed to a gateway."),
    }

    println!("\nPhase 2: the coach unplugs the workstation.\n");
    let coach = driver.sim.node_by_name("coach-sun").expect("exists");
    driver.sim.set_node_up(coach, false);
    driver.run_for(SimDuration::from_mins(10)).expect("flush");

    // The live network can no longer reach the history server...
    // ...but the Journal remembers the topology, including which gateway
    // interface (on the Athletics subnet!) carries the Classics traffic.
    let graph = journal.read(TopologyGraph::from_journal);
    let classics_row = graph
        .to_ascii()
        .lines()
        .find(|l| l.contains("128.138.61.0/24"))
        .map(str::to_owned)
        .unwrap_or_default();
    println!("Journal's memory of the broken path: {classics_row}");
    println!(
        "\n→ The gateway to Classics lives at 128.138.60.77 — an address on the\n\
         Athletics subnet. Time to call the coach and ask him to plug the Sun\n\
         workstation back in."
    );
}
