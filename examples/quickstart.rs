//! Quickstart: explore a small campus and print what Fremont found.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fremont::core::{present, Fremont};
use fremont::journal::{InterfaceQuery, JournalAccess};
use fremont::netsim::campus::CampusConfig;
use fremont::netsim::time::SimDuration;

fn main() {
    // A ten-subnet campus with a departmental LAN, a name server, RIP
    // routers, and the paper's fault inventory baked in.
    let cfg = CampusConfig::small();
    let mut system = Fremont::over_campus(&cfg);

    println!(
        "Exploring a {}-subnet campus for 2 simulated hours...",
        cfg.subnets_connected
    );
    system.explore(SimDuration::from_hours(2)).expect("flush");

    let stats = system.stats();
    println!(
        "\nJournal now holds {} interfaces, {} gateways, {} subnets \
         ({} observations applied).\n",
        stats.interfaces, stats.gateways, stats.subnets, stats.observations_applied
    );

    // Presentation program, level 1: every interface in the network.
    let now = system.now();
    let view = system
        .journal
        .read(|j| present::level1_network(j, cfg.network, now));
    println!("{view}");

    // Level 2 for the departmental subnet: MACs, vendors, RIP, gateways.
    let view = system
        .journal
        .read(|j| present::level2_subnet(j, system.truth.cs_subnet, now));
    println!("{view}");

    // Level 3: full detail for one record.
    if let Ok(recs) = system
        .journal
        .interfaces(&InterfaceQuery::in_subnet(system.truth.cs_subnet))
    {
        if let Some(r) = recs.first() {
            let view = system
                .journal
                .read(|j| present::level3_interface(j, r.id, now));
            println!("{view}");
        }
    }

    // The discovered topology (Figure 2's data), as ASCII.
    println!("{}", system.topology().to_ascii());
}
