//! Regenerates the committed fault-plan fixtures under `scenarios/`.
//!
//! Each fixture targets one problem class from the paper (Section 5)
//! and is written through `FaultPlan::to_json`, so a fixture on disk is
//! always parseable by `--faults` and by the chaos CI job. Re-run after
//! changing the plan schema:
//!
//! ```sh
//! cargo run --example gen_scenarios
//! ```

use fremont::netsim::faults::{FaultKind, FaultPlan};
use fremont::netsim::time::{SimDuration, SimTime};

fn hours(h: u64) -> SimTime {
    SimTime(h * 3_600_000_000)
}

fn main() {
    // The targets are campus fixtures, not seed-dependent names: the CS
    // subnet is always 128.138.243.0/24, its router is always "cs-gw",
    // and "piper"/"bruno" are always CS hosts ("piper" never churns,
    // which makes it the clean chaos target; "bruno" runs the explorers).
    let scenarios: Vec<(&str, FaultPlan)> = vec![
        (
            "gateway_death",
            FaultPlan::new().at(
                hours(6),
                FaultKind::GatewayDeath {
                    gateway: "cs-gw".to_owned(),
                },
            ),
        ),
        (
            "partition",
            FaultPlan::new().at(
                hours(18),
                FaultKind::Partition {
                    segment: "cs-net".to_owned(),
                },
            ),
        ),
        (
            "partition_healed",
            FaultPlan::new().partition_between("cs-net", hours(18), SimDuration::from_hours(6)),
        ),
        (
            "duplicate_ip",
            FaultPlan::new().at(
                hours(2),
                FaultKind::DuplicateIp {
                    node: "piper".to_owned(),
                    ip: "128.138.243.10".parse().expect("ip literal"),
                },
            ),
        ),
        (
            "wrong_mask",
            // Must precede the first SubnetMasks sweep: the module only
            // queries interfaces that are still missing a mask.
            FaultPlan::new().at(
                SimTime(1_000_000),
                FaultKind::WrongMask {
                    node: "piper".to_owned(),
                    prefix_len: 16,
                },
            ),
        ),
        (
            "clock_skew",
            FaultPlan::new().at(
                hours(6),
                FaultKind::ClockSkew {
                    node: "bruno".to_owned(),
                    skew_micros: 48 * 3_600_000_000,
                },
            ),
        ),
        (
            "host_crash",
            FaultPlan::new().crash_between("piper", hours(4), SimDuration::from_hours(2)),
        ),
        (
            "degraded_segment",
            FaultPlan::new().degrade_window(
                "cs-net",
                hours(2),
                SimDuration::from_hours(6),
                0.30,
                SimDuration::from_millis(25),
            ),
        ),
    ];

    std::fs::create_dir_all("scenarios").expect("create scenarios/");
    for (name, plan) in scenarios {
        let path = format!("scenarios/{name}.json");
        let json = plan.to_json();
        let round = FaultPlan::from_json(&json).expect("fixture must round-trip");
        assert_eq!(round, plan, "fixture {name} does not round-trip");
        std::fs::write(&path, json).expect("write fixture");
        println!("wrote {path} ({} event(s))", plan.len());
    }
}
