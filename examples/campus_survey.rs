//! Campus survey: the paper's full-scale evaluation scenario.
//!
//! Generates the 111-connected-subnet campus, runs all eight Explorer
//! Modules under the Discovery Manager for a simulated day, and prints
//! discovery effectiveness against ground truth — the live version of
//! Tables 5 and 6 (the bench harness regenerates the exact tables).
//!
//! ```sh
//! cargo run --release --example campus_survey
//! ```

use fremont::core::Fremont;
use fremont::journal::{JournalAccess, SubnetQuery};
use fremont::netsim::campus::CampusConfig;
use fremont::netsim::time::SimDuration;

fn main() {
    let cfg = CampusConfig::default();
    println!(
        "Generating campus: {} assigned subnets, {} connected, DNS coverage {:.0}%...",
        cfg.subnets_assigned,
        cfg.subnets_connected,
        cfg.dns_coverage * 100.0
    );
    let mut system = Fremont::over_campus(&cfg);
    println!(
        "Ground truth: {} gateways, {} interfaces on the CS subnet ({} in DNS), {} broken routers.",
        system.truth.gateways.len(),
        system.truth.cs_interfaces.len(),
        system.truth.cs_dns_count,
        system.truth.broken_routers.len()
    );

    println!("\nExploring for one simulated day (this runs a few seconds of real time)...");
    system.explore(SimDuration::from_hours(24)).expect("flush");

    let stats = system.stats();
    println!(
        "\nJournal: {} interfaces, {} gateways, {} subnets ({} observations).",
        stats.interfaces, stats.gateways, stats.subnets, stats.observations_applied
    );

    // Subnet discovery vs ground truth (Table 6 shape).
    let discovered = system
        .journal
        .subnets(&SubnetQuery {
            within: Some(cfg.network),
            ..Default::default()
        })
        .unwrap();
    let truth_count = system.truth.connected_subnets.len();
    let found = discovered
        .iter()
        .filter(|s| system.truth.connected_subnets.contains(&s.subnet))
        .count();
    println!(
        "Subnets discovered: {found}/{truth_count} ({:.0}%)",
        100.0 * found as f64 / truth_count as f64
    );
    let with_gw = discovered.iter().filter(|s| !s.gateways.is_empty()).count();
    println!("Subnets with an attributed gateway: {with_gw}");

    // Interface discovery on the CS subnet (Table 5 shape).
    let cs = system.truth.cs_subnet;
    let cs_found = system
        .journal
        .interfaces(&fremont::journal::InterfaceQuery::in_subnet(cs))
        .unwrap()
        .len();
    println!(
        "Interfaces known on {cs}: {cs_found} (DNS lists {}, {} real machines exist)",
        system.truth.cs_dns_count,
        system.truth.cs_interfaces.len()
    );

    // The topology map (Figure 2), in SunNet Manager dump form (head).
    let sunnet = system.topology().to_sunnet();
    println!("\nSunNet Manager dump (first 12 lines):");
    for line in sunnet.lines().take(12) {
        println!("  {line}");
    }
    println!("  ...");
}
