//! Campus survey: the paper's full-scale evaluation scenario.
//!
//! Generates the 111-connected-subnet campus, runs all eight Explorer
//! Modules under the Discovery Manager for a simulated day, and prints
//! discovery effectiveness against ground truth — the live version of
//! Tables 5 and 6 (the bench harness regenerates the exact tables) —
//! plus the measured per-module load beside the paper's Table 4.
//!
//! ```sh
//! cargo run --release --example campus_survey
//! cargo run --release --example campus_survey -- --hours 6 \
//!     --metrics-file metrics.prom --trace-jsonl trace.jsonl
//! ```
//!
//! `--metrics-file` writes Prometheus text exposition at exit;
//! `--trace-jsonl` writes the driver's span/event trace;
//! `--profile-folded` writes the run's flamegraph-compatible folded
//! work profile. All are keyed to simulated time, so two runs with
//! the same seed produce byte-identical output. `--faults
//! scenarios/<name>.json` loads a committed fault-plan fixture and
//! injects it into the campus run:
//!
//! ```sh
//! cargo run --release --example campus_survey -- --hours 48 \
//!     --faults scenarios/gateway_death.json
//! ```
//!
//! `--watch` slices the exploration hour by hour and, after each
//! slice, polls a live in-process Journal Server over the Introspect
//! RPC — printing findings counts, module load, and per-shard store
//! stats as they evolve. The watch surface reads the same telemetry
//! the run records anyway; a no-watch run's outputs are untouched.

use std::path::PathBuf;

use fremont::core::analysis::publish_findings;
use fremont::core::Fremont;
use fremont::journal::client::RemoteJournal;
use fremont::journal::{JournalAccess, JournalServer, SubnetQuery};
use fremont::netsim::campus::CampusConfig;
use fremont::netsim::faults::FaultPlan;
use fremont::netsim::time::SimDuration;
use fremont::telemetry::Telemetry;

fn main() {
    let mut metrics_file: Option<PathBuf> = None;
    let mut trace_file: Option<PathBuf> = None;
    let mut faults_file: Option<PathBuf> = None;
    let mut profile_file: Option<PathBuf> = None;
    let mut watch = false;
    let mut hours: u64 = 24;
    let mut seed: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics-file" => metrics_file = args.next().map(PathBuf::from),
            "--trace-jsonl" => trace_file = args.next().map(PathBuf::from),
            "--profile-folded" => profile_file = args.next().map(PathBuf::from),
            "--watch" => watch = true,
            "--faults" => faults_file = args.next().map(PathBuf::from),
            "--hours" => {
                hours = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --hours needs an integer argument");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                seed = Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --seed needs an integer argument");
                    std::process::exit(2);
                }))
            }
            other => {
                eprintln!("error: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let record = metrics_file.is_some() || trace_file.is_some() || profile_file.is_some() || watch;

    let mut cfg = CampusConfig::default();
    if let Some(seed) = seed {
        cfg.seed = seed;
    }
    if let Some(path) = &faults_file {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {}: {e}", path.display());
            std::process::exit(2);
        });
        cfg.fault_plan = FaultPlan::from_json(&text).unwrap_or_else(|e| {
            eprintln!("error: bad fault plan in {}: {e}", path.display());
            std::process::exit(2);
        });
        println!(
            "Loaded fault plan from {}: {} scheduled event(s).",
            path.display(),
            cfg.fault_plan.len()
        );
    }
    println!(
        "Generating campus: {} assigned subnets, {} connected, DNS coverage {:.0}%...",
        cfg.subnets_assigned,
        cfg.subnets_connected,
        cfg.dns_coverage * 100.0
    );
    let (telemetry, recorder) = if record {
        let (t, r) = Telemetry::recording();
        (t, Some(r))
    } else {
        (Telemetry::noop(), None)
    };
    let mut system = Fremont::over_campus_with_telemetry(&cfg, telemetry.clone());
    println!(
        "Ground truth: {} gateways, {} interfaces on the CS subnet ({} in DNS), {} broken routers.",
        system.truth.gateways.len(),
        system.truth.cs_interfaces.len(),
        system.truth.cs_dns_count,
        system.truth.broken_routers.len()
    );

    println!("\nExploring for {hours} simulated hours (this runs a few seconds of real time)...");
    if watch {
        watch_loop(&mut system, &telemetry, hours);
    } else {
        system
            .explore(SimDuration::from_hours(hours))
            .expect("flush");
    }

    let stats = system.stats();
    println!(
        "\nJournal: {} interfaces, {} gateways, {} subnets ({} observations).",
        stats.interfaces, stats.gateways, stats.subnets, stats.observations_applied
    );

    // Subnet discovery vs ground truth (Table 6 shape).
    let discovered = system
        .journal
        .subnets(&SubnetQuery {
            within: Some(cfg.network),
            ..Default::default()
        })
        .unwrap();
    let truth_count = system.truth.connected_subnets.len();
    let found = discovered
        .iter()
        .filter(|s| system.truth.connected_subnets.contains(&s.subnet))
        .count();
    println!(
        "Subnets discovered: {found}/{truth_count} ({:.0}%)",
        100.0 * found as f64 / truth_count as f64
    );
    let with_gw = discovered.iter().filter(|s| !s.gateways.is_empty()).count();
    println!("Subnets with an attributed gateway: {with_gw}");

    // Interface discovery on the CS subnet (Table 5 shape).
    let cs = system.truth.cs_subnet;
    let cs_found = system
        .journal
        .interfaces(&fremont::journal::InterfaceQuery::in_subnet(cs))
        .unwrap()
        .len();
    println!(
        "Interfaces known on {cs}: {cs_found} (DNS lists {}, {} real machines exist)",
        system.truth.cs_dns_count,
        system.truth.cs_interfaces.len()
    );

    // Measured per-module load beside the paper's Table 4.
    println!("\nModule load (measured vs paper Table 4):");
    print!("{}", system.load_report().render());

    // The topology map (Figure 2), in SunNet Manager dump form (head).
    let sunnet = system.topology().to_sunnet();
    println!("\nSunNet Manager dump (first 12 lines):");
    for line in sunnet.lines().take(12) {
        println!("  {line}");
    }
    println!("  ...");

    // Only fault runs print the fault ledger — the no-fault output is a
    // byte-stable baseline that determinism checks diff against.
    if faults_file.is_some() {
        let f = system.driver.sim.fault_stats;
        println!(
            "\nFaults injected: {} applied ({} crashes, {} reboots, {} gateway deaths, \
             {} partitions, {} heals, {} degrades), {} unresolved, {} frames dropped.",
            f.total(),
            f.node_crashes,
            f.node_reboots,
            f.gateway_deaths,
            f.partitions,
            f.heals,
            f.degrades,
            f.unresolved,
            f.frames_dropped
        );
    }

    if let Some(rec) = recorder {
        system.driver.publish_metrics();
        if let Some(path) = metrics_file {
            std::fs::write(&path, rec.expose()).expect("write metrics file");
            println!("metrics exposition written to {}", path.display());
        }
        if let Some(path) = trace_file {
            std::fs::write(&path, rec.trace_jsonl()).expect("write trace file");
            println!(
                "trace written to {} ({} events, {} dropped)",
                path.display(),
                rec.trace_len(),
                rec.trace_dropped()
            );
        }
        if let Some(path) = profile_file {
            std::fs::write(&path, rec.folded_profile()).expect("write folded profile");
            println!("folded profile written to {}", path.display());
        }
    }
}

/// The `--watch` path: explore in hourly slices, and after each slice
/// poll a live in-process Journal Server over the Introspect RPC. One
/// deterministic line per hour — same seed, same lines.
fn watch_loop(system: &mut Fremont, telemetry: &Telemetry, hours: u64) {
    let server = JournalServer::start_with_telemetry(
        system.journal.clone(),
        "127.0.0.1:0",
        None,
        telemetry.clone(),
    )
    .expect("start introspection server");
    let client = RemoteJournal::connect(&server.addr().to_string()).expect("connect introspection");
    for h in 1..=hours {
        system.explore(SimDuration::from_hours(1)).expect("flush");
        system.driver.publish_metrics();
        let problems = system.problems(86_400, 3_600);
        publish_findings(telemetry, &problems);
        let report = client.introspect(0).expect("introspect");
        let module_runs = sum_series(&report.metrics, "fremont_module_runs_total");
        let shards = report.shards.map(|s| s.shards.len()).unwrap_or(0);
        println!(
            "watch t={h}h interfaces={} gateways={} subnets={} observations={} \
             findings={} module_runs={module_runs} shards={shards} health={}",
            report.stats.interfaces,
            report.stats.gateways,
            report.stats.subnets,
            report.stats.observations_applied,
            problems.total(),
            report.health
        );
    }
    server.shutdown();
}

/// Sums every series of a counter family in a Prometheus text
/// exposition (`name{...} value` or `name value` lines).
fn sum_series(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .filter(|l| {
            l.strip_prefix(name)
                .is_some_and(|rest| rest.starts_with('{') || rest.starts_with(' '))
        })
        .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        .sum()
}
