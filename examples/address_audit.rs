//! Address auditing: run the analysis programs over a campus with the
//! paper's Table 8 fault inventory injected, and watch each problem class
//! get caught.
//!
//! ```sh
//! cargo run --example address_audit
//! ```

use fremont::core::Fremont;
use fremont::journal::Source;
use fremont::netsim::campus::CampusConfig;
use fremont::netsim::time::SimDuration;

fn main() {
    let cfg = CampusConfig::small();
    let mut system = Fremont::over_campus(&cfg);
    let faults = system.truth.faults.clone();
    println!("Injected faults:");
    println!("  duplicate IP pair:  {:?}", faults.duplicate_ip_pair);
    println!("  wrong-mask host:    {:?}", faults.wrong_mask_host);
    println!("  promiscuous RIP:    {:?}", faults.promiscuous_rip_host);
    println!("  removed host (DNS): {:?}", faults.removed_host);
    println!("  hardware change:    {:?}", faults.hardware_change);

    // Day 1: learn the healthy network.
    println!("\nDay 1: baseline exploration...");
    system.explore(SimDuration::from_hours(4)).expect("flush");

    // Then the trouble starts: the duplicate-address clone is powered on,
    // and `piper` dies and is replaced by new hardware with the same IP.
    println!("Day 2: the clone boots; piper's hardware is replaced...");
    let sim = &mut system.driver.sim;
    if let Some((_, clone)) = &faults.duplicate_ip_pair {
        let id = sim.node_by_name(clone).expect("exists");
        sim.set_node_up(id, true);
    }
    if let Some((old, new)) = &faults.hardware_change {
        let old_id = sim.node_by_name(old).expect("exists");
        let new_id = sim.node_by_name(new).expect("exists");
        sim.set_node_up(old_id, false);
        sim.set_node_up(new_id, true);
    }
    system.explore(SimDuration::from_hours(8)).expect("flush");

    // A re-sweep is due only after the module intervals elapse; force the
    // sweep modules to run again by advancing well past their minimums.
    println!("Day 3-5: continued monitoring...");
    system.explore(SimDuration::from_days(3)).expect("flush");

    // Run the analysis programs.
    let report = system.problems(2 * 86400, 3600);
    println!("\n{report}");

    // Show the cross-correlation bonus: which sources contributed.
    let stats = system.stats();
    println!(
        "Journal: {} interfaces / {} gateways / {} subnets",
        stats.interfaces, stats.gateways, stats.subnets
    );
    let contributions: Vec<String> = Source::EXPLORERS
        .iter()
        .map(|s| {
            let runs = system
                .driver
                .manager
                .schedule(*s)
                .map(|sch| sch.runs)
                .unwrap_or(0);
            format!("{} ran {} time(s)", s.name(), runs)
        })
        .collect();
    println!("{}", contributions.join("; "));
}
