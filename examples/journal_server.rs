//! Run a standalone Journal Server, populate it over TCP from a simulated
//! exploration, then query it back — the paper's distributed deployment
//! ("we are making our software freely available, and encouraging people
//! to set up Journal Servers throughout the Internet").
//!
//! ```sh
//! cargo run --example journal_server [addr] [snapshot.json] [hold-seconds]
//! cargo run --example journal_server [addr] --data-dir journal-data [hold-seconds]
//! cargo run --example journal_server [addr] --metrics-file metrics.prom
//! cargo run --example journal_server [addr] 30 --status-interval 5
//! ```
//!
//! With `--data-dir` the server runs on the `fremont-storage` engine:
//! observations are write-ahead logged before they are applied, and a
//! restart over the same directory recovers them (snapshot + WAL
//! replay) — rerun the command and watch the record counts carry over.
//! With a trailing hold argument the server stays up that many seconds
//! after the demo, so external clients (other Fremont sites) can connect.
//! With `--metrics-file` the server records per-RPC telemetry and writes
//! Prometheus text exposition to the given path at shutdown.
//! With `--status-interval <secs>` the server prints a self-report every
//! interval while holding open — the same snapshot the `Introspect` RPC
//! answers (health verdict, record counts, WAL segment state), built
//! without any extra locking.

use std::path::PathBuf;

use fremont::explorers::{SeqPing, SeqPingConfig};
use fremont::journal::client::RemoteJournal;
use fremont::journal::{
    build_introspection, InterfaceQuery, JournalAccess, JournalServer, SharedJournal,
};
use fremont::net::IpRange;
use fremont::netsim::builder::TopologyBuilder;
use fremont::netsim::time::SimDuration;
use fremont::storage::{DurableJournal, WalConfig};
use fremont::telemetry::Telemetry;

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:0".to_owned());
    let mut snapshot: Option<PathBuf> = None;
    let mut data_dir: Option<PathBuf> = None;
    let mut metrics_file: Option<PathBuf> = None;
    let mut hold: Option<u64> = None;
    let mut status_interval: Option<u64> = None;
    while let Some(arg) = args.next() {
        if arg == "--data-dir" {
            data_dir = args.next().map(PathBuf::from);
            if data_dir.is_none() {
                eprintln!("error: --data-dir needs a directory argument");
                std::process::exit(2);
            }
        } else if arg == "--status-interval" {
            status_interval = args.next().and_then(|v| v.parse().ok());
            if status_interval.is_none() {
                eprintln!("error: --status-interval needs a seconds argument");
                std::process::exit(2);
            }
        } else if arg == "--metrics-file" {
            metrics_file = args.next().map(PathBuf::from);
            if metrics_file.is_none() {
                eprintln!("error: --metrics-file needs a path argument");
                std::process::exit(2);
            }
        } else if let Ok(secs) = arg.parse::<u64>() {
            hold = Some(secs);
        } else {
            snapshot = Some(PathBuf::from(arg));
        }
    }
    let (telemetry, recorder) = if metrics_file.is_some() {
        let (t, r) = Telemetry::recording();
        (t, Some(r))
    } else {
        (Telemetry::noop(), None)
    };

    match data_dir {
        Some(dir) => {
            // Durable mode: WAL + crash recovery + compaction.
            let opened =
                DurableJournal::open_with_telemetry(WalConfig::new(&dir), telemetry.clone());
            let (journal, report) = match opened {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("error: cannot open journal dir {}: {e}", dir.display());
                    std::process::exit(2);
                }
            };
            println!(
                "recovered {} from {}: snapshot watermark {}, {} WAL records replayed{}",
                if report.snapshot_loaded || report.records_replayed > 0 {
                    "journal"
                } else {
                    "empty journal"
                },
                dir.display(),
                report.watermark,
                report.records_replayed,
                if report.torn_bytes_dropped > 0 {
                    format!(" ({} torn tail bytes dropped)", report.torn_bytes_dropped)
                } else {
                    String::new()
                },
            );
            print_counts("after recovery", &journal);
            let server = start_server(journal.clone(), &addr, None, telemetry.clone());
            run_demo(&server.addr().to_string());
            print_counts("at shutdown", &journal);
            hold_open(hold, status_interval, || print_status(&journal, &telemetry));
            server.shutdown();
        }
        None => {
            let journal = SharedJournal::new();
            let server = start_server(journal.clone(), &addr, snapshot.clone(), telemetry.clone());
            if let Some(p) = &snapshot {
                println!("snapshot path: {}", p.display());
            }
            run_demo(&server.addr().to_string());
            if let Some(p) = &snapshot {
                RemoteJournal::connect(&server.addr().to_string())
                    .and_then(|c| RemoteJournal::flush(&c))
                    .expect("flush snapshot");
                println!("snapshot written to {}", p.display());
            }
            hold_open(hold, status_interval, || print_status(&journal, &telemetry));
            server.shutdown();
        }
    }
    if let (Some(rec), Some(path)) = (recorder, metrics_file) {
        std::fs::write(&path, rec.expose()).expect("write metrics file");
        println!("metrics exposition written to {}", path.display());
    }
    println!("server shut down cleanly");
}

fn start_server<J: JournalAccess + Clone + Send + Sync + 'static>(
    journal: J,
    addr: &str,
    snapshot: Option<PathBuf>,
    telemetry: Telemetry,
) -> JournalServer<J> {
    match JournalServer::start_with_telemetry(journal, addr, snapshot, telemetry) {
        Ok(s) => {
            println!("journal server listening on {}", s.addr());
            s
        }
        Err(e) => {
            eprintln!("error: cannot bind journal server on {addr}: {e}");
            std::process::exit(2);
        }
    }
}

/// The paper's roles over one socket each: an "explorer host" elsewhere
/// on the Internet ships a simulated sweep in, a presentation program
/// reads it back.
fn run_demo(addr: &str) {
    let mut b = TopologyBuilder::new();
    let lan = b.segment("lab", "192.168.10.0/24");
    for i in 0..8 {
        b.host(&format!("lab{i}"), lan, 10 + i);
    }
    let (mut sim, topo) = b.build(2026);
    let range = IpRange::new(
        "192.168.10.1".parse().expect("ip"),
        "192.168.10.30".parse().expect("ip"),
    );
    sim.spawn(
        topo.hosts[0],
        Box::new(SeqPing::new(SeqPingConfig::over(range))),
    );
    sim.run_for(SimDuration::from_mins(5));

    let module_conn = RemoteJournal::connect(addr).expect("connect");
    let mut stored = 0;
    for (_, at, obs) in sim.drain_observations() {
        let s = module_conn
            .store(at.to_jtime(), std::slice::from_ref(&obs))
            .expect("store over tcp");
        stored += s.created + s.updated + s.verified;
    }
    println!("explorer module stored {stored} observations over TCP");

    let viewer = RemoteJournal::connect(addr).expect("connect");
    let recs = viewer.interfaces(&InterfaceQuery::all()).expect("query");
    println!("viewer sees {} interface records:", recs.len());
    for r in &recs {
        println!(
            "  {}  first seen {}",
            r.ip_addr().map(|i| i.to_string()).unwrap_or_default(),
            r.discovered
        );
    }
}

fn print_counts(when: &str, journal: &impl JournalAccess) {
    let stats = journal.stats().expect("stats");
    println!(
        "journal {when}: {} interfaces, {} gateways, {} subnets ({} observations applied)",
        stats.interfaces, stats.gateways, stats.subnets, stats.observations_applied
    );
}

/// Prints the same self-description the `Introspect` RPC answers.
fn print_status(journal: &impl JournalAccess, telemetry: &Telemetry) {
    let report = build_introspection(journal, telemetry, 0);
    let mut line = format!(
        "status: health={} interfaces={} gateways={} subnets={} observations={} trace_dropped={}",
        report.health,
        report.stats.interfaces,
        report.stats.gateways,
        report.stats.subnets,
        report.stats.observations_applied,
        report.trace_dropped
    );
    if let Some(wal) = report.wal {
        line.push_str(&format!(
            " wal_segment={} wal_bytes={} sync={}",
            wal.segment_first_seq, wal.segment_bytes, wal.sync_policy
        ));
    }
    println!("{line}");
}

/// Holds the server open, emitting a status report up front and then
/// every `interval` seconds when `--status-interval` was given.
fn hold_open(hold: Option<u64>, interval: Option<u64>, status: impl Fn()) {
    if interval.is_some() {
        status();
    }
    let Some(hold) = hold else { return };
    println!("holding the server open for {hold}s (connect with RemoteJournal)...");
    let mut remaining = hold;
    while remaining > 0 {
        let step = interval.unwrap_or(remaining).clamp(1, remaining);
        std::thread::sleep(std::time::Duration::from_secs(step));
        remaining -= step;
        if interval.is_some() {
            status();
        }
    }
}
