//! Run a standalone Journal Server, populate it over TCP from a simulated
//! exploration, then query it back — the paper's distributed deployment
//! ("we are making our software freely available, and encouraging people
//! to set up Journal Servers throughout the Internet").
//!
//! ```sh
//! cargo run --example journal_server [addr] [snapshot.json] [hold-seconds]
//! ```
//!
//! With a third argument the server stays up that many seconds after the
//! demo, so external clients (other Fremont sites) can connect.

use std::path::PathBuf;

use fremont::explorers::{SeqPing, SeqPingConfig};
use fremont::journal::client::RemoteJournal;
use fremont::journal::{InterfaceQuery, JournalAccess, JournalServer, SharedJournal};
use fremont::net::IpRange;
use fremont::netsim::builder::TopologyBuilder;
use fremont::netsim::time::SimDuration;

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:0".to_owned());
    let snapshot = args.next().map(PathBuf::from);

    let server = match JournalServer::start(SharedJournal::new(), &addr, snapshot.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind journal server on {addr}: {e}");
            std::process::exit(2);
        }
    };
    println!("journal server listening on {}", server.addr());
    if let Some(p) = &snapshot {
        println!("snapshot path: {}", p.display());
    }

    // An "explorer host" elsewhere on the Internet: simulate a sweep and
    // ship the observations through the socket.
    let mut b = TopologyBuilder::new();
    let lan = b.segment("lab", "192.168.10.0/24");
    for i in 0..8 {
        b.host(&format!("lab{i}"), lan, 10 + i);
    }
    let (mut sim, topo) = b.build(2026);
    let range = IpRange::new(
        "192.168.10.1".parse().expect("ip"),
        "192.168.10.30".parse().expect("ip"),
    );
    sim.spawn(topo.hosts[0], Box::new(SeqPing::new(SeqPingConfig::over(range))));
    sim.run_for(SimDuration::from_mins(5));

    let module_conn = RemoteJournal::connect(&server.addr().to_string()).expect("connect");
    let mut stored = 0;
    for (_, at, obs) in sim.drain_observations() {
        let s = module_conn
            .store(at.to_jtime(), std::slice::from_ref(&obs))
            .expect("store over tcp");
        stored += s.created + s.updated + s.verified;
    }
    println!("explorer module stored {stored} observations over TCP");

    // A "presentation program" on its own connection reads them back.
    let viewer = RemoteJournal::connect(&server.addr().to_string()).expect("connect");
    let recs = viewer.interfaces(&InterfaceQuery::all()).expect("query");
    println!("viewer sees {} interface records:", recs.len());
    for r in &recs {
        println!(
            "  {}  first seen {}",
            r.ip_addr().map(|i| i.to_string()).unwrap_or_default(),
            r.discovered
        );
    }
    if let Some(p) = &snapshot {
        viewer.flush().expect("flush snapshot");
        println!("snapshot written to {}", p.display());
    }
    if let Some(hold) = std::env::args().nth(3).and_then(|s| s.parse::<u64>().ok()) {
        println!("holding the server open for {hold}s (connect with RemoteJournal)...");
        std::thread::sleep(std::time::Duration::from_secs(hold));
    }
    server.shutdown();
    println!("server shut down cleanly");
}
