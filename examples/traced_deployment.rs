//! Traced distributed deployment: a Discovery Driver writing through
//! to a durable Journal Server over TCP, with end-to-end causal
//! tracing across the process boundary.
//!
//! ```sh
//! cargo run --release --example traced_deployment -- --out-dir traces
//! ```
//!
//! The driver and server each record their own span/event trace into
//! their own ring. Every `StoreBatch` frame carries a `TraceContext`
//! (trace id + parent span + driver clock), so the server's per-RPC
//! spans — decode, apply (with nested WAL append/fsync), reply — are
//! children of the driver's `client.store_batch` span. After the run
//! the example writes both raw traces, stitches them into one causal
//! tree (`stitched.jsonl`), and folds the tree into a
//! flamegraph-compatible work profile (`profile.folded`):
//!
//! ```sh
//! flamegraph.pl traces/profile.folded > profile.svg   # optional
//! ```
//!
//! All timestamps are simulated micros and the server spans are
//! stamped with the driver's clock, so two runs with the same seed
//! produce byte-identical stitched traces and profiles — CI diffs
//! them.

use std::path::PathBuf;

use fremont::core::driver::{DiscoveryDriver, DriverConfig};
use fremont::journal::{JournalAccess, JournalServer};
use fremont::netsim::builder::TopologyBuilder;
use fremont::netsim::time::SimDuration;
use fremont::obs::{fold_events, parse_jsonl, stitch_jsonl};
use fremont::storage::{DurableJournal, WalConfig};
use fremont::telemetry::Telemetry;

fn main() {
    let mut out_dir = PathBuf::from("traces");
    let mut seed: u64 = 1993;
    let mut mins: u64 = 30;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out-dir" => {
                out_dir = args.next().map(PathBuf::from).unwrap_or_else(|| {
                    eprintln!("error: --out-dir needs a directory argument");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --seed needs an integer argument");
                    std::process::exit(2);
                })
            }
            "--mins" => {
                mins = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --mins needs an integer argument");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("error: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    std::fs::create_dir_all(&out_dir).expect("create out dir");

    // Two processes' worth of telemetry: the driver's ring and the
    // server's ring, exactly as a real two-host deployment records.
    let (driver_tel, driver_rec) = Telemetry::recording();
    let (server_tel, server_rec) = Telemetry::recording();

    // Durable server over a fresh WAL directory.
    let data_dir = out_dir.join("journal-data");
    let _ = std::fs::remove_dir_all(&data_dir);
    let (durable, _report) =
        DurableJournal::open_with_telemetry(WalConfig::new(&data_dir), server_tel.clone())
            .expect("open journal dir");
    let server = JournalServer::start_with_telemetry(durable, "127.0.0.1:0", None, server_tel)
        .expect("start journal server");
    println!("journal server listening on {}", server.addr());

    // A small world for the driver to explore.
    let mut b = TopologyBuilder::new();
    let a = b.segment("net-a", "10.5.1.0/26");
    let c = b.segment("net-c", "10.5.2.0/26");
    b.host("probe", a, 10);
    b.host("other", a, 11);
    b.host("far", c, 10);
    b.router("gw", &[(a, 1), (c, 1)]);
    let (sim, topo) = b.build(seed);
    let home = topo.nodes_by_name["probe"];

    let mut cfg = DriverConfig::full("10.5.0.0/16".parse().expect("subnet"), None);
    cfg.telemetry = driver_tel;
    cfg.remote_journal = Some(server.addr().to_string());
    cfg.trace_id = 1;
    let mut driver = DiscoveryDriver::open(sim, home, cfg).expect("connect driver");

    println!("exploring for {mins} simulated minutes (seed {seed})...");
    driver.run_for(SimDuration::from_mins(mins)).expect("run");
    let stats = driver.journal.stats().expect("stats");
    println!(
        "driver replica: {} interfaces, {} gateways, {} subnets ({} observations)",
        stats.interfaces, stats.gateways, stats.subnets, stats.observations_applied
    );
    drop(driver); // clean EOF on the server's connection
    server.shutdown();

    // Write both raw traces, then stitch and fold.
    let driver_trace = driver_rec.trace_jsonl();
    let server_trace = server_rec.trace_jsonl();
    write(&out_dir, "driver.jsonl", &driver_trace);
    write(&out_dir, "server.jsonl", &server_trace);

    let stitched = stitch_jsonl(&[driver_trace, server_trace]).unwrap_or_else(|e| {
        eprintln!("error: stitch failed: {e}");
        std::process::exit(1);
    });
    write(&out_dir, "stitched.jsonl", &stitched);

    let events = parse_jsonl(&stitched).expect("stitched trace parses");
    write(&out_dir, "profile.folded", &fold_events(&events));
    println!(
        "stitched {} events into one causal tree; profile folded",
        events.len()
    );
}

fn write(dir: &std::path::Path, name: &str, text: &str) {
    let path = dir.join(name);
    std::fs::write(&path, text).expect("write output");
    println!("wrote {}", path.display());
}
