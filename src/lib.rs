//! # Fremont
//!
//! A full reproduction of *"Fremont: A System for Discovering Network
//! Characteristics and Problems"* (Wood, Coleman & Schwartz, USENIX
//! Winter 1993) as a Rust workspace, built against a deterministic
//! packet-level simulation of a 1993-scale campus internetwork.
//!
//! This crate is the facade: it re-exports the workspace's five layers.
//!
//! * [`net`] — addresses, subnets, and wire codecs (Ethernet, ARP, IPv4,
//!   ICMP, UDP, RIPv1, DNS);
//! * [`netsim`] — the simulated campus substrate (segments, host/router
//!   stacks, taps, faults, the campus generator);
//! * [`journal`] — the Journal, its AVL-indexed store, and the Journal
//!   Server (TCP + in-process);
//! * [`storage`] — the durable storage engine (write-ahead log, crash
//!   recovery, segment compaction) behind `DurableJournal`;
//! * [`telemetry`] — the deterministic metrics registry and span/event
//!   tracer threaded through every layer above;
//! * [`obs`] — observability tooling over the trace stream (cross-process
//!   stitching, folded-stack profiles, validation);
//! * [`explorers`] — the eight Explorer Modules;
//! * [`core`] — the Discovery Manager, cross-correlation, analysis
//!   (Table 8), presentation programs, and topology export (Figure 2).
//!
//! # Quickstart
//!
//! ```
//! use fremont::core::Fremont;
//! use fremont::netsim::campus::CampusConfig;
//! use fremont::netsim::time::SimDuration;
//!
//! let mut cfg = CampusConfig::small();
//! cfg.cs_traffic = false;
//! let mut system = Fremont::over_campus(&cfg);
//! system.explore(SimDuration::from_mins(15)).unwrap();
//! println!("{}", system.topology().to_ascii());
//! assert!(system.stats().interfaces > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use fremont_core as core;
pub use fremont_explorers as explorers;
pub use fremont_journal as journal;
pub use fremont_net as net;
pub use fremont_netsim as netsim;
pub use fremont_obs as obs;
pub use fremont_storage as storage;
pub use fremont_telemetry as telemetry;
